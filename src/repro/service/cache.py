"""Content-addressed suite cache: byte-budgeted LRU + JSONL persistence.

The cache stores *canonical payload bytes* — the serialized result of a
generation or evaluation job — under a content key derived from
:func:`repro.service.fingerprint.fingerprint`.  Because the key covers
everything that can change generator output, a hit may be served in
place of a solve with a byte-identity guarantee: the benchmark
(``benchmarks/bench_service.py``) asserts cached responses are
bit-for-bit equal to cold ones.

Eviction is least-recently-used over a byte budget rather than an entry
count, because suites vary wildly in size (a three-table join suite with
input-database fixtures can be 100x a single-table one).  An optional
JSON-lines file persists entries across restarts; the format is
append-oriented (last write per key wins) so crash-interrupted writes
cost at most the trailing line.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from collections import OrderedDict

__all__ = ["CacheStats", "SuiteCache", "canonical_bytes"]


def canonical_bytes(payload: dict) -> bytes:
    """Serialize a payload dict to canonical JSON bytes.

    Sorted keys and fixed separators make the encoding a pure function
    of the payload content, which is what lets the service promise
    byte-identical responses for fingerprint-equal requests.
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=False
    ).encode("utf-8")


@dataclass
class CacheStats:
    """Counters exposed via ``/metrics`` and the benchmark report."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    stores: int = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "stores": self.stores,
            "hit_rate": self.hit_rate,
        }

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class SuiteCache:
    """Thread-safe byte-budgeted LRU over canonical payload bytes.

    Attributes:
        max_bytes: Eviction threshold; a single oversized entry is still
            admitted (the budget bounds *retained* neighbours, it is not
            an admission filter — rejecting would break the service's
            "second identical request is a hit" contract).
        path: Optional JSON-lines persistence file.  Existing entries
            are loaded eagerly (oldest first, so file order seeds LRU
            order) and every store appends one line.
    """

    max_bytes: int = 64 * 1024 * 1024
    path: str | os.PathLike | None = None
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, bytes] = OrderedDict()
        self._total = 0
        if self.path is not None and os.path.exists(self.path):
            self._load()

    # ------------------------------------------------------------------
    # core operations
    # ------------------------------------------------------------------

    def get(self, key: str) -> bytes | None:
        """Return the cached bytes for ``key``, refreshing its recency."""
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return value

    def peek(self, key: str) -> bytes | None:
        """Like :meth:`get` but without touching recency or stats."""
        with self._lock:
            return self._entries.get(key)

    def put(self, key: str, value: bytes) -> None:
        """Store ``value`` under ``key``, evicting LRU entries over budget."""
        if not isinstance(value, bytes):
            raise TypeError(f"cache values must be bytes, got {type(value)}")
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._total -= len(old)
            self._entries[key] = value
            self._total += len(value)
            self.stats.stores += 1
            while self._total > self.max_bytes and len(self._entries) > 1:
                _, evicted = self._entries.popitem(last=False)
                self._total -= len(evicted)
                self.stats.evictions += 1
            if self.path is not None:
                self._append(key, value)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return self._total

    def clear(self) -> None:
        """Drop all entries (stats are kept; persistence file untouched)."""
        with self._lock:
            self._entries.clear()
            self._total = 0

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def _append(self, key: str, value: bytes) -> None:
        record = {"key": key, "payload": value.decode("utf-8")}
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")

    def _load(self) -> None:
        loaded: OrderedDict[str, bytes] = OrderedDict()
        with open(self.path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn trailing write; later lines can't exist
                key = record.get("key")
                payload = record.get("payload")
                if not isinstance(key, str) or not isinstance(payload, str):
                    continue
                loaded.pop(key, None)  # last write wins, with fresh recency
                loaded[key] = payload.encode("utf-8")
        self._entries = loaded
        self._total = sum(len(v) for v in loaded.values())
        while self._total > self.max_bytes and len(self._entries) > 1:
            _, evicted = self._entries.popitem(last=False)
            self._total -= len(evicted)
            self.stats.evictions += 1

    def compact(self) -> None:
        """Rewrite the persistence file to one line per live entry.

        The append-only format grows with every store; compaction after
        a long run (or on graceful shutdown) reclaims superseded lines.
        No-op for purely in-memory caches.

        Crash-safe: the replacement is staged in a pid-unique temp file,
        fsynced, and atomically renamed over the original, so a process
        killed at any instant leaves either the old complete file or the
        new complete file — never a truncated one.  A failed staging
        write cleans up its temp file and leaves the original untouched.
        """
        if self.path is None:
            return
        with self._lock:
            tmp = f"{self.path}.tmp.{os.getpid()}"
            try:
                with open(tmp, "w", encoding="utf-8") as fh:
                    for key, value in self._entries.items():
                        record = {
                            "key": key, "payload": value.decode("utf-8"),
                        }
                        fh.write(json.dumps(record, sort_keys=True) + "\n")
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp, self.path)
            except BaseException:
                if os.path.exists(tmp):
                    os.unlink(tmp)
                raise
