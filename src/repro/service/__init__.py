"""Generation-as-a-service (DESIGN.md §5h).

The service layer turns the pipeline into a shared facility for
course-scale grading bursts (Chandra et al., PAPERS.md): many users
submitting near-identical queries, where most solver work is redundant
across submissions.  Three pieces, each usable on its own:

* :mod:`repro.service.fingerprint` — canonical content-addressing of
  ``(schema, query, config)`` so equivalent spellings of one submission
  collide on a single cache key;
* :mod:`repro.service.cache` — a content-addressed suite cache
  (byte-budgeted LRU with optional JSON-lines disk persistence);
* :mod:`repro.service.jobs` — an async job queue (PENDING → RUNNING →
  DONE/FAILED/CANCELLED) with per-job deadlines and single-flight
  deduplication, feeding :class:`repro.api.Session` executors;
* :mod:`repro.service.server` — a zero-dependency stdlib HTTP front end
  (``python -m repro.service``) exposing ``POST /v1/jobs``,
  ``GET /v1/jobs/{id}``, ``GET /v1/jobs/{id}/result``, ``DELETE
  /v1/jobs/{id}``, ``GET /healthz`` and ``GET /metrics``.
"""

from repro.service.cache import SuiteCache
from repro.service.fingerprint import (
    canonical_config,
    canonical_query,
    canonical_schema,
    fingerprint,
)
from repro.service.jobs import Job, JobQueue, JobRequest, JobState
from repro.service.server import Service

__all__ = [
    "SuiteCache",
    "canonical_config",
    "canonical_query",
    "canonical_schema",
    "fingerprint",
    "Job",
    "JobQueue",
    "JobRequest",
    "JobState",
    "Service",
]
