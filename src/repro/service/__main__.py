"""``python -m repro.service`` — run the HTTP generation service."""

from repro.service.server import main

if __name__ == "__main__":
    raise SystemExit(main())
