"""Async job queue: submit → PENDING/RUNNING/DONE/FAILED/CANCELLED.

The queue is the service's execution core, independent of HTTP: jobs
carry ``(schema, query, mode)`` requests, worker threads execute them
through :class:`repro.api.Session` executors (whose
:class:`~repro.core.generator.GenConfig` routes spec solves into the
shared ``core/parallel`` process pool when ``workers > 1``), and results
land in the content-addressed :class:`~repro.service.cache.SuiteCache`
as canonical payload bytes.

Duplicate submissions are **single-flighted**: the first job owning a
fingerprint solves it, concurrent duplicates block on its completion and
then serve from cache, so a classroom burst of N equivalent spellings
costs one solve.  Per-job deadlines reuse the ``*_deadline_s`` budget
machinery — the time left when a job starts becomes its suite deadline —
and a deadline-limited run that had to budget-skip targets is *not*
cached (the cache holds only complete solves, preserving byte-identity
with unconstrained runs).

With a ``journal_path``, the queue keeps a per-job audit log in the obs
run-journal format (one ``run_start``/``run_end`` pair per job, spans
replayed from the solve trace), validatable with
``python -m repro.obs.journal``.
"""

from __future__ import annotations

import dataclasses
import enum
import itertools
import queue as _queue
import threading
import time
from dataclasses import dataclass, field

from repro.api import EvalOptions, Session
from repro.core.generator import Budgets, GenConfig
from repro.engine.export import to_csv_map, to_insert_script
from repro.obs.metrics import Metrics
from repro.service.cache import SuiteCache, canonical_bytes
from repro.service.fingerprint import canonical_query, canonical_schema

__all__ = [
    "Job",
    "JobQueue",
    "JobRequest",
    "JobState",
    "build_payload",
    "request_key",
]


class JobState(enum.Enum):
    """Job lifecycle; values are the wire spellings."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def finished(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


@dataclass(frozen=True)
class JobRequest:
    """One generation/evaluation request as submitted.

    Attributes:
        schema: Raw DDL text or a parsed schema.
        query: The submitted SQL (any spelling; the solve runs on its
            canonical form).
        mode: ``"generate"`` (suite only) or ``"evaluate"`` (suite +
            mutant kill report).
        config: Generator configuration (fingerprinted, so two requests
            differing in a result-affecting knob never share a cache
            entry).
        options: Kill-check switches for ``mode="evaluate"``.
        deadline_s: Wall-clock budget measured from submission; a job
            still queued when it expires fails without solving.
    """

    schema: object
    query: str
    mode: str = "generate"
    config: GenConfig | None = None
    options: EvalOptions | None = None
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.mode not in ("generate", "evaluate"):
            raise ValueError(f"unknown job mode {self.mode!r}")


@dataclass
class Job:
    """One submitted request plus its lifecycle state and result."""

    id: str
    request: JobRequest
    fingerprint: str
    canonical_sql: str
    state: JobState = JobState.PENDING
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    error: str | None = None
    #: True when the result was served from the suite cache.
    cached: bool = False
    #: Canonical payload bytes (DONE jobs only).
    result: bytes | None = None

    def status(self) -> dict:
        """The wire representation for ``GET /v1/jobs/{id}``."""
        return {
            "id": self.id,
            "state": self.state.value,
            "mode": self.request.mode,
            "query": self.request.query,
            "canonical_sql": self.canonical_sql,
            "fingerprint": self.fingerprint,
            "cached": self.cached,
            "error": self.error,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }


def request_key(fingerprint: str, mode: str, options: EvalOptions | None) -> str:
    """The cache key of a request: fingerprint + everything else that
    shapes the payload (mode, kill-check options)."""
    if mode == "generate":
        return f"{fingerprint}|generate"
    return f"{fingerprint}|evaluate|{options or EvalOptions()!r}"


def _dataset_payload(dataset) -> dict:
    """One dataset's deterministic wire form (no timings, no stats)."""
    return {
        "group": dataset.group,
        "target": dataset.target,
        "purpose": dataset.purpose,
        "relaxation": dataset.relaxation,
        "used_input_db": dataset.used_input_db,
        "attempts": dataset.attempts,
        "tables": to_csv_map(dataset.db, include_empty=True),
        "insert_sql": to_insert_script(dataset.db, include_empty=False),
    }


def build_payload(run, evaluation=None) -> dict:
    """The canonical result payload of a job.

    Deliberately excludes every nondeterministic field (timings,
    per-stage clocks, solver statistics): fingerprint-equal requests
    must serialize to *byte-identical* payloads, and that property is
    asserted end-to-end by ``benchmarks/bench_service.py``.
    """
    suite = run.suite
    health = suite.health
    payload = {
        "canonical_sql": suite.sql,
        "datasets": [_dataset_payload(d) for d in suite.datasets],
        "skipped": [
            {
                "group": s.group,
                "target": s.target,
                "reason": s.reason,
            }
            for s in suite.skipped
        ],
        "health": {
            "completed": health.completed,
            "skipped_equivalent": health.skipped_equivalent,
            "skipped_unsat": health.skipped_unsat,
            "skipped_budget": health.skipped_budget,
            "errored": health.errored,
            "degraded_targets": list(health.degraded_targets),
        },
    }
    if evaluation is not None:
        payload["kill"] = {
            "total": evaluation.total,
            "killed": evaluation.killed,
            "survivors": sorted(str(m) for m in evaluation.survivors),
        }
    return payload


class JobQueue:
    """Thread-backed job queue over a suite cache and session executors.

    Args:
        workers: Worker-thread count.  ``0`` runs synchronously — each
            :meth:`submit` executes inline before returning, which is
            the deterministic mode tests use.
        cache: Shared :class:`SuiteCache`; a fresh in-memory one by
            default.
        journal_path: Per-job audit log in the obs run-journal format.
        config: Default generator configuration for requests that carry
            none.
        max_sessions: Bound on distinct ``(schema, config)`` sessions
            kept warm; least-recently-created beyond that are dropped.
    """

    def __init__(
        self,
        workers: int = 1,
        *,
        cache: SuiteCache | None = None,
        journal_path: str | None = None,
        config: GenConfig | None = None,
        max_sessions: int = 8,
    ) -> None:
        self.cache = cache if cache is not None else SuiteCache()
        self.metrics = Metrics()
        self.config = config or GenConfig()
        self.max_sessions = max_sessions
        self._jobs: dict[str, Job] = {}
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._pending: _queue.Queue = _queue.Queue()
        self._sessions: dict[str, Session] = {}
        #: key -> Event; presence means a solve for that key is running.
        self._inflight: dict[str, threading.Event] = {}
        self._journal = None
        self._journal_lock = threading.Lock()
        if journal_path is not None:
            from repro.obs.journal import JournalWriter

            self._journal = JournalWriter(journal_path)
        self._closed = False
        self._threads: list[threading.Thread] = []
        for index in range(workers):
            thread = threading.Thread(
                target=self._worker, name=f"xdata-job-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    # ------------------------------------------------------------------
    # public surface
    # ------------------------------------------------------------------

    def submit(self, request: JobRequest) -> Job:
        """Enqueue a request; returns its :class:`Job` immediately.

        With ``workers=0`` the job is executed inline instead and is
        already finished on return.
        """
        if self._closed:
            raise RuntimeError("queue is closed")
        config = request.config or self.config
        session = self._session_for(request.schema, config)
        job = Job(
            id=f"job-{next(self._ids)}",
            request=request,
            fingerprint=session.fingerprint(request.query),
            canonical_sql=session.canonical_sql(request.query),
            submitted_at=time.time(),
        )
        with self._lock:
            self._jobs[job.id] = job
        self.metrics.inc("xdata_service_jobs_submitted_total")
        if self._threads:
            self._pending.put(job.id)
            self._update_depth()
        else:
            self._execute(job)
        return job

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def cancel(self, job_id: str) -> bool:
        """Cancel a still-pending job; running/finished jobs stay put."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.state is not JobState.PENDING:
                return False
            job.state = JobState.CANCELLED
            job.finished_at = time.time()
        self.metrics.inc("xdata_service_jobs_cancelled_total")
        return True

    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        """Block until ``job_id`` finishes (poll-based; test helper)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            job = self.get(job_id)
            if job is None:
                raise KeyError(job_id)
            if job.state.finished:
                return job
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(f"{job_id} still {job.state.value}")
            time.sleep(0.005)

    def drain(self, timeout: float | None = None) -> None:
        """Block until every submitted job has finished."""
        with self._lock:
            ids = list(self._jobs)
        for job_id in ids:
            self.wait(job_id, timeout)

    def close(self) -> None:
        """Stop the workers (pending jobs are abandoned) and the journal."""
        self._closed = True
        for _ in self._threads:
            self._pending.put(None)
        for thread in self._threads:
            thread.join(timeout=5.0)
        if self._journal is not None:
            self._journal.close()

    def shutdown(self, drain_s: float = 5.0) -> dict:
        """Graceful close: refuse new work, drain RUNNING jobs, stop.

        New submissions are refused immediately; still-PENDING jobs are
        cancelled (their clients see ``cancelled``, an honest answer,
        rather than a connection reset); RUNNING jobs get up to
        ``drain_s`` seconds to finish.  Returns drain accounting:
        ``{"cancelled": n, "abandoned": m}`` where ``abandoned`` counts
        jobs still running when the deadline expired.
        """
        self._closed = True
        with self._lock:
            pending_ids = [
                job.id
                for job in self._jobs.values()
                if job.state is JobState.PENDING
            ]
        cancelled = sum(1 for job_id in pending_ids if self.cancel(job_id))
        deadline = time.monotonic() + max(0.0, drain_s)
        abandoned = 0
        while True:
            with self._lock:
                abandoned = sum(
                    1
                    for job in self._jobs.values()
                    if job.state is JobState.RUNNING
                )
            if abandoned == 0 or time.monotonic() >= deadline:
                break
            time.sleep(0.01)
        self.close()
        return {"cancelled": cancelled, "abandoned": abandoned}

    def snapshot(self) -> dict:
        """Metrics snapshot for ``/metrics`` (queue depth refreshed)."""
        self._update_depth()
        return self.metrics.snapshot()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def _session_for(self, schema, config: GenConfig) -> Session:
        from repro.service.fingerprint import canonical_config

        key = f"{canonical_schema(schema)}\x1f{canonical_config(config)}"
        with self._lock:
            session = self._sessions.get(key)
            if session is None:
                if len(self._sessions) >= self.max_sessions:
                    oldest = next(iter(self._sessions))
                    self._sessions.pop(oldest)
                session = Session(schema, config=config)
                self._sessions[key] = session
            return session

    def _update_depth(self) -> None:
        self.metrics.gauge(
            "xdata_service_queue_depth", self._pending.qsize()
        )

    def _worker(self) -> None:
        while True:
            job_id = self._pending.get()
            if job_id is None:
                return
            self._update_depth()
            job = self.get(job_id)
            if job is None or job.state is not JobState.PENDING:
                continue  # cancelled while queued
            try:
                self._execute(job)
            except Exception as exc:  # defensive: workers must survive
                self._finish(job, JobState.FAILED,
                             error=f"{type(exc).__name__}: {exc}")

    def _execute(self, job: Job) -> None:
        request = job.request
        job.started_at = time.time()
        wait = job.started_at - job.submitted_at
        self.metrics.observe("xdata_service_queue_wait_seconds", wait)
        if request.deadline_s is not None and wait >= request.deadline_s:
            self._finish(
                job, JobState.FAILED,
                error=f"deadline_s={request.deadline_s} expired while queued",
            )
            return
        job.state = JobState.RUNNING
        key = request_key(job.fingerprint, request.mode, request.options)
        try:
            payload, cached = self._resolve(job, key)
        except Exception as exc:
            self._finish(job, JobState.FAILED,
                         error=f"{type(exc).__name__}: {exc}")
            return
        job.result = payload
        job.cached = cached
        self._finish(job, JobState.DONE)

    def _resolve(self, job: Job, key: str) -> tuple[bytes, bool]:
        """Serve ``key`` from cache or solve it, single-flighted.

        Exactly one cache hit or miss is accounted per executed job:
        duplicates that waited on an in-flight owner count as hits once
        the owner's result lands.
        """
        while True:
            owner_event = None
            with self._lock:
                if key in self.cache:
                    hit = True
                else:
                    owner_event = self._inflight.get(key)
                    if owner_event is None:
                        self._inflight[key] = threading.Event()
                        hit = False
            if owner_event is not None:
                owner_event.wait()
                continue  # cache now holds it, or the owner failed
            if hit:
                self.cache.stats.hits += 1
                self.metrics.inc("xdata_service_cache_hits_total")
                payload = self.cache.peek(key)
                self._journal_hit(job)
                return payload, True
            # We own the solve for this key.
            self.cache.stats.misses += 1
            self.metrics.inc("xdata_service_cache_misses_total")
            try:
                payload, complete = self._solve(job)
                if complete:
                    self.cache.put(key, payload)
                return payload, False
            finally:
                with self._lock:
                    self._inflight.pop(key, None).set()

    def _solve(self, job: Job) -> tuple[bytes, bool]:
        """Run the job's pipeline; returns (payload bytes, cacheable)."""
        request = job.request
        config = request.config or self.config
        session = self._session_for(request.schema, config)
        deadline_limited = request.deadline_s is not None
        if deadline_limited:
            remaining = request.deadline_s - (time.time() - job.submitted_at)
            solve_config = self._budgeted(config, max(remaining, 0.01))
            run = _solo_run(session, job.canonical_sql, solve_config)
        elif self._journal is not None and not config.trace:
            # The audit log replays spans from the trace; force it on
            # (observability never changes generated bytes).
            run = _solo_run(
                session, job.canonical_sql,
                dataclasses.replace(config, trace=True),
            )
        else:
            run = session.generate(job.canonical_sql)
        evaluation = None
        if request.mode == "evaluate":
            from repro.api import _evaluate_run

            evaluation = _evaluate_run(
                run, request.options or EvalOptions()
            )
        payload = canonical_bytes(build_payload(run, evaluation))
        self._journal_solve(job, run)
        # A run that budget-skipped targets under its per-job deadline
        # is incomplete; caching it would poison byte-identity with
        # unconstrained solves of the same fingerprint.
        complete = not deadline_limited or run.health.skipped_budget == 0
        return payload, complete

    @staticmethod
    def _budgeted(config: GenConfig, remaining_s: float) -> GenConfig:
        """The job's config with the remaining wall clock as suite budget."""
        existing = config.suite_deadline_s
        budget = remaining_s if existing is None else min(existing, remaining_s)
        changes: dict = {"budgets": Budgets(suite_deadline_s=budget)}
        return dataclasses.replace(config, **changes)

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------

    def _finish(self, job: Job, state: JobState, error: str | None = None) -> None:
        job.state = state
        job.error = error
        job.finished_at = time.time()
        if job.started_at is not None:
            self.metrics.observe(
                "xdata_service_job_seconds", job.finished_at - job.started_at
            )
        if state is JobState.DONE:
            self.metrics.inc("xdata_service_jobs_done_total")
        elif state is JobState.FAILED:
            self.metrics.inc("xdata_service_jobs_failed_total")
            self._journal_failure(job)

    def _journal_hit(self, job: Job) -> None:
        if self._journal is None:
            return
        with self._journal_lock:
            self._journal.run_start(job.canonical_sql)
            self._journal.run_end(
                0.0, True, {"job": job.id, "cache": "hit"}
            )

    def _journal_solve(self, job: Job, run) -> None:
        if self._journal is None:
            return
        from repro.obs.trace import span_path_events

        suite = run.suite
        with self._journal_lock:
            self._journal.run_start(job.canonical_sql)
            for root in suite.trace or ():
                for record, path in span_path_events(root):
                    self._journal.span_sink(record, path)
            health = dataclasses.asdict(suite.health)
            health["job"] = job.id
            health["cache"] = "miss"
            self._journal.run_end(suite.elapsed, suite.health.ok, health)

    def _journal_failure(self, job: Job) -> None:
        if self._journal is None:
            return
        with self._journal_lock:
            self._journal.run_start(job.canonical_sql)
            self._journal.event(
                "run_abort", ts=time.time(),
                error=job.error or "unknown failure",
            )


def _solo_run(session: Session, canonical_sql: str, config: GenConfig):
    """One uncached run with a per-job config override.

    Deadline- and trace-overridden solves bypass the session memo (their
    config is not the session's) but reuse its parsed schema.
    """
    from repro.api import Run
    from repro.core.generator import XDataGenerator

    generator = XDataGenerator(session.schema, config)
    return Run(generator.generate(canonical_sql))
