"""Stdlib HTTP front end for the job queue (``python -m repro.service``).

Zero-dependency by design (ISSUE 8): the endpoint shape follows the
familiar REST idiom, but the implementation is
:class:`http.server.ThreadingHTTPServer` — no framework, no install.

Endpoints:

* ``POST /v1/jobs`` — submit ``{"schema": ddl, "query": sql}`` plus
  optional ``"mode"`` (``"generate"``/``"evaluate"``), ``"deadline_s"``
  and ``"options"`` (:class:`repro.api.EvalOptions` fields).  Returns
  ``202`` with ``{"id", "state", "fingerprint"}``.
* ``GET /v1/jobs/{id}`` — full job status.
* ``GET /v1/jobs/{id}/result`` — the canonical result payload
  (``409`` while unfinished, ``404`` unknown); the ``X-Xdata-Cache``
  header says ``hit`` or ``miss``.
* ``DELETE /v1/jobs/{id}`` — cancel a still-pending job.
* ``GET /healthz`` — liveness.
* ``GET /metrics`` — Prometheus text exposition from
  :mod:`repro.obs.metrics`, including the service counters
  (``xdata_service_cache_{hits,misses}_total``, job outcomes,
  queue-depth gauge, latency histograms).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.api import EvalOptions
from repro.service.cache import SuiteCache
from repro.service.jobs import JobQueue, JobRequest

__all__ = ["Service", "main"]

#: Request body cap; a classroom submission is a few KB of DDL + SQL.
_MAX_BODY = 4 * 1024 * 1024


def _parse_options(raw: dict | None) -> EvalOptions | None:
    if not raw:
        return None
    allowed = {"include_full_outer", "backend", "cross_check"}
    unknown = set(raw) - allowed
    if unknown:
        raise ValueError(f"unknown options keys: {sorted(unknown)}")
    return EvalOptions(**raw)


class _Handler(BaseHTTPRequestHandler):
    """One request; the queue lives on ``self.server.queue``."""

    server_version = "xdata-service/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _send(self, code: int, body: bytes, content_type: str,
              extra: dict | None = None) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, code: int, payload: dict,
                   extra: dict | None = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self._send(code, body, "application/json", extra)

    def _error(self, code: int, message: str) -> None:
        self._send_json(code, {"error": message})

    def _read_body(self) -> dict | None:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0 or length > _MAX_BODY:
            self._error(400, "missing or oversized request body")
            return None
        try:
            payload = json.loads(self.rfile.read(length))
        except json.JSONDecodeError as exc:
            self._error(400, f"invalid JSON body: {exc}")
            return None
        if not isinstance(payload, dict):
            self._error(400, "request body must be a JSON object")
            return None
        return payload

    # -- routes --------------------------------------------------------

    def do_POST(self) -> None:
        if self.path != "/v1/jobs":
            self._error(404, f"no such endpoint: POST {self.path}")
            return
        body = self._read_body()
        if body is None:
            return
        try:
            request = JobRequest(
                schema=body["schema"],
                query=body["query"],
                mode=body.get("mode", "generate"),
                options=_parse_options(body.get("options")),
                deadline_s=body.get("deadline_s"),
            )
        except KeyError as exc:
            self._error(400, f"missing required field {exc.args[0]!r}")
            return
        except (TypeError, ValueError) as exc:
            self._error(400, str(exc))
            return
        try:
            job = self.server.queue.submit(request)
        except Exception as exc:
            self._error(400, f"{type(exc).__name__}: {exc}")
            return
        self._send_json(202, {
            "id": job.id,
            "state": job.state.value,
            "fingerprint": job.fingerprint,
        })

    def do_GET(self) -> None:
        if self.path == "/healthz":
            self._send_json(200, {"status": "ok"})
            return
        if self.path == "/metrics":
            from repro.obs.metrics import render_text

            body = render_text(self.server.queue.snapshot()).encode("utf-8")
            body = body or b"# no samples yet\n"
            self._send(200, body, "text/plain; version=0.0.4")
            return
        if self.path.startswith("/v1/jobs/"):
            rest = self.path[len("/v1/jobs/"):]
            if rest.endswith("/result"):
                self._get_result(rest[: -len("/result")])
            else:
                self._get_status(rest)
            return
        self._error(404, f"no such endpoint: GET {self.path}")

    def do_DELETE(self) -> None:
        if not self.path.startswith("/v1/jobs/"):
            self._error(404, f"no such endpoint: DELETE {self.path}")
            return
        job_id = self.path[len("/v1/jobs/"):]
        if self.server.queue.get(job_id) is None:
            self._error(404, f"unknown job {job_id!r}")
            return
        cancelled = self.server.queue.cancel(job_id)
        self._send_json(200, {"id": job_id, "cancelled": cancelled})

    def _get_status(self, job_id: str) -> None:
        job = self.server.queue.get(job_id)
        if job is None:
            self._error(404, f"unknown job {job_id!r}")
            return
        self._send_json(200, job.status())

    def _get_result(self, job_id: str) -> None:
        job = self.server.queue.get(job_id)
        if job is None:
            self._error(404, f"unknown job {job_id!r}")
            return
        if job.result is None:
            self._error(409, f"job {job_id} is {job.state.value}, not done")
            return
        # The raw canonical bytes, verbatim: byte-identity across
        # fingerprint-equal submissions is part of the API contract.
        self._send(200, job.result, "application/json",
                   {"X-Xdata-Cache": "hit" if job.cached else "miss"})


class Service:
    """The HTTP server plus its queue, startable in-process or as a CLI.

    ``port=0`` binds an ephemeral port (tests); :attr:`url` reports the
    bound address after :meth:`start`.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8321,
        *,
        workers: int = 1,
        cache: SuiteCache | None = None,
        cache_path: str | None = None,
        cache_bytes: int = 64 * 1024 * 1024,
        journal_path: str | None = None,
        verbose: bool = False,
    ) -> None:
        if cache is None:
            cache = SuiteCache(max_bytes=cache_bytes, path=cache_path)
        self.queue = JobQueue(
            workers=workers, cache=cache, journal_path=journal_path
        )
        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.queue = self.queue
        self._server.verbose = verbose
        self._thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "Service":
        """Serve on a background thread; returns self for chaining."""
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="xdata-service-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI path)."""
        self._server.serve_forever()

    def stop(self, drain_s: float = 0.0) -> dict | None:
        """Shut down: listener first, then the queue, then flush cache.

        With ``drain_s > 0`` the stop is *graceful*: after the listener
        closes (no new submissions can arrive), still-pending jobs are
        cancelled and RUNNING jobs get up to ``drain_s`` seconds to
        finish before the workers stop; the drain accounting dict is
        returned.  Either way the suite cache is compacted to its
        persistence file as the final step.
        """
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        if drain_s > 0:
            drained = self.queue.shutdown(drain_s)
        else:
            self.queue.close()
            drained = None
        self.queue.cache.compact()
        return drained

    def __enter__(self) -> "Service":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.service`` / ``xdata serve`` entry point."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.service",
        description="Serve test-data generation over HTTP "
        "(POST /v1/jobs, GET /v1/jobs/{id}, /healthz, /metrics).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8321)
    parser.add_argument(
        "--workers", type=int, default=2,
        help="job worker threads (default 2)",
    )
    parser.add_argument(
        "--cache-bytes", type=int, default=64 * 1024 * 1024,
        help="suite-cache byte budget (default 64 MiB)",
    )
    parser.add_argument(
        "--cache-path", default=None,
        help="JSON-lines file persisting the suite cache across restarts",
    )
    parser.add_argument(
        "--journal", default=None, metavar="PATH",
        help="per-job audit log (obs run-journal format)",
    )
    parser.add_argument("--verbose", action="store_true",
                        help="log every HTTP request")
    parser.add_argument(
        "--drain-s", type=float, default=5.0,
        help="graceful-shutdown budget: seconds to let RUNNING jobs "
        "finish after SIGINT/SIGTERM (default 5)",
    )
    args = parser.parse_args(argv)

    service = Service(
        args.host, args.port, workers=args.workers,
        cache_path=args.cache_path, cache_bytes=args.cache_bytes,
        journal_path=args.journal, verbose=args.verbose,
    )

    # SIGTERM gets the same graceful drain SIGINT (KeyboardInterrupt)
    # already had: raise out of serve_forever, drain in the finally.
    def _on_sigterm(signum, frame):
        raise KeyboardInterrupt

    import signal

    previous = signal.signal(signal.SIGTERM, _on_sigterm)
    print(f"xdata service listening on {service.url}")
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        signal.signal(signal.SIGTERM, previous)
        drained = service.stop(drain_s=args.drain_s)
        if drained is not None:
            print(
                f"xdata service stopped: {drained['cancelled']} pending "
                f"job(s) cancelled, {drained['abandoned']} abandoned"
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
