"""The combined mutation space for a query."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.analyze import AnalyzedQuery, analyze_query
from repro.engine.plan import PlanNode
from repro.mutation.aggregate import aggregate_mutants
from repro.mutation.comparison import comparison_mutants
from repro.mutation.jointype import join_mutants
from repro.schema.catalog import Schema
from repro.sql.ast import Query
from repro.sql.parser import parse_query


@dataclass(frozen=True)
class Mutant:
    """One executable mutant.

    Attributes:
        kind: 'join', 'comparison' or 'aggregate'.
        plan: Executable plan of the mutant.
        description: Human-readable description of the single mutation.
    """

    kind: str
    plan: PlanNode
    description: str

    def __str__(self) -> str:
        return f"{self.kind}: {self.description}"


@dataclass
class MutationSpace:
    """All mutants of a query, grouped by kind."""

    analyzed: AnalyzedQuery
    mutants: list[Mutant] = field(default_factory=list)
    #: Lazily compiled plan of the original query — see :attr:`original_plan`.
    _original_plan: PlanNode | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def original_plan(self) -> PlanNode:
        """The original query's plan, compiled once per space.

        Kill-check callers (``evaluate_suite``, the workload matrix, the
        conformance harness, benchmarks) previously recompiled the
        original for every evaluation pass; the space is the natural
        owner — one compile per (query, mutation space), shared by every
        suite and dataset evaluated against it.
        """
        if self._original_plan is None:
            from repro.engine.plan import compile_query

            self._original_plan = compile_query(self.analyzed.query)
        return self._original_plan

    def by_kind(self, kind: str) -> list[Mutant]:
        """Mutants of one kind ('join', 'comparison', 'aggregate', ...)."""
        return [m for m in self.mutants if m.kind == kind]

    def __len__(self) -> int:
        return len(self.mutants)


def enumerate_mutants(
    query: str | Query | AnalyzedQuery,
    schema: Schema | None = None,
    include_full_outer: bool = False,
    include_join: bool = True,
    include_comparison: bool = True,
    include_aggregate: bool = True,
    include_join_conditions: bool = False,
    tree_cap: int = 20000,
) -> MutationSpace:
    """Enumerate the mutation space of Section II for ``query``.

    ``include_full_outer`` matches the paper's experimental choice of
    ignoring mutations *to* full outer join when False (the default).
    ``include_join_conditions`` adds the wrong-attribute and
    missing-conjunct extension space (:mod:`repro.mutation.joincond`),
    which is outside the paper's evaluated space and off by default.
    """
    if isinstance(query, AnalyzedQuery):
        aq = query
    else:
        parsed = parse_query(query) if isinstance(query, str) else query
        if schema is None:
            raise ValueError("schema is required unless an AnalyzedQuery is given")
        aq = analyze_query(parsed, schema)
    space = MutationSpace(aq)
    if include_join:
        for m in join_mutants(aq, include_full_outer, tree_cap):
            space.mutants.append(Mutant("join", m.plan, m.description))
    if include_comparison:
        for m in comparison_mutants(aq):
            space.mutants.append(Mutant("comparison", m.plan, m.description))
        from repro.engine.plan import compile_query
        from repro.mutation.util import replace_where_conjunct

        for info in aq.null_tests:
            mutated = replace_where_conjunct(
                aq.query, info.position, info.pred.flipped()
            )
            space.mutants.append(
                Mutant(
                    "nulltest",
                    compile_query(mutated),
                    f"where[{info.position}]: '{info.pred}' -> "
                    f"'{info.pred.flipped()}'",
                )
            )
    if include_aggregate:
        for m in aggregate_mutants(aq):
            space.mutants.append(Mutant("aggregate", m.plan, m.description))
    if include_join_conditions:
        from repro.mutation.joincond import (
            missing_conjunct_mutants,
            wrong_attribute_mutants,
        )

        for m in wrong_attribute_mutants(aq):
            space.mutants.append(Mutant("joincond-wrong", m.plan, m.description))
        for m in missing_conjunct_mutants(aq):
            space.mutants.append(
                Mutant("joincond-missing", m.plan, m.description)
            )
    return space
