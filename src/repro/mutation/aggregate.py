"""Aggregation-operator mutants (Section II).

The operator space is MAX, MIN, SUM, AVG, COUNT, SUM(DISTINCT),
AVG(DISTINCT) and COUNT(DISTINCT); one aggregate at a time is replaced by
each of the others.  MIN(DISTINCT)/MAX(DISTINCT) coincide with MIN/MAX
and are not separate members.  For string-typed attributes only MIN, MAX,
COUNT and COUNT(DISTINCT) are valid, so the space shrinks accordingly.
COUNT(*) has no aggregated attribute and is outside the space.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analyze import AnalyzedQuery
from repro.engine.plan import PlanNode, compile_query
from repro.mutation.util import replace_having_aggregate, replace_select_aggregate
from repro.sql.ast import Aggregate, Query

#: (func, distinct) pairs of the mutation space, numeric attributes.
NUMERIC_SPACE = (
    ("MIN", False),
    ("MAX", False),
    ("SUM", False),
    ("AVG", False),
    ("COUNT", False),
    ("SUM", True),
    ("AVG", True),
    ("COUNT", True),
)

#: The space for string-typed attributes.
STRING_SPACE = (
    ("MIN", False),
    ("MAX", False),
    ("COUNT", False),
    ("COUNT", True),
)


@dataclass(frozen=True)
class AggregateMutant:
    """One aggregation-operator mutant."""

    plan: PlanNode
    query: Query
    description: str


def aggregate_mutants(aq: AnalyzedQuery) -> list[AggregateMutant]:
    """All single aggregation-operator mutants of the select list and
    HAVING clause (Section II: "an aggregation operator can occur in the
    select clause of the query or in the having clause")."""
    out: list[AggregateMutant] = []
    for info in aq.aggregates:
        if info.attr is None:  # COUNT(*)
            continue
        numeric = not aq.attr_type(info.attr).is_textual
        space = NUMERIC_SPACE if numeric else STRING_SPACE
        original = info.agg
        for func, distinct in space:
            if (func, distinct) == (original.func, original.distinct):
                continue
            replacement = Aggregate(func, original.arg, distinct)
            mutated = replace_select_aggregate(aq.query, original, replacement)
            out.append(
                AggregateMutant(
                    compile_query(mutated),
                    mutated,
                    f"{original} -> {replacement}",
                )
            )
    for having in aq.having:
        if having.attr is None:  # COUNT(*)
            continue
        original = having.agg
        for func, distinct in NUMERIC_SPACE:
            if (func, distinct) == (original.func, original.distinct):
                continue
            replacement = Aggregate(func, original.arg, distinct)
            mutated = replace_having_aggregate(aq.query, original, replacement)
            out.append(
                AggregateMutant(
                    compile_query(mutated),
                    mutated,
                    f"having: {original} -> {replacement}",
                )
            )
    return out
