"""Mutation space: join-type, comparison-operator and aggregation mutants.

A :class:`Mutant` is an executable plan plus provenance; the space for a
query is produced by :func:`enumerate_mutants` and covers, per Section II:

* single join-type changes on every node of every equivalent join tree
  (all join orders derived through equivalence classes) for inner-join
  queries, or of the written tree for queries with outer joins;
* single comparison-operator changes on WHERE-clause conjuncts;
* single aggregation-operator changes in the select list.

:mod:`repro.mutation.evolve` reuses the same edit vocabulary as a
seeded *sampler* for the fuzzing campaign's corpus evolution.
"""

from repro.mutation.evolve import evolution_operators, evolve_query
from repro.mutation.space import Mutant, MutationSpace, enumerate_mutants

__all__ = [
    "Mutant",
    "MutationSpace",
    "enumerate_mutants",
    "evolution_operators",
    "evolve_query",
]
