"""Join-type mutants over the join-order space.

For inner-join queries every unordered join tree of the join graph is
enumerated (:mod:`repro.core.joinorders`); each internal node is flipped
to LEFT, RIGHT and (optionally) FULL outer join, one node at a time.
Mutants are deduplicated by a canonical form in which symmetric operators
(inner and full joins) order their children lexicographically and RIGHT
joins are rewritten as mirrored LEFT joins — mirror-image expressions are
the same mutant.

Queries whose FROM clause already contains outer joins are not freely
reorderable; their space is the written join tree with each node's type
replaced by the three alternatives (the paper's experimental treatment of
mixed inner/outer queries).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analyze import AnalyzedQuery
from repro.core.joinorders import (
    NodeShape,
    Shape,
    enumerate_shapes,
    shape_nodes,
    shape_to_plan,
)
from repro.engine.plan import (
    AggregateNode,
    JoinNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SelectNode,
    compile_query,
)
from repro.sql.ast import JoinKind

#: Join types introduced by a single mutation (the paper's experiments
#: ignore the mutation to full outer join; pass ``include_full=True`` to
#: include it).
DEFAULT_TARGETS = (JoinKind.LEFT, JoinKind.RIGHT)
ALL_TARGETS = (JoinKind.LEFT, JoinKind.RIGHT, JoinKind.FULL)


@dataclass(frozen=True)
class JoinMutant:
    """One join-type mutant."""

    plan: PlanNode
    description: str
    canonical: str


def plan_canonical(plan: PlanNode) -> str:
    """Canonical string of a plan modulo join commutativity.

    INNER, CROSS and FULL joins are symmetric: children are sorted.  A
    RIGHT join is a mirrored LEFT join.  Conditions are derived from the
    node's binding sets, so they don't participate in identity.
    """
    if isinstance(plan, ScanNode):
        return plan.binding
    if isinstance(plan, SelectNode):
        return plan_canonical(plan.child)
    if isinstance(plan, (ProjectNode, AggregateNode)):
        return plan_canonical(plan.child)
    assert isinstance(plan, JoinNode)
    left = plan_canonical(plan.left)
    right = plan_canonical(plan.right)
    kind = plan.kind
    if kind is JoinKind.RIGHT:
        kind = JoinKind.LEFT
        left, right = right, left
    if kind in (JoinKind.INNER, JoinKind.FULL, JoinKind.CROSS) and right < left:
        left, right = right, left
    symbol = {
        JoinKind.INNER: "J",
        JoinKind.LEFT: "L",
        JoinKind.FULL: "F",
        JoinKind.CROSS: "X",
    }[kind]
    return f"({left} {symbol} {right})"


def _describe(shape: Shape, node: NodeShape, kind: JoinKind) -> str:
    left = ",".join(sorted(node.left.bindings))
    right = ",".join(sorted(node.right.bindings))
    return f"[{left}] {kind.value} [{right}]"


def join_mutants_inner(
    aq: AnalyzedQuery,
    include_full: bool = False,
    tree_cap: int = 20000,
) -> list[JoinMutant]:
    """All deduplicated single join-type mutants over all join orders."""
    targets = ALL_TARGETS if include_full else DEFAULT_TARGETS
    mutants: dict[str, JoinMutant] = {}
    for shape in enumerate_shapes(aq, cap=tree_cap):
        for node in shape_nodes(shape):
            for kind in targets:
                plan = shape_to_plan(aq, shape, kinds={node: kind})
                canonical = plan_canonical(plan)
                if canonical not in mutants:
                    mutants[canonical] = JoinMutant(
                        plan, _describe(shape, node, kind), canonical
                    )
    return list(mutants.values())


def _mutate_plan_nodes(plan: PlanNode, targets) -> list[tuple[PlanNode, str]]:
    """Single-node kind changes over a compiled plan (outer-join queries)."""
    joins: list[JoinNode] = []

    def collect(node: PlanNode):
        if isinstance(node, JoinNode):
            joins.append(node)
            collect(node.left)
            collect(node.right)
        elif isinstance(node, SelectNode):
            collect(node.child)
        elif isinstance(node, (ProjectNode, AggregateNode)):
            collect(node.child)

    collect(plan)

    def rebuild(node: PlanNode, victim: JoinNode, kind: JoinKind) -> PlanNode:
        if node is victim:
            assert isinstance(node, JoinNode)
            return JoinNode(
                kind,
                rebuild(node.left, victim, kind),
                rebuild(node.right, victim, kind),
                node.condition,
                node.natural,
            )
        if isinstance(node, JoinNode):
            return JoinNode(
                node.kind,
                rebuild(node.left, victim, kind),
                rebuild(node.right, victim, kind),
                node.condition,
                node.natural,
            )
        if isinstance(node, SelectNode):
            return SelectNode(rebuild(node.child, victim, kind), node.predicates)
        if isinstance(node, ProjectNode):
            return ProjectNode(
                rebuild(node.child, victim, kind), node.items, node.distinct
            )
        if isinstance(node, AggregateNode):
            return AggregateNode(
                rebuild(node.child, victim, kind), node.group_by, node.items
            )
        return node

    out: list[tuple[PlanNode, str]] = []
    for victim in joins:
        kinds = set(targets) | {JoinKind.INNER}
        kinds.discard(victim.kind)
        if victim.kind is JoinKind.CROSS:
            continue
        for kind in sorted(kinds, key=lambda k: k.value):
            out.append(
                (rebuild(plan, victim, kind), f"{victim.kind.value} -> {kind.value}")
            )
    return out


def join_mutants_outer(
    aq: AnalyzedQuery, include_full: bool = False
) -> list[JoinMutant]:
    """Single-node join-type mutants of the written (outer-join) tree."""
    targets = ALL_TARGETS if include_full else DEFAULT_TARGETS
    base = compile_query(aq.query)
    mutants: dict[str, JoinMutant] = {}
    for plan, description in _mutate_plan_nodes(base, targets):
        canonical = plan_canonical(plan)
        if canonical == plan_canonical(base):
            continue
        if canonical not in mutants:
            mutants[canonical] = JoinMutant(plan, description, canonical)
    return list(mutants.values())


def join_mutants(
    aq: AnalyzedQuery,
    include_full: bool = False,
    tree_cap: int = 20000,
) -> list[JoinMutant]:
    """The join-type mutant space appropriate for the query."""
    from repro.sql.ast import Star

    if len(aq.occurrences) < 2:
        return []
    star_select = any(
        isinstance(item.expr, Star) for item in aq.query.select_items
    )
    if aq.has_outer_joins or (aq.natural_conditions and star_select):
        # Outer joins are not freely reorderable; NATURAL joins under
        # SELECT * coalesce common columns, which reordered plans would
        # not — either way, mutate the written tree only.
        return join_mutants_outer(aq, include_full)
    return join_mutants_inner(aq, include_full, tree_cap)
