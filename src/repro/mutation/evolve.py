"""Seeded query evolution for the fuzzing campaign (DESIGN.md §5i).

The mutation space of Section II enumerates *every* single mutant of a
query for kill checking; the campaign needs the same edit vocabulary as
a *sampler* — draw one structural edit at random and keep the result as
a new corpus member.  The operators here reuse the mutation machinery's
AST rewrites (:mod:`repro.mutation.util`) but return SQL text via the
printer, because the campaign corpus stores queries as text (checkpoint
files are JSON, and workers re-parse anyway).

Every operator is a pure function of ``(rng, query)``; evolution is
therefore deterministic for a given corpus state and RNG state, which
is what makes a SIGKILLed campaign replayable from its checkpoint.
"""

from __future__ import annotations

import random
from dataclasses import replace

from repro.sql.ast import (
    COMPARISON_OPS,
    Comparison,
    FromItem,
    Join,
    JoinKind,
    Literal,
    NullTest,
    Query,
)
from repro.sql.parser import parse_query
from repro.sql.printer import to_sql

__all__ = ["evolve_query", "evolution_operators"]

#: Join kinds the campaign evolves between (CROSS stays CROSS: giving a
#: comma join an ON clause needs a condition the operator cannot invent).
_EVOLVABLE_KINDS = (JoinKind.INNER, JoinKind.LEFT, JoinKind.RIGHT,
                    JoinKind.FULL)


def _is_constant_conjunct(pred) -> bool:
    """A selection-style conjunct: comparison with a literal side."""
    return isinstance(pred, Comparison) and (
        isinstance(pred.left, Literal) or isinstance(pred.right, Literal)
    )


def _flip_comparison_op(rng: random.Random, query: Query) -> Query | None:
    """Swap the operator of one constant comparison conjunct."""
    positions = [
        i for i, p in enumerate(query.where) if _is_constant_conjunct(p)
    ]
    if not positions:
        return None
    position = rng.choice(positions)
    pred = query.where[position]
    op = rng.choice([o for o in COMPARISON_OPS if o != pred.op])
    where = list(query.where)
    where[position] = pred.with_op(op)
    return replace(query, where=tuple(where))


def _tweak_constant(rng: random.Random, query: Query) -> Query | None:
    """Nudge one numeric literal in a WHERE conjunct."""
    candidates = []
    for i, pred in enumerate(query.where):
        if not isinstance(pred, Comparison):
            continue
        for side in ("left", "right"):
            expr = getattr(pred, side)
            if isinstance(expr, Literal) and isinstance(
                expr.value, (int, float)
            ) and not isinstance(expr.value, bool):
                candidates.append((i, side, expr))
    if not candidates:
        return None
    position, side, literal = rng.choice(candidates)
    value = literal.value
    step = rng.choice((-1, 1)) * max(1, abs(value) // 10)
    new = Literal(value + step)
    pred = query.where[position]
    mutated = Comparison(
        pred.op,
        new if side == "left" else pred.left,
        new if side == "right" else pred.right,
    )
    where = list(query.where)
    where[position] = mutated
    return replace(query, where=tuple(where))


def _flip_null_test(rng: random.Random, query: Query) -> Query | None:
    """IS NULL <-> IS NOT NULL on one conjunct."""
    positions = [
        i for i, p in enumerate(query.where) if isinstance(p, NullTest)
    ]
    if not positions:
        return None
    position = rng.choice(positions)
    where = list(query.where)
    where[position] = where[position].flipped()
    return replace(query, where=tuple(where))


def _drop_conjunct(rng: random.Random, query: Query) -> Query | None:
    """Remove one selection conjunct (never a join condition — dropping
    a column-to-column equality from a comma join would explode the
    cross product the campaign worker then has to execute)."""
    positions = [
        i for i, p in enumerate(query.where)
        if _is_constant_conjunct(p) or isinstance(p, NullTest)
    ]
    if not positions:
        return None
    position = rng.choice(positions)
    where = [p for i, p in enumerate(query.where) if i != position]
    return replace(query, where=tuple(where))


def _joins_of(item: FromItem) -> int:
    return (
        1 + _joins_of(item.left) + _joins_of(item.right)
        if isinstance(item, Join)
        else 0
    )


def _rekind_nth_join(item: FromItem, target: list[int],
                     kind: JoinKind) -> FromItem:
    """Rebuild ``item`` with join number ``target[0]`` (pre-order) rekinded."""
    if not isinstance(item, Join):
        return item
    index = target[0]
    target[0] += 1
    left = _rekind_nth_join(item.left, target, kind)
    right = _rekind_nth_join(item.right, target, kind)
    new_kind = kind if index == 0 else item.kind
    if index == 0:
        target[0] = -10**9  # mark done; later joins keep their kind
    return Join(new_kind, left, right, item.condition, item.natural)


def _change_join_kind(rng: random.Random, query: Query) -> Query | None:
    """Rewrite one explicit join's kind (the join-type mutation, applied
    as an evolution step rather than enumerated)."""
    join_counts = [_joins_of(item) for item in query.from_items]
    total = sum(join_counts)
    if total == 0:
        return None
    pick = rng.randrange(total)
    new_kind = rng.choice(_EVOLVABLE_KINDS)
    items = []
    for item, count in zip(query.from_items, join_counts):
        if 0 <= pick < count:
            items.append(_rekind_nth_join(item, [-pick], new_kind))
        else:
            items.append(item)
        pick -= count
    return replace(query, from_items=tuple(items))


#: Operator name -> function; order is part of the deterministic
#: evolution contract (checkpointed RNG draws index into it).
_OPERATORS = {
    "flip-comparison-op": _flip_comparison_op,
    "tweak-constant": _tweak_constant,
    "flip-null-test": _flip_null_test,
    "drop-conjunct": _drop_conjunct,
    "change-join-kind": _change_join_kind,
}


def evolution_operators() -> tuple[str, ...]:
    """Names of the available evolution operators, in draw order."""
    return tuple(_OPERATORS)


def evolve_query(
    rng: random.Random, sql: str, steps: int = 1
) -> tuple[str, list[str]] | None:
    """Apply up to ``steps`` random evolution operators to ``sql``.

    Returns ``(new_sql, applied_operator_names)``, or ``None`` when the
    query does not parse or no operator applied (e.g. a bare
    ``SELECT *`` with nothing to edit).  The result is re-printed
    through :func:`repro.sql.printer.to_sql`, so it always re-parses.
    """
    try:
        query = parse_query(sql)
    except Exception:
        return None
    applied: list[str] = []
    names = list(_OPERATORS)
    for _ in range(max(1, steps)):
        order = rng.sample(names, len(names))
        for name in order:
            mutated = _OPERATORS[name](rng, query)
            if mutated is not None:
                query = mutated
                applied.append(name)
                break
    if not applied:
        return None
    return to_sql(query), applied
