"""Shared AST-rewriting helpers for mutant construction."""

from __future__ import annotations

from repro.sql.ast import (
    Aggregate,
    BinaryOp,
    Comparison,
    Expr,
    Query,
    SelectItem,
)


def replace_where_conjunct(query: Query, position: int, pred: Comparison) -> Query:
    """A copy of ``query`` with WHERE conjunct ``position`` replaced."""
    where = list(query.where)
    where[position] = pred
    return Query(
        select_items=query.select_items,
        from_items=query.from_items,
        where=tuple(where),
        group_by=query.group_by,
        distinct=query.distinct,
        having=query.having,
    )


def replace_having_conjunct(query: Query, position: int, pred: Comparison) -> Query:
    """A copy of ``query`` with HAVING conjunct ``position`` replaced."""
    having = list(query.having)
    having[position] = pred
    return Query(
        select_items=query.select_items,
        from_items=query.from_items,
        where=query.where,
        group_by=query.group_by,
        distinct=query.distinct,
        having=tuple(having),
    )


def replace_aggregate(expr: Expr, old: Aggregate, new: Aggregate) -> Expr:
    """Replace one aggregate node inside an expression tree (by identity)."""
    if expr is old:
        return new
    if isinstance(expr, BinaryOp):
        return BinaryOp(
            expr.op,
            replace_aggregate(expr.left, old, new),
            replace_aggregate(expr.right, old, new),
        )
    return expr


def replace_select_aggregate(query: Query, old: Aggregate, new: Aggregate) -> Query:
    """A copy of ``query`` with one select-list aggregate swapped."""
    items = tuple(
        SelectItem(replace_aggregate(item.expr, old, new), item.alias)
        for item in query.select_items
    )
    return Query(
        select_items=items,
        from_items=query.from_items,
        where=query.where,
        group_by=query.group_by,
        distinct=query.distinct,
        having=query.having,
    )


def replace_having_aggregate(query: Query, old: Aggregate, new: Aggregate) -> Query:
    """A copy of ``query`` with one HAVING-clause aggregate swapped."""
    having = tuple(
        Comparison(
            pred.op,
            replace_aggregate(pred.left, old, new),
            replace_aggregate(pred.right, old, new),
        )
        for pred in query.having
    )
    return Query(
        select_items=query.select_items,
        from_items=query.from_items,
        where=query.where,
        group_by=query.group_by,
        distinct=query.distinct,
        having=having,
    )
