"""Comparison-operator mutants (Section II / Section V-E).

Any single occurrence of a comparison operator in a WHERE-clause
*selection* conjunct (the paper's ``A.x op val`` form — conjuncts over a
single relation occurrence) is replaced by each of the other operators.
Join conjuncts are covered by the join-type mutation space instead; their
operator mutations change the join condition itself and are outside the
space killComparisonOperators targets (Section V-E).  String-typed
conjuncts only admit ``=`` and ``<>`` in this library, so they contribute
one mutant each.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analyze import AnalyzedQuery
from repro.engine.plan import PlanNode, compile_query
from repro.sql.ast import COMPARISON_OPS, Comparison, Query
from repro.mutation.util import replace_having_conjunct, replace_where_conjunct

#: Strings support the full operator space: interning is rank-preserving.
STRING_OPS = COMPARISON_OPS


@dataclass(frozen=True)
class ComparisonMutant:
    """One comparison-operator mutant."""

    plan: PlanNode
    query: Query
    description: str


def comparison_mutants(aq: AnalyzedQuery) -> list[ComparisonMutant]:
    """All single comparison-operator mutants of selection conjuncts."""
    selection_preds = {id(info.pred) for info in aq.selections}
    selection_strs = {str(info.pred) for info in aq.selections}
    out: list[ComparisonMutant] = []
    query = aq.query
    for position, pred in enumerate(query.where):
        if id(pred) not in selection_preds and str(pred) not in selection_strs:
            continue
        textual = _is_conjunct_textual(aq, position)
        ops = STRING_OPS if textual else COMPARISON_OPS
        for op in ops:
            if op == pred.op:
                continue
            mutated = replace_where_conjunct(query, position, pred.with_op(op))
            out.append(
                ComparisonMutant(
                    compile_query(mutated),
                    mutated,
                    f"where[{position}]: '{pred}' -> '{pred.with_op(op)}'",
                )
            )
    # HAVING conjuncts (constrained-aggregation extension): aggregates
    # are numeric, so all six operators apply.
    for position, pred in enumerate(query.having):
        for op in COMPARISON_OPS:
            if op == pred.op:
                continue
            mutated = replace_having_conjunct(query, position, pred.with_op(op))
            out.append(
                ComparisonMutant(
                    compile_query(mutated),
                    mutated,
                    f"having[{position}]: '{pred}' -> '{pred.with_op(op)}'",
                )
            )
    return out


def _is_conjunct_textual(aq: AnalyzedQuery, position: int) -> bool:
    from repro.core.attrs import Attr
    from repro.sql.ast import ColumnRef, Literal

    pred: Comparison = aq.query.where[position]
    for side in (pred.left, pred.right):
        if isinstance(side, ColumnRef):
            if aq.attr_type(Attr(side.table, side.column)).is_textual:
                return True
        if isinstance(side, Literal) and isinstance(side.value, str):
            return True
    return False
