"""Join-condition mutants: wrong attribute and missing conjunct.

The paper's introduction lists "missing joins conditions" and wrong
attributes among common query errors (Fig. 2(d) is an intended query
that joins different attributes), but its evaluated mutation space covers
join *types* only.  This module extends the space in the spirit of the
paper's remark that the constraint-based approach "makes it possible to
add support for other mutation types":

* **wrong-attribute mutants** — one side of an equi-join conjunct is
  replaced by a different type-compatible column of the same relation
  (``t.course_id = c.course_id`` -> ``t.sec_id = c.course_id``);
* **missing-conjunct mutants** — one WHERE-clause equi-join conjunct is
  dropped entirely (the forgotten-join-condition error).

Generation support lives in :mod:`repro.core.kill_joincond`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analyze import AnalyzedQuery
from repro.engine.plan import PlanNode, compile_query
from repro.mutation.util import replace_where_conjunct
from repro.sql.ast import ColumnRef, Comparison, Query


@dataclass(frozen=True)
class JoinCondMutant:
    """One join-condition mutant."""

    plan: PlanNode
    query: Query
    description: str


def _compatible_columns(aq: AnalyzedQuery, binding: str, column: str) -> list[str]:
    """Other columns of the binding's table with a comparable type."""
    table = aq.schema.table(aq.table_of(binding))
    original = table.column(column).sqltype
    out = []
    for other in table.columns:
        if other.name == column.lower():
            continue
        same_family = (
            other.sqltype.is_textual == original.is_textual
        )
        if same_family:
            out.append(other.name)
    return out


def _equijoin_positions(aq: AnalyzedQuery) -> list[int]:
    """WHERE positions holding two-column equi-join conjuncts."""
    positions = []
    for index, pred in enumerate(aq.query.where):
        if (
            isinstance(pred, Comparison)
            and pred.op == "="
            and isinstance(pred.left, ColumnRef)
            and isinstance(pred.right, ColumnRef)
            and pred.left.table != pred.right.table
        ):
            positions.append(index)
    return positions


def wrong_attribute_mutants(aq: AnalyzedQuery) -> list[JoinCondMutant]:
    """Replace one side of an equi-join conjunct with a sibling column."""
    out: list[JoinCondMutant] = []
    query = aq.query
    for position in _equijoin_positions(aq):
        pred = query.where[position]
        for side in ("left", "right"):
            ref: ColumnRef = getattr(pred, side)
            for other in _compatible_columns(aq, ref.table, ref.column):
                replacement = ColumnRef(ref.table, other)
                if side == "left":
                    mutated_pred = Comparison(pred.op, replacement, pred.right)
                else:
                    mutated_pred = Comparison(pred.op, pred.left, replacement)
                mutated = replace_where_conjunct(query, position, mutated_pred)
                out.append(
                    JoinCondMutant(
                        compile_query(mutated),
                        mutated,
                        f"where[{position}]: '{pred}' -> '{mutated_pred}'",
                    )
                )
    return out


def missing_conjunct_mutants(aq: AnalyzedQuery) -> list[JoinCondMutant]:
    """Drop one equi-join conjunct (the forgotten-join error)."""
    out: list[JoinCondMutant] = []
    query = aq.query
    for position in _equijoin_positions(aq):
        pred = query.where[position]
        where = tuple(
            p for index, p in enumerate(query.where) if index != position
        )
        mutated = Query(
            select_items=query.select_items,
            from_items=query.from_items,
            where=where,
            group_by=query.group_by,
            distinct=query.distinct,
        )
        out.append(
            JoinCondMutant(
                compile_query(mutated),
                mutated,
                f"where[{position}]: dropped '{pred}'",
            )
        )
    return out
