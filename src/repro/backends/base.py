"""The execution-backend protocol (DESIGN.md §5f).

A *backend* is anything that can load a generated :class:`Database` and
execute query plans over it.  The kill-checker is backend-agnostic: a
mutant is killed when original and mutant results differ *on the backend
under test*, and a second backend turns every kill decision into a
differential test of the engine itself (``cross_check``).

Backends are stateless objects; :meth:`Backend.load` returns an opaque
handle (the engine hands back the :class:`Database`, SQLite a
connection) that is passed to every :meth:`Backend.execute` call and
released with :meth:`Backend.close`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.engine.database import Database
from repro.engine.plan import PlanNode
from repro.engine.relation import Relation
from repro.errors import XDataError


@dataclass(frozen=True)
class BackendCapabilities:
    """What a backend can execute natively.

    A missing capability does not necessarily make a query class
    unusable — the SQLite backend rewrites RIGHT (and, where possible,
    FULL) joins when the installed library predates native support —
    but :class:`BackendCapabilityError` is raised when no rewrite
    exists either.
    """

    right_join: bool = True
    full_join: bool = True
    natural_join: bool = True


class BackendError(XDataError):
    """Base class for backend-layer failures."""


class BackendCapabilityError(BackendError):
    """A plan needs a feature the backend lacks and cannot rewrite."""


class BackendDisagreement(BackendError):
    """Two backends returned different bags for the same (query, dataset).

    This is the structured artefact of ``cross_check`` mode: it carries
    everything needed to reproduce the split — the query (context string
    and SQL text), the dataset it was run on, and both result relations.
    ``minimized`` is filled in by the conformance harness when it manages
    to shrink the dataset while preserving the disagreement.

    Self-check oracles (``repro.campaign.oracles``) raise the same
    exception for single-backend splits — two semantically equivalent
    plans returning different bags — with ``oracle`` naming the oracle
    that vetoed and ``results`` keyed by plan label instead of backend
    name.

    Attributes:
        context: What was being executed ("original query" or a mutant
            description).
        sql: SQL text of the query, as rendered for the non-engine
            backend (empty when unavailable).
        dataset: The :class:`Database` both backends loaded.
        results: Backend name (or plan label) -> :class:`Relation`.
        oracle: Name of the oracle that raised ("cross-check" for the
            dual-execution checker).
        minimized: Optional shrunken dataset that still disagrees.
    """

    def __init__(
        self,
        context: str,
        sql: str,
        dataset: Database,
        results: dict[str, Relation],
        plan: PlanNode | None = None,
        oracle: str = "cross-check",
    ):
        names = " vs ".join(results)
        sizes = ", ".join(f"{n}: {len(r)} rows" for n, r in results.items())
        super().__init__(
            f"backends disagree ({names}) on {context}: {sizes}"
        )
        self.context = context
        self.sql = sql
        self.dataset = dataset
        self.results = results
        self.plan = plan
        self.oracle = oracle
        self.minimized: Database | None = None

    def detail(self) -> str:
        """Multi-line forensic rendering (dataset + both bags)."""
        lines = [str(self), f"oracle: {self.oracle}", f"sql: {self.sql}",
                 "dataset:"]
        lines.append(self.dataset.pretty())
        for name, relation in self.results.items():
            lines.append(f"{name} result ({', '.join(relation.columns)}):")
            for row in relation.rows:
                lines.append(f"  {row}")
        if self.minimized is not None:
            lines.append("minimized dataset:")
            lines.append(self.minimized.pretty())
        return "\n".join(lines)


@runtime_checkable
class Backend(Protocol):
    """Protocol every execution backend implements."""

    name: str

    def capabilities(self) -> BackendCapabilities:
        """Feature flags for this backend instance."""
        ...

    def load(self, db: Database):
        """Materialise ``db`` and return an opaque execution handle.

        Must raise :class:`~repro.errors.IntegrityError` when the
        instance violates the schema's PK/FK/NOT NULL constraints.
        """
        ...

    def execute(self, handle, plan: PlanNode) -> Relation:
        """Execute ``plan`` against a loaded handle."""
        ...

    def close(self, handle) -> None:
        """Release a handle returned by :meth:`load`."""
        ...


@dataclass
class CrossChecker:
    """Executes plans on a primary backend, optionally shadowed by a
    reference backend whose result must agree.

    Handles are cached per dataset (a kill-check runs every mutant over
    every dataset; each dataset is loaded once per backend).  Call
    :meth:`close` when done — or use it as a context manager.
    """

    primary: Backend
    reference: Backend | None = None
    _handles: dict = field(default_factory=dict, repr=False)

    def _handle(self, backend: Backend, db: Database):
        key = (backend.name, id(db))
        handle = self._handles.get(key)
        if handle is None:
            handle = self._handles[key] = backend.load(db)
        return handle

    def result(self, plan: PlanNode, db: Database, context: str = "query") -> Relation:
        """Primary backend's result; raises on reference disagreement."""
        out = self.primary.execute(self._handle(self.primary, db), plan)
        if self.reference is not None:
            ref = self.reference.execute(self._handle(self.reference, db), plan)
            from repro.testing.killcheck import result_signature

            if result_signature(out) != result_signature(ref):
                raise BackendDisagreement(
                    context,
                    self._sql_of(plan),
                    db,
                    {self.primary.name: out, self.reference.name: ref},
                    plan=plan,
                )
        return out

    def signature(self, plan: PlanNode, db: Database, context: str = "query"):
        """The :func:`result_signature` of :meth:`result`."""
        from repro.testing.killcheck import result_signature

        return result_signature(self.result(plan, db, context))

    def _sql_of(self, plan: PlanNode) -> str:
        for backend in (self.primary, self.reference):
            sql_of = getattr(backend, "sql_of", None)
            if sql_of is not None:
                try:
                    return sql_of(plan)
                except XDataError:
                    continue
        return ""

    def release(self, db: Database) -> None:
        """Close both backends' handles for one dataset.

        The batched kill check loads each dataset once, runs its whole
        mutant batch, and releases the handles before moving on — so a
        large suite never holds more than one dataset's connections.
        """
        for key in [k for k in self._handles if k[1] == id(db)]:
            name = key[0]
            backend = (
                self.primary
                if self.primary.name == name
                else self.reference
            )
            if backend is not None:
                backend.close(self._handles.pop(key))

    def close(self) -> None:
        for (name, _), handle in self._handles.items():
            backend = (
                self.primary
                if self.primary.name == name
                else self.reference
            )
            if backend is not None:
                backend.close(handle)
        self._handles.clear()

    def __enter__(self) -> "CrossChecker":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
