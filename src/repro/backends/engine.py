"""The in-process reference engine as a :class:`Backend`."""

from __future__ import annotations

from repro.backends.base import BackendCapabilities
from repro.engine.database import Database
from repro.engine.executor import execute_plan
from repro.engine.plan import PlanNode
from repro.engine.relation import Relation
from repro.engine.subplan import SubplanCache


class EngineBackend:
    """Wraps :func:`repro.engine.executor.execute_plan`.

    The handle is the :class:`Database` itself — the engine executes
    plans over in-memory relations directly.  ``load`` validates
    integrity so both backends reject inconsistent instances the same
    way (SQLite enforces PK/FK/NOT NULL declaratively).

    ``subplan_cache`` (optional, settable after construction) threads a
    shared :class:`~repro.engine.subplan.SubplanCache` into every
    ``execute`` call so a batched kill check shares unchanged subtree
    computations across its mutant set (DESIGN.md §5g).  The caller
    owns the cache lifecycle — the kill-check loop drops each dataset's
    entries when its batch completes.
    """

    name = "engine"

    def __init__(self, subplan_cache: SubplanCache | None = None):
        self.subplan_cache = subplan_cache

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities()

    def load(self, db: Database) -> Database:
        db.validate()
        return db

    def execute(self, handle: Database, plan: PlanNode) -> Relation:
        return execute_plan(plan, handle, self.subplan_cache)

    def close(self, handle: Database) -> None:
        pass
