"""Execution backends: the engine plus independent differential oracles.

See DESIGN.md §5f.  ``resolve_backend`` maps CLI/API specs ("engine",
"sqlite", or an already-constructed backend object) to instances.
"""

from __future__ import annotations

from repro.backends.base import (
    Backend,
    BackendCapabilities,
    BackendCapabilityError,
    BackendDisagreement,
    BackendError,
    CrossChecker,
)
from repro.backends.engine import EngineBackend
from repro.backends.sqlite import (
    SqliteBackend,
    SqliteHandle,
    schema_to_sqlite_ddl,
    undeclarable_foreign_keys,
)

__all__ = [
    "Backend",
    "BackendCapabilities",
    "BackendCapabilityError",
    "BackendDisagreement",
    "BackendError",
    "CrossChecker",
    "EngineBackend",
    "SqliteBackend",
    "SqliteHandle",
    "schema_to_sqlite_ddl",
    "undeclarable_foreign_keys",
    "resolve_backend",
    "BACKENDS",
]

#: Registered backend factories, by name.
BACKENDS = {
    "engine": EngineBackend,
    "sqlite": SqliteBackend,
}


def resolve_backend(spec) -> Backend:
    """Turn a backend spec into a backend instance.

    Accepts a name from :data:`BACKENDS`, an instance (returned as-is),
    or ``None`` (the engine).
    """
    if spec is None:
        return EngineBackend()
    if isinstance(spec, str):
        try:
            factory = BACKENDS[spec.lower()]
        except KeyError:
            known = ", ".join(sorted(BACKENDS))
            raise BackendError(
                f"unknown backend {spec!r} (known: {known})"
            ) from None
        return factory()
    return spec
