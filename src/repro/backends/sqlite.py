"""SQLite execution backend: an independent oracle for kill checking.

The backend renders the catalog as SQLite DDL (PK/FK/NOT NULL enforced
with ``PRAGMA foreign_keys=ON``), loads generated datasets through the
export module's INSERT path, and executes *plans* — the same trees the
engine runs, including join-order mutants that never existed as SQL text
— by printing them back to SQLite SQL with a small dialect shim:

* Division is rendered as ``(CAST(l AS REAL) / r)`` because the engine
  divides exactly (``fractions.Fraction``) while SQLite truncates
  INTEGER/INTEGER; canonical 12-significant-digit quantisation in
  :func:`repro.testing.killcheck.result_signature` absorbs the
  remaining REAL-vs-exact difference (AVG, float accumulation order).
* NATURAL joins are rendered as explicit ``ON`` equi-conjunctions with
  ``COALESCE`` output columns, mirroring the engine's coalescing rules
  exactly instead of trusting SQLite's NATURAL resolution.
* RIGHT and FULL joins are rewritten (mirrored LEFT; LEFT ∪ anti-join)
  when the linked SQLite predates native support (3.39) — or always,
  with ``force_join_rewrites=True``, which the conformance tests use to
  exercise the rewrite path on modern SQLite too.
* Result ordering is irrelevant: kill checks compare name-aligned bags,
  so SQLite's NULL placement under ORDER BY never enters the picture.

Known semantic gaps (documented in DESIGN.md §5f): SQLite compares
numbers with text by storage class where the engine raises; a bare
non-grouped select column picks an arbitrary row where the engine picks
the group's first; integer SUM overflows at 64 bits where the engine
has bignums.  The conformance grammar stays inside the common subset.
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass, replace

from repro.backends.base import BackendCapabilities, BackendError
from repro.engine.database import Database
from repro.engine.executor import _unique_names
from repro.engine.export import _sql_literal, to_insert_script
from repro.engine.plan import (
    AggregateNode,
    JoinNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SelectNode,
)
from repro.engine.relation import Relation
from repro.engine.values import normalize_value
from repro.errors import ExecutionError, IntegrityError
from repro.schema.catalog import ForeignKey, Schema
from repro.schema.types import SqlType
from repro.sql.ast import (
    Aggregate,
    BinaryOp,
    ColumnRef,
    Comparison,
    Expr,
    JoinKind,
    Literal,
    NullTest,
    SelectItem,
    Star,
)

#: SQLite grew native RIGHT/FULL OUTER JOIN in 3.39.0 (2022-06-25).
NATIVE_OUTER_JOINS = sqlite3.sqlite_version_info >= (3, 39, 0)

_TYPE_MAP = {
    SqlType.INT: "INTEGER",
    SqlType.VARCHAR: "TEXT",
    SqlType.NUMERIC: "NUMERIC",
    SqlType.FLOAT: "REAL",
    # DATE values are integer-backed throughout the generator.
    SqlType.DATE: "INTEGER",
}


def _q(name: str) -> str:
    return '"' + name.replace('"', '""') + '"'


def declarable_foreign_key(schema: Schema, fk: ForeignKey) -> bool:
    """SQLite requires the parent columns to be the parent's PK (or a
    UNIQUE index, which this catalog never declares)."""
    parent_pk = schema.table(fk.ref_table).primary_key
    return set(fk.ref_columns) == set(parent_pk) and len(fk.ref_columns) == len(
        parent_pk
    )


def undeclarable_foreign_keys(schema: Schema) -> list[ForeignKey]:
    """FKs the DDL cannot declare (engine checks them; SQLite will not)."""
    return [
        fk for fk in schema.foreign_keys() if not declarable_foreign_key(schema, fk)
    ]


def schema_to_sqlite_ddl(schema: Schema) -> str:
    """Render the catalog as SQLite CREATE TABLE statements.

    Tables with a primary key are created ``WITHOUT ROWID`` — this
    defeats the INTEGER-PRIMARY-KEY rowid alias (under which SQLite
    silently auto-assigns NULL key values instead of rejecting them, as
    the engine does) and enforces PK NOT NULL + uniqueness directly.
    """
    statements: list[str] = []
    for table in schema.tables:
        pk = set(table.primary_key)
        lines: list[str] = []
        for column in table.columns:
            parts = [_q(column.name), _TYPE_MAP[column.sqltype]]
            if not column.nullable or column.name in pk:
                parts.append("NOT NULL")
            lines.append(" ".join(parts))
        if table.primary_key:
            cols = ", ".join(_q(c) for c in table.primary_key)
            lines.append(f"PRIMARY KEY ({cols})")
        for fk in table.foreign_keys:
            if not declarable_foreign_key(schema, fk):
                continue
            # Order the pairs by the parent PK so the FK matches its index.
            parent_pk = list(schema.table(fk.ref_table).primary_key)
            pairs = sorted(
                fk.column_pairs(), key=lambda p: parent_pk.index(p[1])
            )
            child = ", ".join(_q(c) for c, _ in pairs)
            parent = ", ".join(_q(r) for _, r in pairs)
            lines.append(
                f"FOREIGN KEY ({child}) REFERENCES {_q(fk.ref_table)} ({parent})"
            )
        suffix = " WITHOUT ROWID" if table.primary_key else ""
        body = ",\n  ".join(lines)
        statements.append(f"CREATE TABLE {_q(table.name)} (\n  {body}\n){suffix};")
    return "\n".join(statements)


# ---------------------------------------------------------------------------
# Plan -> SQLite SQL
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Col:
    """One output column of a rendered FROM subtree.

    Mirrors :class:`repro.engine.frame.FrameCol` — ``binding`` is None
    for NATURAL-join coalesced columns, ``sources`` the (binding, name)
    pairs it answers for — plus ``sql``, the expression that reads the
    column in the current scope.
    """

    binding: str | None
    name: str
    sources: tuple[tuple[str, str], ...]
    sql: str

    def answers(self, binding: str, name: str) -> bool:
        if self.binding is not None:
            return self.binding == binding and self.name == name
        return (binding, name) in self.sources

    @property
    def output_name(self) -> str:
        return self.name if self.binding is None else f"{self.binding}.{self.name}"


def _resolve(cols: list[_Col], binding: str | None, name: str) -> _Col:
    """Mirror of ``Frame.resolve``: same lookups, same error cases."""
    name = name.lower()
    if binding is not None:
        binding = binding.lower()
        matches = [c for c in cols if c.answers(binding, name)]
    else:
        matches = [c for c in cols if c.name == name]
        if len(matches) > 1:
            coalesced = [c for c in matches if c.binding is None]
            if len(coalesced) == 1:
                return coalesced[0]
    if not matches:
        target = f"{binding}.{name}" if binding else name
        raise ExecutionError(f"column {target!r} not found in frame")
    if len(matches) > 1:
        target = f"{binding}.{name}" if binding else name
        raise ExecutionError(f"ambiguous column reference {target!r}")
    return matches[0]


class _PlanPrinter:
    """Renders one plan tree as a single SQLite SELECT statement."""

    def __init__(self, schema: Schema, native_right: bool, native_full: bool):
        self.schema = schema
        self.native_right = native_right
        self.native_full = native_full
        self._fresh = 0

    def fresh(self, prefix: str) -> str:
        self._fresh += 1
        return f"_{prefix}{self._fresh}"

    # -- expressions --------------------------------------------------------

    def scalar(self, expr: Expr, cols: list[_Col]) -> str:
        if isinstance(expr, Literal):
            return _sql_literal(expr.value)
        if isinstance(expr, ColumnRef):
            return _resolve(cols, expr.table, expr.column).sql
        if isinstance(expr, BinaryOp):
            left = self.scalar(expr.left, cols)
            right = self.scalar(expr.right, cols)
            if expr.op == "/":
                # Engine division is exact; SQLite INT/INT truncates.
                return f"(CAST({left} AS REAL) / {right})"
            return f"({left} {expr.op} {right})"
        if isinstance(expr, Aggregate):
            raise ExecutionError("aggregate used outside an aggregation context")
        if isinstance(expr, Star):
            raise ExecutionError("* is only valid in a select list or COUNT(*)")
        raise ExecutionError(f"cannot render expression {expr!r}")

    def select_expr(self, expr: Expr, cols: list[_Col]) -> str:
        """An expression in aggregation context (may mix aggregates)."""
        if isinstance(expr, Aggregate):
            if isinstance(expr.arg, Star):
                if expr.func != "COUNT":
                    raise ExecutionError(f"{expr.func}(*) is not valid SQL")
                return "COUNT(*)"
            arg = self.scalar(expr.arg, cols)
            distinct = "DISTINCT " if expr.distinct else ""
            return f"{expr.func}({distinct}{arg})"
        if isinstance(expr, BinaryOp):
            left = self.select_expr(expr.left, cols)
            right = self.select_expr(expr.right, cols)
            if expr.op == "/":
                return f"(CAST({left} AS REAL) / {right})"
            return f"({left} {expr.op} {right})"
        return self.scalar(expr, cols)

    def predicate(
        self, pred, cols: list[_Col], aggregated: bool = False
    ) -> str:
        if isinstance(pred, NullTest):
            inner = self.scalar(pred.expr, cols)
            keyword = "IS NOT NULL" if pred.negated else "IS NULL"
            return f"({inner} {keyword})"
        assert isinstance(pred, Comparison), pred
        render = self.select_expr if aggregated else self.scalar
        left = render(pred.left, cols)
        right = render(pred.right, cols)
        return f"({left} {pred.op} {right})"

    def conjunction(
        self, preds, cols: list[_Col], aggregated: bool = False
    ) -> str | None:
        if not preds:
            return None
        return " AND ".join(self.predicate(p, cols, aggregated) for p in preds)

    # -- FROM subtrees ------------------------------------------------------

    def render_from(self, node: PlanNode) -> tuple[str, list[_Col]]:
        if isinstance(node, ScanNode):
            table = self.schema.table(node.table)
            cols = [
                _Col(
                    node.binding,
                    name,
                    ((node.binding, name),),
                    f"{_q(node.binding)}.{_q(name)}",
                )
                for name in table.column_names
            ]
            return f"{_q(node.table)} AS {_q(node.binding)}", cols
        if isinstance(node, SelectNode):
            return self._render_filtered(node)
        if isinstance(node, JoinNode):
            return self._render_join(node)
        raise ExecutionError(f"unexpected plan node in FROM tree: {node!r}")

    def _derived(
        self, select_body: str, cols: list[_Col], prefix: str
    ) -> tuple[str, list[_Col]]:
        """Wrap a SELECT body as a derived table, remapping the columns."""
        alias = self.fresh(prefix)
        out = [
            replace(c, sql=f"{_q(alias)}.{_q(f'x{i}')}")
            for i, c in enumerate(cols)
        ]
        return f"({select_body}) AS {_q(alias)}", out

    def _select_items(self, cols: list[_Col]) -> str:
        return ", ".join(f"{c.sql} AS {_q(f'x{i}')}" for i, c in enumerate(cols))

    def _render_filtered(self, node: SelectNode) -> tuple[str, list[_Col]]:
        """A SelectNode *inside* a join tree becomes a derived table —
        its predicates must filter before the enclosing (outer) join."""
        child_sql, cols = self.render_from(node.child)
        where = self.conjunction(node.predicates, cols)
        body = f"SELECT {self._select_items(cols)} FROM {child_sql}"
        if where:
            body += f" WHERE {where}"
        return self._derived(body, cols, "q")

    def _render_join(self, node: JoinNode) -> tuple[str, list[_Col]]:
        left_sql, lcols = self.render_from(node.left)
        right_sql, rcols = self.render_from(node.right)
        if node.natural:
            return self._render_natural(node, left_sql, lcols, right_sql, rcols)
        cols = lcols + rcols
        condition = self.conjunction(node.condition, cols)
        if node.kind is JoinKind.CROSS:
            return f"({left_sql} CROSS JOIN {right_sql})", cols
        on = condition or "1=1"
        if node.kind is JoinKind.INNER:
            return f"({left_sql} JOIN {right_sql} ON {on})", cols
        if node.kind is JoinKind.LEFT:
            return f"({left_sql} LEFT JOIN {right_sql} ON {on})", cols
        if node.kind is JoinKind.RIGHT:
            if self.native_right:
                return f"({left_sql} RIGHT JOIN {right_sql} ON {on})", cols
            # Mirrored LEFT join; column references are explicit, so only
            # the FROM-clause side order changes.
            return f"({right_sql} LEFT JOIN {left_sql} ON {on})", cols
        assert node.kind is JoinKind.FULL, node.kind
        if self.native_full:
            return f"({left_sql} FULL JOIN {right_sql} ON {on})", cols
        anti_cols = [replace(c, sql="NULL") for c in lcols] + rcols
        return self._render_full_rewrite(
            left_sql, lcols, right_sql, rcols, on, cols, anti_cols
        )

    def _render_natural(
        self,
        node: JoinNode,
        left_sql: str,
        lcols: list[_Col],
        right_sql: str,
        rcols: list[_Col],
    ) -> tuple[str, list[_Col]]:
        """NATURAL joins: explicit ON conjunction + COALESCE coalescing.

        Matches the engine's ``_natural_join``: common columns (in left
        header order) first, then the left rest, then the right rest.
        ``COALESCE(l, r)`` reproduces "the coalesced value comes from
        whichever side survived" for every join kind (matched rows agree;
        padded rows are NULL on the dead side).
        """
        right_names = {c.name for c in rcols}
        common: list[str] = []
        for c in lcols:
            if c.name in right_names and c.name not in common:
                common.append(c.name)
        pairs = [
            (_resolve(lcols, None, name), _resolve(rcols, None, name))
            for name in common
        ]
        condition = (
            " AND ".join(f"({lc.sql} = {rc.sql})" for lc, rc in pairs)
            if pairs
            else "1=1"
        )
        coalesced = [
            _Col(None, lc.name, lc.sources + rc.sources,
                 f"COALESCE({lc.sql}, {rc.sql})")
            for lc, rc in pairs
        ]
        left_common = {id(lc) for lc, _ in pairs}
        right_common = {id(rc) for _, rc in pairs}
        left_rest = [c for c in lcols if id(c) not in left_common]
        right_rest = [c for c in rcols if id(c) not in right_common]
        cols = coalesced + left_rest + right_rest
        kind = node.kind
        if kind in (JoinKind.INNER, JoinKind.CROSS):
            return f"({left_sql} JOIN {right_sql} ON {condition})", cols
        if kind is JoinKind.LEFT:
            return f"({left_sql} LEFT JOIN {right_sql} ON {condition})", cols
        if kind is JoinKind.RIGHT:
            if self.native_right:
                return (
                    f"({left_sql} RIGHT JOIN {right_sql} ON {condition})",
                    cols,
                )
            return f"({right_sql} LEFT JOIN {left_sql} ON {condition})", cols
        assert kind is JoinKind.FULL, kind
        if self.native_full:
            return f"({left_sql} FULL JOIN {right_sql} ON {condition})", cols
        # Anti-join branch: unmatched right rows keep right-side values in
        # the coalesced columns and NULL-pad the left rest.
        anti_cols = (
            [replace(c, sql=rc.sql) for c, (_, rc) in zip(coalesced, pairs)]
            + [replace(c, sql="NULL") for c in left_rest]
            + right_rest
        )
        return self._render_full_rewrite(
            left_sql, lcols, right_sql, rcols, condition, cols, anti_cols
        )

    def _render_full_rewrite(
        self,
        left_sql: str,
        lcols: list[_Col],
        right_sql: str,
        rcols: list[_Col],
        on: str,
        cols: list[_Col],
        anti_cols: list[_Col],
    ) -> tuple[str, list[_Col]]:
        """FULL JOIN on a SQLite without one: LEFT JOIN ∪ right anti-join.

        ``cols`` are the output columns as seen over ``left LEFT JOIN
        right``; ``anti_cols`` the same columns as seen from the
        right-only branch (left side NULL-padded).  Binding aliases may
        repeat across the two branches — each UNION arm is its own scope.
        """
        matched = (
            f"SELECT {self._select_items(cols)} "
            f"FROM {left_sql} LEFT JOIN {right_sql} ON {on}"
        )
        anti = (
            f"SELECT {self._select_items(anti_cols)} FROM {right_sql} "
            f"WHERE NOT EXISTS (SELECT 1 FROM {left_sql} WHERE {on})"
        )
        return self._derived(f"{matched} UNION ALL {anti}", cols, "fj")

    # -- whole plans --------------------------------------------------------

    def render_plan(self, plan: PlanNode) -> tuple[str, list[str]]:
        """Render ``plan`` to (SQL text, engine-style output names).

        The SELECT list uses positional aliases (``AS "c0"``, ...); the
        engine-compatible column names are attached to the result
        relation on the Python side so both backends name columns
        identically (qualified names for star columns, ``str(expr)`` or
        the alias otherwise, ``#2``-suffixed duplicates).
        """
        final = None
        node = plan
        if isinstance(node, (ProjectNode, AggregateNode)):
            final, node = node, node.child
        predicates: list = []
        while isinstance(node, SelectNode):
            predicates = list(node.predicates) + predicates
            node = node.child
        from_sql, cols = self.render_from(node)
        where = self.conjunction(predicates, cols)

        distinct = False
        group_by: list[str] = []
        having: str | None = None
        if final is None:
            items = [(c.output_name, c.sql) for c in cols]
        elif isinstance(final, ProjectNode):
            items = self._project_items(final.items, cols)
            distinct = final.distinct
        else:
            assert isinstance(final, AggregateNode)
            items = []
            for item in final.items:
                if isinstance(item.expr, Star):
                    raise ExecutionError("SELECT * cannot be mixed with GROUP BY")
                items.append(
                    (item.alias or str(item.expr),
                     self.select_expr(item.expr, cols))
                )
            group_by = [
                _resolve(cols, ref.table, ref.column).sql
                for ref in final.group_by
            ]
            having = self.conjunction(final.having, cols, aggregated=True)

        names = _unique_names([name for name, _ in items])
        select_list = ", ".join(
            f"{sql} AS {_q(f'c{i}')}" for i, (_, sql) in enumerate(items)
        )
        sql = "SELECT "
        if distinct:
            sql += "DISTINCT "
        sql += f"{select_list} FROM {from_sql}"
        if where:
            sql += f" WHERE {where}"
        if group_by:
            sql += " GROUP BY " + ", ".join(group_by)
        if having:
            sql += f" HAVING {having}"
        return sql, names

    def _project_items(
        self, select_items: tuple[SelectItem, ...], cols: list[_Col]
    ) -> list[tuple[str, str]]:
        """Mirror of the executor's ``_expand_items`` star expansion."""
        items: list[tuple[str, str]] = []
        for item in select_items:
            expr = item.expr
            if isinstance(expr, Star):
                if expr.table:
                    binding = expr.table.lower()
                    selected = [
                        c
                        for c in cols
                        if c.binding == binding
                        or (
                            c.binding is None
                            and any(b == binding for b, _ in c.sources)
                        )
                    ]
                    if not selected:
                        raise ExecutionError(f"no columns for {expr.table}.*")
                else:
                    selected = cols
                items.extend((c.output_name, c.sql) for c in selected)
            else:
                items.append(
                    (item.alias or str(expr), self.scalar(expr, cols))
                )
        return items


# ---------------------------------------------------------------------------
# The backend
# ---------------------------------------------------------------------------


@dataclass
class SqliteHandle:
    """An opaque execution handle: the connection plus its catalog.

    The plan printer needs per-table column lists, which live on the
    :class:`Schema`, so the handle carries it alongside the connection.
    """

    conn: sqlite3.Connection
    schema: Schema


class SqliteBackend:
    """Executes plans on the Python stdlib ``sqlite3`` module.

    Args:
        force_join_rewrites: Render RIGHT/FULL joins through the
            compatibility rewrites even when the linked SQLite supports
            them natively (used by tests to exercise the rewrite path).
    """

    name = "sqlite"

    def __init__(self, force_join_rewrites: bool = False):
        self.force_join_rewrites = force_join_rewrites
        native = NATIVE_OUTER_JOINS and not force_join_rewrites
        self._native_right = native
        self._native_full = native
        # Keyed by (schema identity, plan): the SQL depends on the
        # catalog (star expansion, natural-join coalescing).
        self._sql_cache: dict[tuple[int, PlanNode], tuple[str, list[str]]] = {}
        self._last_schema: Schema | None = None

    def capabilities(self) -> BackendCapabilities:
        # Rewrites cover the gaps, so the effective surface is complete.
        return BackendCapabilities()

    def load(self, db: Database) -> SqliteHandle:
        conn = sqlite3.connect(":memory:")
        conn.execute("PRAGMA foreign_keys=ON")
        try:
            conn.executescript(schema_to_sqlite_ddl(db.schema))
            script = to_insert_script(db, quote_identifiers=True)
            if script:
                conn.executescript(script)
        except sqlite3.IntegrityError as exc:
            conn.close()
            raise IntegrityError(
                f"sqlite rejected the dataset: {exc}", violations=[str(exc)]
            ) from exc
        except sqlite3.Error as exc:
            conn.close()
            raise BackendError(f"sqlite load failed: {exc}") from exc
        self._last_schema = db.schema
        return SqliteHandle(conn, db.schema)

    def _render(self, schema: Schema, plan: PlanNode) -> tuple[str, list[str]]:
        key = (id(schema), plan)
        cached = self._sql_cache.get(key)
        if cached is None:
            printer = _PlanPrinter(schema, self._native_right, self._native_full)
            cached = self._sql_cache[key] = printer.render_plan(plan)
        return cached

    def execute(self, handle: SqliteHandle, plan: PlanNode) -> Relation:
        sql, names = self._render(handle.schema, plan)
        try:
            cursor = handle.conn.execute(sql)
            fetched = cursor.fetchall()
        except sqlite3.Error as exc:
            raise BackendError(
                f"sqlite execution failed: {exc}\nsql: {sql}"
            ) from exc
        rows = [tuple(normalize_value(v) for v in row) for row in fetched]
        return Relation(names, rows)

    def sql_of(self, plan: PlanNode, schema: Schema | None = None) -> str:
        """The SELECT statement this backend runs for ``plan``.

        Defaults to the schema of the most recently loaded dataset
        (diagnostics path: :class:`BackendDisagreement` rendering).
        """
        schema = schema or self._last_schema
        if schema is None:
            raise BackendError("sql_of needs a schema (load a dataset first)")
        return self._render(schema, plan)[0]

    def close(self, handle: SqliteHandle) -> None:
        handle.conn.close()
