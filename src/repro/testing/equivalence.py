"""Equivalence classification of surviving mutants.

The paper manually verified that every unkilled mutant was equivalent to
the original query (Section VI-C.1).  This module automates the check by
differential testing on randomized *legal* database instances: a survivor
that ever disagrees with the original is a *missed* (non-equivalent)
mutant — a completeness violation — while one that always agrees over
many random instances is classified "likely equivalent".  For the query
classes with completeness guarantees, the integration tests assert that
no survivor is ever missed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.engine.database import Database
from repro.engine.executor import execute_plan
from repro.engine.plan import PlanNode, compile_query
from repro.mutation.space import Mutant, MutationSpace
from repro.schema.catalog import Schema
from repro.testing.killcheck import result_signature


def _topological_tables(schema: Schema) -> list[str]:
    """Tables ordered so referenced tables come before referencing ones."""
    remaining = {t.name for t in schema.tables}
    deps = {
        t.name: {fk.ref_table for fk in t.foreign_keys if fk.ref_table != t.name}
        for t in schema.tables
    }
    ordered: list[str] = []
    while remaining:
        ready = sorted(
            name for name in remaining if not (deps[name] & remaining)
        )
        if not ready:  # FK cycle; break arbitrarily but deterministically
            ready = [sorted(remaining)[0]]
        for name in ready:
            ordered.append(name)
            remaining.remove(name)
    return ordered


def random_database(
    schema: Schema,
    rng: random.Random,
    rows_per_table: int = 4,
    value_range: int = 6,
) -> Database:
    """A random legal instance: PKs unique, FKs resolved against parents.

    Small value ranges are deliberate — they make joins and collisions
    likely, which is what distinguishes inequivalent plans.
    """
    db = Database(schema)
    for table_name in _topological_tables(schema):
        table = schema.table(table_name)
        # Composite foreign keys must be sampled as whole parent keys, so
        # collect candidate *tuples* per foreign key, not per column.
        fk_choices: list[tuple[tuple[str, ...], list[tuple]]] = []
        fk_columns: set[str] = set()
        for fk in table.foreign_keys:
            target = db.relation(fk.ref_table)
            indices = [target.column_index(c) for c in fk.ref_columns]
            keys = [tuple(row[i] for i in indices) for row in target.rows]
            fk_choices.append((fk.columns, keys))
            fk_columns.update(fk.columns)
        pk_seen: set[tuple] = set()
        pk_cols = set(table.primary_key)
        for _ in range(rows_per_table):
            for _attempt in range(20):
                values = {}
                ok = True
                for columns, keys in fk_choices:
                    if not keys:
                        ok = False
                        break
                    chosen = rng.choice(keys)
                    for column_name, value in zip(columns, chosen):
                        values[column_name] = value
                if not ok:
                    break
                for column in table.columns:
                    if column.name in fk_columns:
                        continue
                    elif column.domain:
                        values[column.name] = rng.choice(list(column.domain))
                    elif column.sqltype.is_textual:
                        values[column.name] = f"v{rng.randrange(value_range)}"
                    else:
                        values[column.name] = rng.randrange(value_range)
                if pk_cols:
                    key = tuple(values[c] for c in table.primary_key)
                    if key in pk_seen:
                        continue
                    pk_seen.add(key)
                db.insert_dict(table_name, values)
                break
    db.validate()
    return db


@dataclass
class SurvivorClassification:
    """Outcome of differential testing one surviving mutant."""

    mutant: Mutant
    likely_equivalent: bool
    witness: Database | None = None  # instance where results differed


@dataclass
class ClassificationReport:
    results: list[SurvivorClassification] = field(default_factory=list)

    @property
    def missed(self) -> list[SurvivorClassification]:
        """Survivors proven non-equivalent (completeness violations)."""
        return [r for r in self.results if not r.likely_equivalent]

    @property
    def likely_equivalent(self) -> list[SurvivorClassification]:
        return [r for r in self.results if r.likely_equivalent]


def classify_survivors(
    space: MutationSpace,
    survivors: list[Mutant],
    trials: int = 25,
    rows_per_table: int = 4,
    seed: int = 20100301,
    original_plan: PlanNode | None = None,
) -> ClassificationReport:
    """Differentially test survivors on random legal instances."""
    rng = random.Random(seed)
    plan = original_plan or compile_query(space.analyzed.query)
    report = ClassificationReport()
    instances = [
        random_database(space.analyzed.schema, rng, rows_per_table)
        for _ in range(trials)
    ]
    original = [result_signature(execute_plan(plan, db)) for db in instances]
    for mutant in survivors:
        witness = None
        for db, expected in zip(instances, original):
            got = result_signature(execute_plan(mutant.plan, db))
            if got != expected:
                witness = db
                break
        report.results.append(
            SurvivorClassification(mutant, witness is None, witness)
        )
    return report
