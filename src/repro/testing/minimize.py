"""Test-suite minimization: prune datasets that add no killing power.

The paper's conclusion lists "minimizing the number of datasets
generated, by pruning redundant datasets" as ongoing work.  This module
implements it as greedy weighted set cover over the kill matrix: keep
the original-query dataset (the user always wants one non-empty result),
then repeatedly keep the dataset that kills the most not-yet-covered
mutants, until every mutant killed by the full suite is covered.

Greedy set cover is a ln(n)-approximation of the optimal cover, which is
NP-hard to compute exactly — acceptable here because suites are already
linear in query size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.generator import GeneratedDataset, TestSuite
from repro.engine.database import Database
from repro.mutation.space import MutationSpace
from repro.testing.killcheck import KillReport, evaluate_suite


@dataclass
class MinimizationResult:
    """Outcome of suite minimization.

    Attributes:
        kept: Datasets retained, in original suite order.
        dropped: Redundant datasets, with the reason each was dropped.
        report: The kill report of the *full* suite the cover was
            computed from.
    """

    kept: list[GeneratedDataset]
    dropped: list[tuple[GeneratedDataset, str]] = field(default_factory=list)
    report: KillReport | None = None

    @property
    def kept_count(self) -> int:
        return len(self.kept)


def minimize_suite(
    suite: TestSuite,
    space: MutationSpace,
    keep_original: bool = True,
) -> MinimizationResult:
    """Greedy set-cover pruning of ``suite`` against ``space``.

    Args:
        suite: The generated test suite.
        space: The mutation space to preserve coverage over.
        keep_original: Always retain the original-query dataset even if
            it kills nothing (testers want one positive case).
    """
    datasets = suite.datasets
    report = evaluate_suite(space, [d.db for d in datasets])
    kills_of: list[set[int]] = [set() for _ in datasets]
    for mutant_index, outcome in enumerate(report.outcomes):
        for dataset_index in outcome.killed_by:
            kills_of[dataset_index].add(mutant_index)

    selected: set[int] = set()
    covered: set[int] = set()
    if keep_original:
        for index, dataset in enumerate(datasets):
            if dataset.group == "original":
                selected.add(index)
                covered |= kills_of[index]

    total_killed = {
        m for m, outcome in enumerate(report.outcomes) if outcome.killed
    }
    while covered != total_killed:
        best_index = -1
        best_gain = -1
        for index in range(len(datasets)):
            if index in selected:
                continue
            gain = len(kills_of[index] - covered)
            if gain > best_gain:
                best_gain = gain
                best_index = index
        if best_gain <= 0:
            break
        selected.add(best_index)
        covered |= kills_of[best_index]

    kept = [d for i, d in enumerate(datasets) if i in selected]
    dropped = []
    for index, dataset in enumerate(datasets):
        if index in selected:
            continue
        if not kills_of[index]:
            reason = "kills no mutants"
        else:
            reason = "kills only mutants covered by kept datasets"
        dropped.append((dataset, reason))
    return MinimizationResult(kept, dropped, report)


def minimize_dataset(
    db: Database, predicate: Callable[[Database], bool]
) -> Database:
    """Greedy row-level shrinking: the smallest instance (row-wise local
    minimum) on which ``predicate`` still holds.

    Used by the conformance harness to shrink a dataset that triggers a
    backend disagreement down to a human-readable repro.  The predicate
    is treated as False when it raises, so a reduction that breaks
    integrity (dangling FK after removing a parent row) or crashes a
    backend is simply not taken — the minimized dataset stays loadable.

    Rows are removed one at a time until no single-row removal preserves
    the predicate; generated datasets are a handful of rows, so the
    quadratic loop is immaterial.
    """

    def holds(candidate: Database) -> bool:
        try:
            return bool(predicate(candidate))
        except Exception:
            return False

    current = db.copy()
    changed = True
    while changed:
        changed = False
        for table in current.table_names:
            index = 0
            while index < len(current.relation(table).rows):
                candidate = current.copy()
                del candidate.relation(table).rows[index]
                if holds(candidate):
                    current = candidate
                    changed = True
                else:
                    index += 1
    return current
