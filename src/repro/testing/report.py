"""Human-readable reports for kill matrices and suite summaries."""

from __future__ import annotations

from repro.core.generator import TestSuite
from repro.testing.killcheck import KillReport


def format_kill_report(report: KillReport, show_survivors: bool = True) -> str:
    """Render a kill report as text."""
    lines = [
        f"mutants: {report.total}  killed: {report.killed}  "
        f"survivors: {report.total - report.killed}  "
        f"datasets: {report.dataset_count}"
    ]
    if report.cache_stats is not None:
        stats = report.cache_stats
        lines.append(
            f"  subplan cache: {stats.get('hit_rate', 0.0):.0%} hit rate "
            f"({stats.get('hits', 0)} hits / {stats.get('misses', 0)} misses)"
        )
    for index in range(report.dataset_count):
        kills = report.kills_of_dataset(index)
        if kills:
            lines.append(f"  dataset {index}: kills {kills} mutants")
    if show_survivors:
        for mutant in report.survivors:
            lines.append(f"  survivor: {mutant}")
    return "\n".join(lines)


def format_trace(trace, show_attrs: bool = True) -> str:
    """Render a span tree (:attr:`TestSuite.trace`) as an indented tree.

    One line per span — name, status, elapsed seconds and its scalar
    attributes (nested mappings like per-spec cache counts are
    summarised as ``key={n}``) — children indented under parents::

        generate [ok] 0.004s specs=4 datasets=4
          parse [ok] 0.000s
          ...
          solve [completed] 0.001s spec=0 group=original ...
            attempt [sat] 0.001s rung=primary ...
    """
    from repro.obs.trace import walk_spans

    if not trace:
        return "(no trace recorded — enable GenConfig.trace)"
    lines = []
    for record, depth in walk_spans(trace):
        line = (
            f"{'  ' * depth}{record.get('name', '?')} "
            f"[{record.get('status', '?')}] "
            f"{record.get('elapsed_s', 0.0):.3f}s"
        )
        if show_attrs:
            parts = []
            for key, value in (record.get("attrs") or {}).items():
                if isinstance(value, dict):
                    parts.append(f"{key}={{{len(value)}}}")
                else:
                    parts.append(f"{key}={value}")
            if parts:
                line += " " + " ".join(parts)
        lines.append(line)
    return "\n".join(lines)


def format_suite(suite: TestSuite) -> str:
    """Render a test suite summary as text."""
    lines = [
        f"query: {suite.sql}",
        f"datasets: {len(suite.datasets)} "
        f"({suite.non_original_count()} targeted + original), "
        f"skipped groups: {len(suite.skipped)}",
        f"generation time: {suite.elapsed:.3f}s "
        f"(solver: {suite.solve_time:.3f}s)",
        suite.health.summary(),
    ]
    for dataset in suite.datasets:
        rows = dataset.db.total_rows()
        lines.append(f"  [{dataset.group}] {dataset.target} ({rows} rows)")
    for skip in suite.skipped:
        line = f"  [skipped:{skip.reason}] {skip.target}"
        if skip.detail:
            line += f" — {skip.detail}"
        lines.append(line)
    for warning in suite.warnings:
        lines.append(f"  warning {warning}")
    return "\n".join(lines)
