"""Human-readable reports for kill matrices and suite summaries."""

from __future__ import annotations

from repro.core.generator import TestSuite
from repro.testing.killcheck import KillReport


def format_kill_report(report: KillReport, show_survivors: bool = True) -> str:
    """Render a kill report as text."""
    lines = [
        f"mutants: {report.total}  killed: {report.killed}  "
        f"survivors: {report.total - report.killed}  "
        f"datasets: {report.dataset_count}"
    ]
    for index in range(report.dataset_count):
        kills = report.kills_of_dataset(index)
        if kills:
            lines.append(f"  dataset {index}: kills {kills} mutants")
    if show_survivors:
        for mutant in report.survivors:
            lines.append(f"  survivor: {mutant}")
    return "\n".join(lines)


def format_suite(suite: TestSuite) -> str:
    """Render a test suite summary as text."""
    lines = [
        f"query: {suite.sql}",
        f"datasets: {len(suite.datasets)} "
        f"({suite.non_original_count()} targeted + original), "
        f"skipped groups: {len(suite.skipped)}",
        f"generation time: {suite.elapsed:.3f}s "
        f"(solver: {suite.solve_time:.3f}s)",
        suite.health.summary(),
    ]
    for dataset in suite.datasets:
        rows = dataset.db.total_rows()
        lines.append(f"  [{dataset.group}] {dataset.target} ({rows} rows)")
    for skip in suite.skipped:
        line = f"  [skipped:{skip.reason}] {skip.target}"
        if skip.detail:
            line += f" — {skip.detail}"
        lines.append(line)
    for warning in suite.warnings:
        lines.append(f"  warning {warning}")
    return "\n".join(lines)
