"""Workload-level generation: one dataset collection for many queries.

The paper's future-work list includes "data generation for an application
with multiple queries".  This module generates a suite per query and then
minimises *across* the workload: a dataset generated for one query often
kills mutants of another (they share relations), so the combined
fixture set is much smaller than the concatenation of per-query suites.

The cover is greedy set cover over the union kill-matrix, with the
guarantee that every mutant killed by its own query's full suite stays
killed by the workload datasets.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field

from repro.core.generator import GenConfig, GeneratedDataset, TestSuite, XDataGenerator
from repro.engine.database import Database
from repro.engine.executor import execute_plan
from repro.engine.subplan import SubplanCache
from repro.mutation.space import MutationSpace, enumerate_mutants
from repro.schema.catalog import Schema
from repro.testing.killcheck import (
    _attach_subplan_cache,
    mutant_order,
    result_signature,
)


@dataclass
class WorkloadEntry:
    """Per-query results inside a workload.

    A query whose generation failed outright has ``error`` set and no
    suite or mutation space; it contributes nothing to the kill matrix
    but does not abort the workload (DESIGN.md §5d).
    """

    name: str
    sql: str
    suite: TestSuite | None
    space: MutationSpace | None
    killed: int = 0
    total: int = 0
    error: str | None = None

    @property
    def failed(self) -> bool:
        return self.error is not None


@dataclass
class WorkloadSuite:
    """The combined result of :func:`generate_workload`."""

    entries: list[WorkloadEntry]
    datasets: list[GeneratedDataset] = field(default_factory=list)
    #: (entry index, dataset index within its suite) per combined dataset.
    provenance: list[tuple[int, int]] = field(default_factory=list)

    @property
    def databases(self) -> list[Database]:
        return [d.db for d in self.datasets]

    def summary(self) -> str:
        generated = sum(
            len(e.suite.datasets) for e in self.entries if e.suite is not None
        )
        lines = [
            f"workload: {len(self.entries)} queries, "
            f"{len(self.datasets)} combined datasets "
            f"(from {generated} generated)"
        ]
        for entry in self.entries:
            if entry.failed:
                lines.append(f"  {entry.name}: FAILED ({entry.error})")
            else:
                lines.append(
                    f"  {entry.name}: kills {entry.killed}/{entry.total} mutants"
                )
        return "\n".join(lines)

    @property
    def failures(self) -> list[WorkloadEntry]:
        return [entry for entry in self.entries if entry.failed]


def _replay_run(journal, sql: str, suite) -> None:
    """Journal one pooled query's run from its shipped span tree.

    Workers run with the journal path stripped (concurrent appends would
    interleave) but tracing forced on; the parent replays each suite's
    spans here in close order, producing the same event sequence an
    in-process run would have written.
    """
    from repro.core.parallel import FailedSuite
    from repro.obs.trace import span_path_events

    journal.run_start(sql)
    if isinstance(suite, FailedSuite) or suite is None:
        error = suite.error if suite is not None else "no result from pool"
        journal.event("run_abort", ts=time.time(), error=error)
        return
    for root in suite.trace or ():
        for record, path in span_path_events(root):
            journal.span_sink(record, path)
    journal.run_end(
        suite.elapsed,
        suite.health.ok,
        dataclasses.asdict(suite.health),
        suite.metrics,
    )


def generate_workload(
    schema: Schema,
    queries: dict[str, str],
    config: GenConfig | None = None,
    minimize: bool = True,
    workers: int | None = None,
    fail_fast: bool = False,
    backend=None,
    cross_check: bool = False,
    subplan_cache: bool = True,
) -> WorkloadSuite:
    """Generate suites for every query and combine them.

    Args:
        schema: Shared schema.
        queries: name -> SQL mapping.
        config: Generator configuration (shared).
        minimize: Greedily drop datasets that add no killing power across
            the whole workload (each query's original-result dataset is
            always kept).
        workers: Process-pool width for generation, parallel across
            queries (each query is an independent generation problem).
            Defaults to ``config.workers``; 1 means sequential.  The
            combined suite is identical either way — results are merged
            in query order.
        fail_fast: Re-raise the first per-query generation failure
            instead of recording it as a failed entry and continuing
            with the remaining queries (the default; see
            :attr:`WorkloadEntry.error`).
        backend: Execution backend for the union kill matrix — a name
            (``"engine"``, ``"sqlite"``) or backend instance; ``None``
            keeps the direct engine path.
        cross_check: Shadow every kill-matrix execution on the second
            backend and raise
            :class:`repro.backends.BackendDisagreement` on any split
            (see :func:`repro.testing.killcheck.evaluate_suite`).
        subplan_cache: Share subtree results across the union
            kill-matrix batch (DESIGN.md §5g); ``False`` is the
            ablation arm (``--no-subplan-cache``) that re-executes
            every tree from scratch.  The matrix is identical either
            way.

    Observability (DESIGN.md §5e): with ``config.journal_path`` set,
    every query's run is appended to one journal.  Sequential runs
    journal live from inside each ``generate()`` call; pooled runs strip
    the path from worker configs (one writer only) and the parent
    replays each suite's shipped span tree here, so the journal is
    complete either way.
    """
    config = config or GenConfig()
    if fail_fast and not config.fail_fast:
        config = dataclasses.replace(config, fail_fast=True)
    fail_fast = fail_fast or config.fail_fast
    if workers is None:
        workers = config.workers

    def failed_entry(name: str, sql: str, error: str) -> WorkloadEntry:
        return WorkloadEntry(name, sql, None, None, error=error)

    entries: list[WorkloadEntry] = []
    if workers > 1 and len(queries) > 1:
        from repro.core.parallel import FailedSuite, generate_suites_parallel

        suites = generate_suites_parallel(schema, queries, config, workers)
        journal = None
        if config.journal_path is not None:
            from repro.obs import JournalWriter

            journal = JournalWriter(config.journal_path)
        try:
            for name, suite in suites.items():
                if journal is not None:
                    _replay_run(journal, queries[name], suite)
                if isinstance(suite, FailedSuite):
                    entries.append(
                        failed_entry(name, queries[name], suite.error)
                    )
                    continue
                space = enumerate_mutants(suite.analyzed)
                entries.append(
                    WorkloadEntry(name, queries[name], suite, space)
                )
        finally:
            if journal is not None:
                journal.close()
    else:
        generator = XDataGenerator(schema, config)
        for name, sql in queries.items():
            try:
                suite = generator.generate(sql)
            except Exception as exc:
                if fail_fast:
                    raise
                entries.append(
                    failed_entry(name, sql, f"{type(exc).__name__}: {exc}")
                )
                continue
            space = enumerate_mutants(suite.analyzed)
            entries.append(WorkloadEntry(name, sql, suite, space))

    all_datasets: list[tuple[int, int, GeneratedDataset]] = []
    for entry_index, entry in enumerate(entries):
        if entry.failed:
            continue
        for dataset_index, dataset in enumerate(entry.suite.datasets):
            all_datasets.append((entry_index, dataset_index, dataset))

    # Union kill matrix: which combined dataset kills which (query, mutant).
    # Batched per dataset (DESIGN.md §5g): each combined dataset is
    # visited once, every query's original and fingerprint-sorted mutant
    # batch runs over it against one shared subplan cache — scans and
    # join subtrees shared *across queries* are computed once per
    # dataset too, then the dataset's entries (and backend handles) are
    # released before moving on.
    cache = SubplanCache() if subplan_cache else None
    checker = None
    if backend is not None or cross_check:
        from repro.backends import CrossChecker, resolve_backend

        primary = resolve_backend(backend)
        reference = None
        if cross_check:
            reference = resolve_backend(
                "engine" if primary.name == "sqlite" else "sqlite"
            )
        _attach_subplan_cache((primary, reference), cache)
        checker = CrossChecker(primary, reference)

    def signature_of(plan, db, context):
        if checker is None:
            return result_signature(execute_plan(plan, db, cache))
        return checker.signature(plan, db, context)

    orders = [
        mutant_order(entry.space.mutants, fingerprint_sort=subplan_cache)
        if not entry.failed
        else []
        for entry in entries
    ]
    kills: list[set[tuple[int, int]]] = [set() for _ in all_datasets]
    killable: set[tuple[int, int]] = set()
    try:
        for dataset_pos, (_, _, dataset) in enumerate(all_datasets):
            db = dataset.db
            for entry_index, entry in enumerate(entries):
                if entry.failed:
                    continue
                original = signature_of(
                    entry.space.original_plan, db,
                    f"{entry.name}: original query",
                )
                for mutant_index in orders[entry_index]:
                    mutant = entry.space.mutants[mutant_index]
                    context = f"{entry.name}: mutant {mutant.description}"
                    if signature_of(mutant.plan, db, context) != original:
                        kills[dataset_pos].add((entry_index, mutant_index))
                        killable.add((entry_index, mutant_index))
            if checker is not None:
                checker.release(db)
            if cache is not None:
                cache.drop_dataset(db)
        for entry in entries:
            if not entry.failed:
                entry.total = len(entry.space.mutants)
    finally:
        if checker is not None:
            checker.close()

    selected: set[int] = set()
    if minimize:
        covered: set[tuple[int, int]] = set()
        for dataset_pos, (_, _, dataset) in enumerate(all_datasets):
            if dataset.group == "original":
                selected.add(dataset_pos)
                covered |= kills[dataset_pos]
        while covered != killable:
            best, best_gain = -1, 0
            for dataset_pos in range(len(all_datasets)):
                if dataset_pos in selected:
                    continue
                gain = len(kills[dataset_pos] - covered)
                if gain > best_gain:
                    best, best_gain = dataset_pos, gain
            if best < 0:
                break
            selected.add(best)
            covered |= kills[best]
    else:
        selected = set(range(len(all_datasets)))

    suite = WorkloadSuite(entries)
    for dataset_pos in sorted(selected):
        entry_index, dataset_index, dataset = all_datasets[dataset_pos]
        suite.datasets.append(dataset)
        suite.provenance.append((entry_index, dataset_index))
    for entry_index, entry in enumerate(entries):
        entry.killed = len(
            {
                (e, m)
                for pos in selected
                for (e, m) in kills[pos]
                if e == entry_index
            }
        )
    return suite
