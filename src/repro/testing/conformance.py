"""Randomized cross-backend conformance harness (DESIGN.md §5f).

Seeded query generation over the mutation grammar — joins of all four
types (inner/left/right/full, plus NATURAL variants), comparison
conjuncts, aggregates with HAVING, NULL tests — feeding the *normal*
data-generation pipeline, then asserting that the in-process engine and
the SQLite backend agree on the original query **and every mutant in
its mutation space**, on every generated dataset.

Any split raises :class:`repro.backends.BackendDisagreement` with a
row-minimized repro dataset attached (via
:func:`repro.testing.minimize.minimize_dataset`), so a conformance
failure is immediately actionable: seed, SQL, SQLite rendering, and the
smallest dataset that still tells the two apart.

Half the corpus (odd seeds by default) runs SQLite with
``force_join_rewrites=True`` so the RIGHT/FULL compatibility rewrites
are exercised even on a modern SQLite with native outer joins.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.backends import (
    BackendDisagreement,
    CrossChecker,
    EngineBackend,
    SqliteBackend,
)
from repro.core.generator import GenConfig, XDataGenerator
from repro.datasets.university import university_sample_database, university_schema
from repro.engine.database import Database
from repro.engine.subplan import SubplanCache
from repro.errors import XDataError
from repro.mutation.space import enumerate_mutants
from repro.schema.catalog import Schema
from repro.testing.killcheck import mutant_order

#: Single-column equi-join edges of the university schema, as
#: (left "table alias", right "table alias", join condition) triples.
_EDGES = [
    ("instructor i", "teaches t", "i.id = t.id"),
    ("teaches t", "course c", "t.course_id = c.course_id"),
    ("student s", "takes k", "s.id = k.id"),
    ("takes k", "course c", "k.course_id = c.course_id"),
    ("course c", "department d", "c.dept_name = d.dept_name"),
    ("instructor i", "department d", "i.dept_name = d.dept_name"),
    ("student s", "department d", "s.dept_name = d.dept_name"),
    ("advisor a", "student s", "a.s_id = s.id"),
    ("advisor a", "instructor i", "a.i_id = i.id"),
    ("prereq p", "course c", "p.course_id = c.course_id"),
]

#: Three-table chains: two edges sharing the middle relation.
_CHAINS = [
    ("instructor i", "teaches t", "course c",
     "i.id = t.id", "t.course_id = c.course_id"),
    ("student s", "takes k", "course c",
     "s.id = k.id", "k.course_id = c.course_id"),
    ("teaches t", "course c", "department d",
     "t.course_id = c.course_id", "c.dept_name = d.dept_name"),
    ("advisor a", "student s", "department d",
     "a.s_id = s.id", "s.dept_name = d.dept_name"),
    ("prereq p", "course c", "department d",
     "p.course_id = c.course_id", "c.dept_name = d.dept_name"),
]

#: NATURAL-joinable pairs (shared column names the engine coalesces).
_NATURAL_PAIRS = [
    ("teaches t", "takes k"),      # id, course_id
    ("instructor i", "student s"),  # id, name, dept_name
    ("prereq p", "takes k"),        # course_id
]

#: Numeric columns usable in comparison conjuncts and aggregates, with a
#: plausible constant range: alias.column -> (low, high, step).
_NUMERIC = {
    "i.salary": (40000, 100000, 5000),
    "t.year": (2005, 2012, 1),
    "c.credits": (1, 5, 1),
    "s.tot_cred": (0, 130, 10),
    "d.budget": (50000, 120000, 10000),
    "cl.capacity": (10, 500, 30),
}

#: Nullable, non-key columns usable in IS [NOT] NULL conjuncts.
_NULLABLE = {
    "i": ["salary", "name"],
    "t": ["sec_id", "semester", "year"],
    "c": ["title", "credits"],
    "s": ["tot_cred", "name"],
    "d": ["budget"],
    "k": ["grade"],
}

#: Enumerated-domain VARCHAR columns for string-comparison conjuncts.
_DOMAIN = {
    "i.dept_name": "department:dept_name",
    "s.dept_name": "department:dept_name",
    "c.dept_name": "department:dept_name",
    "t.semester": "teaches:semester",
    "k.grade": "takes:grade",
}

_COMPARISON_OPS = ("=", "<", ">", "<=", ">=", "<>")
_AGG_FUNCS = ("MIN", "MAX", "SUM", "AVG", "COUNT")
_JOIN_SYNTAX = ("JOIN", "LEFT OUTER JOIN", "RIGHT OUTER JOIN", "FULL OUTER JOIN")

#: GROUP BY columns per alias (never nullable-FK, always intuitive).
_GROUP_COLS = {
    "i": "i.dept_name",
    "s": "s.dept_name",
    "c": "c.dept_name",
    "t": "t.semester",
    "k": "k.grade",
    "d": "d.building",
}


def _aliases(refs: list[str]) -> list[str]:
    return [ref.split()[1] for ref in refs]


def _numeric_conjunct(rng: random.Random, aliases: list[str]) -> str | None:
    candidates = [
        key for key in _NUMERIC if key.split(".")[0] in aliases
    ]
    if not candidates:
        return None
    key = rng.choice(candidates)
    low, high, step = _NUMERIC[key]
    constant = rng.randrange(low, high + 1, step)
    op = rng.choice(_COMPARISON_OPS)
    return f"{key} {op} {constant}"


def _domain_conjunct(
    rng: random.Random, schema: Schema, aliases: list[str]
) -> str | None:
    candidates = [
        key for key in _DOMAIN if key.split(".")[0] in aliases
    ]
    if not candidates:
        return None
    key = rng.choice(candidates)
    table, column = _DOMAIN[key].split(":")
    domain = schema.table(table).column(column).domain
    if not domain:
        return None
    value = rng.choice(domain)
    op = rng.choice(("=", "<>"))
    return f"{key} {op} '{value}'"


def _null_conjunct(rng: random.Random, aliases: list[str]) -> str | None:
    candidates = [a for a in aliases if a in _NULLABLE]
    if not candidates:
        return None
    alias = rng.choice(candidates)
    column = rng.choice(_NULLABLE[alias])
    keyword = rng.choice(("IS NULL", "IS NOT NULL"))
    return f"{alias}.{column} {keyword}"


def _filters(
    rng: random.Random, schema: Schema, aliases: list[str], budget: int
) -> list[str]:
    out: list[str] = []
    for _ in range(budget):
        kind = rng.random()
        if kind < 0.55:
            conjunct = _numeric_conjunct(rng, aliases)
        elif kind < 0.8:
            conjunct = _domain_conjunct(rng, schema, aliases)
        else:
            conjunct = _null_conjunct(rng, aliases)
        if conjunct and conjunct not in out:
            out.append(conjunct)
    return out


def sample_conformance_query(rng: random.Random, schema: Schema) -> str:
    """Draw one SQL query from the conformance grammar.

    The grammar stays inside the intersection of the pipeline's query
    class and the engine/SQLite common semantic subset (DESIGN.md §5f
    lists the excluded constructs).
    """
    shape = rng.random()
    if shape < 0.20:
        # Single-table selection.
        table = rng.choice(
            [("instructor", "i"), ("student", "s"), ("course", "c"),
             ("department", "d"), ("teaches", "t")]
        )
        aliases = [table[1]]
        where = _filters(rng, schema, aliases, rng.randint(1, 2))
        sql = f"SELECT * FROM {table[0]} {table[1]}"
        if where:
            sql += " WHERE " + " AND ".join(where)
        return sql
    if shape < 0.45:
        # Two-table join, all four explicit kinds or comma syntax.
        left, right, condition = rng.choice(_EDGES)
        aliases = _aliases([left, right])
        extra = _filters(rng, schema, aliases, rng.randint(0, 2))
        if rng.random() < 0.4:
            where = [condition] + extra
            return (
                f"SELECT * FROM {left}, {right} WHERE " + " AND ".join(where)
            )
        kind = rng.choice(_JOIN_SYNTAX)
        sql = f"SELECT * FROM {left} {kind} {right} ON {condition}"
        if extra:
            sql += " WHERE " + " AND ".join(extra)
        return sql
    if shape < 0.55:
        # NATURAL join (optionally outer).
        left, right = rng.choice(_NATURAL_PAIRS)
        kind = rng.choice(("JOIN", "LEFT OUTER JOIN", "RIGHT OUTER JOIN",
                           "FULL OUTER JOIN"))
        sql = f"SELECT * FROM {left} NATURAL {kind} {right}"
        extra = _filters(rng, schema, _aliases([left, right]), rng.randint(0, 1))
        if extra:
            sql += " WHERE " + " AND ".join(extra)
        return sql
    if shape < 0.75:
        # Three-table chain (comma syntax: the join-order mutant space).
        t1, t2, t3, c12, c23 = rng.choice(_CHAINS)
        aliases = _aliases([t1, t2, t3])
        where = [c12, c23] + _filters(rng, schema, aliases, rng.randint(0, 2))
        return (
            f"SELECT * FROM {t1}, {t2}, {t3} WHERE " + " AND ".join(where)
        )
    # Aggregation, over one table or a two-table join.
    if rng.random() < 0.5:
        left, right, condition = rng.choice(_EDGES)
        refs, join_where = [left, right], [condition]
    else:
        table = rng.choice(
            [("instructor", "i"), ("student", "s"), ("course", "c"),
             ("department", "d")]
        )
        refs, join_where = [f"{table[0]} {table[1]}"], []
    aliases = _aliases(refs)
    group_candidates = [
        _GROUP_COLS[a] for a in aliases if a in _GROUP_COLS
    ]
    group_col = rng.choice(group_candidates)
    numeric_candidates = [
        key for key in _NUMERIC if key.split(".")[0] in aliases
    ]
    func = rng.choice(_AGG_FUNCS)
    if func == "COUNT" and (not numeric_candidates or rng.random() < 0.5):
        agg = "COUNT(*)"
    else:
        target = (
            rng.choice(numeric_candidates)
            if numeric_candidates
            else f"{aliases[0]}.{_NULLABLE.get(aliases[0], ['name'])[0]}"
        )
        if func in ("SUM", "AVG") and not numeric_candidates:
            func = "COUNT"
        agg = f"{func}({target})"
    where = join_where + _filters(rng, schema, aliases, rng.randint(0, 1))
    sql = f"SELECT {group_col}, {agg} FROM " + ", ".join(refs)
    if where:
        sql += " WHERE " + " AND ".join(where)
    sql += f" GROUP BY {group_col}"
    if rng.random() < 0.4:
        count_target = (
            rng.choice(numeric_candidates)
            if numeric_candidates
            else group_col
        )
        sql += f" HAVING COUNT({count_target}) > {rng.randint(0, 3)}"
    return sql


@dataclass
class ConformanceCase:
    """One seeded conformance case's outcome."""

    seed: int
    sql: str
    skipped: str | None = None
    force_join_rewrites: bool = False
    mutants: int = 0
    datasets: int = 0
    #: Cross-checked (engine + SQLite) plan executions performed.
    executions: int = 0

    @property
    def checked(self) -> bool:
        return self.skipped is None


@dataclass
class ConformanceReport:
    """Aggregate outcome of a conformance corpus run."""

    cases: list[ConformanceCase] = field(default_factory=list)

    @property
    def checked(self) -> int:
        return sum(1 for c in self.cases if c.checked)

    @property
    def skipped(self) -> int:
        return len(self.cases) - self.checked

    @property
    def executions(self) -> int:
        return sum(c.executions for c in self.cases)

    def summary(self) -> str:
        return (
            f"conformance: {self.checked}/{len(self.cases)} cases checked "
            f"({self.skipped} skipped), {self.executions} cross-checked "
            f"executions, 0 disagreements"
        )


def _still_disagrees(plan, primary, reference):
    """A predicate over datasets: do the backends still split on ``plan``?"""
    from repro.testing.killcheck import result_signature

    def predicate(db: Database) -> bool:
        handles = []
        try:
            signatures = []
            for backend in (primary, reference):
                handle = backend.load(db)
                handles.append((backend, handle))
                signatures.append(
                    result_signature(backend.execute(handle, plan))
                )
            return signatures[0] != signatures[1]
        finally:
            for backend, handle in handles:
                backend.close(handle)

    return predicate


def cross_check_space(
    space,
    databases,
    primary,
    reference,
    label: str,
    cache: SubplanCache | None = None,
) -> int:
    """Dual-execute the original plan and every mutant over every dataset.

    The shared execution core of the conformance harness and the
    campaign's cross-check oracle: one :class:`CrossChecker` pass per
    dataset in cache-friendly mutant order, releasing backend handles
    (and the subplan cache's per-dataset entries) before moving on.
    Returns the number of cross-checked executions; raises
    :class:`BackendDisagreement` on the first split, *without*
    minimizing (the caller owns minimization — it may need to detach
    caches first).
    """
    plan = space.original_plan
    order = mutant_order(space.mutants)
    executions = 0
    checker = CrossChecker(primary, reference)
    try:
        for db in databases:
            checker.signature(plan, db, f"{label}: original query")
            executions += 1
            for i in order:
                mutant = space.mutants[i]
                checker.signature(
                    mutant.plan,
                    db,
                    f"{label}: mutant [{mutant.kind}] {mutant.description}",
                )
                executions += 1
            checker.release(db)
            if cache is not None:
                cache.drop_dataset(db)
    finally:
        checker.close()
    return executions


def run_conformance_case(
    seed: int,
    schema: Schema | None = None,
    config: GenConfig | None = None,
    force_join_rewrites: bool | None = None,
    include_sample_db: bool = False,
) -> ConformanceCase:
    """Generate, mutate, and cross-check one seeded case.

    Draws a query with ``random.Random(seed)``, runs the normal
    generation pipeline, and executes the original plan and every
    mutant on both backends over every generated dataset.  Returns the
    case record; raises :class:`BackendDisagreement` (with a minimized
    repro dataset attached) on any split.

    Args:
        seed: RNG seed; also decides the rewrite mode when
            ``force_join_rewrites`` is None (odd seeds force rewrites).
        schema: Defaults to the university schema.
        config: Generator configuration.
        include_sample_db: Also cross-check over the bundled sample
            instance (more rows; used by the slow sweep).
    """
    rng = random.Random(seed)
    schema = schema or university_schema()
    sql = sample_conformance_query(rng, schema)
    if force_join_rewrites is None:
        force_join_rewrites = bool(seed % 2)
    case = ConformanceCase(seed, sql, force_join_rewrites=force_join_rewrites)
    try:
        suite = XDataGenerator(schema, config).generate(sql)
        space = enumerate_mutants(suite.analyzed, include_full_outer=True)
    except XDataError as exc:
        case.skipped = f"{type(exc).__name__}: {exc}"
        return case
    databases = list(suite.databases)
    if include_sample_db:
        databases.append(university_sample_database(schema))
    # The engine side of the cross-check shares unchanged subtrees
    # across the mutant batch (DESIGN.md §5g); SQLite re-executes every
    # tree, so the cross-check still compares independent evaluations.
    cache = SubplanCache()
    primary = EngineBackend(subplan_cache=cache)
    reference = SqliteBackend(force_join_rewrites=force_join_rewrites)
    try:
        case.executions = cross_check_space(
            space, databases, primary, reference, f"seed {seed}", cache
        )
    except BackendDisagreement as exc:
        if exc.plan is not None:
            # Detach the cache first: minimization churns through many
            # short-lived candidate datasets, and ``id(db)`` keys are
            # only safe while every cached dataset stays alive.
            primary.subplan_cache = None
            exc.minimized = minimize_disagreement(exc, primary, reference)
        raise
    case.mutants = len(space.mutants)
    case.datasets = len(databases)
    return case


def minimize_disagreement(
    exc: BackendDisagreement, primary, reference
) -> Database:
    """Shrink a disagreement's dataset while both backends still split."""
    from repro.testing.minimize import minimize_dataset

    return minimize_dataset(
        exc.dataset, _still_disagrees(exc.plan, primary, reference)
    )


def run_conformance_corpus(
    seeds,
    schema: Schema | None = None,
    config: GenConfig | None = None,
    force_join_rewrites: bool | None = None,
    include_sample_db: bool = False,
) -> ConformanceReport:
    """Run :func:`run_conformance_case` for every seed.

    Raises on the first disagreement (the exception carries the full
    repro); otherwise returns the aggregate report.
    """
    schema = schema or university_schema()
    report = ConformanceReport()
    for seed in seeds:
        report.cases.append(
            run_conformance_case(
                seed,
                schema=schema,
                config=config,
                force_join_rewrites=force_join_rewrites,
                include_sample_db=include_sample_db,
            )
        )
    return report
