"""Kill checking: differential execution of mutants over datasets.

A mutant is *killed* by a dataset when the original query and the mutant
produce different results on it (Section I).  Results are compared as
bags of rows with columns aligned by name, so equivalent plans that emit
columns in different orders (different join orders under ``SELECT *``)
still compare equal.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.engine.database import Database
from repro.engine.executor import execute_plan
from repro.engine.plan import PlanNode, compile_query
from repro.engine.relation import Relation
from repro.mutation.space import Mutant, MutationSpace


def result_signature(relation: Relation) -> tuple[tuple[str, ...], Counter]:
    """(sorted column names, bag of name-aligned rows)."""
    order = sorted(range(len(relation.columns)), key=lambda i: relation.columns[i])
    names = tuple(relation.columns[i] for i in order)
    bag = Counter(tuple(row[i] for i in order) for row in relation.rows)
    return names, bag


def results_differ(a: Relation, b: Relation) -> bool:
    """True when two results differ as name-aligned bags."""
    return result_signature(a) != result_signature(b)


@dataclass
class MutantOutcome:
    """Per-mutant kill record."""

    mutant: Mutant
    killed_by: list[int] = field(default_factory=list)

    @property
    def killed(self) -> bool:
        return bool(self.killed_by)


@dataclass
class KillReport:
    """The kill matrix for one suite against one mutation space."""

    outcomes: list[MutantOutcome]
    dataset_count: int

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def killed(self) -> int:
        return sum(1 for o in self.outcomes if o.killed)

    @property
    def survivors(self) -> list[Mutant]:
        return [o.mutant for o in self.outcomes if not o.killed]

    def kills_of_dataset(self, index: int) -> int:
        return sum(1 for o in self.outcomes if index in o.killed_by)


def evaluate_suite(
    space: MutationSpace,
    databases: list[Database],
    original_plan: PlanNode | None = None,
    stop_at_first_kill: bool = False,
) -> KillReport:
    """Run every mutant against every dataset; record which kills occur.

    Args:
        space: The mutation space (provides the analyzed query).
        databases: The generated test datasets.
        original_plan: Plan for the original query; defaults to compiling
            the analyzed query.
        stop_at_first_kill: Record only the first killing dataset per
            mutant (faster for large spaces; the kill counts are equal).
    """
    plan = original_plan or compile_query(space.analyzed.query)
    original_results = [execute_plan(plan, db) for db in databases]
    original_signatures = [result_signature(r) for r in original_results]
    outcomes: list[MutantOutcome] = []
    for mutant in space.mutants:
        outcome = MutantOutcome(mutant)
        for index, db in enumerate(databases):
            mutant_result = execute_plan(mutant.plan, db)
            if result_signature(mutant_result) != original_signatures[index]:
                outcome.killed_by.append(index)
                if stop_at_first_kill:
                    break
        outcomes.append(outcome)
    return KillReport(outcomes, len(databases))
