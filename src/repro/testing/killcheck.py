"""Kill checking: differential execution of mutants over datasets.

A mutant is *killed* by a dataset when the original query and the mutant
produce different results on it (Section I).  Results are compared as
bags of rows with columns aligned by name, so equivalent plans that emit
columns in different orders (different join orders under ``SELECT *``)
still compare equal.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from fractions import Fraction

from repro.engine.database import Database
from repro.engine.executor import execute_plan
from repro.engine.plan import PlanNode, compile_query
from repro.engine.relation import Relation
from repro.mutation.space import Mutant, MutationSpace


def canonical_value(value):
    """Quantise a result value for cross-backend comparison.

    The engine computes division and AVG exactly (``Fraction``) while
    real systems return floating point; both map to the same canonical
    form here — 12 significant digits, integral values as int — so the
    signature comparison has a built-in tolerance.  12 digits leaves
    ~4 guard digits of double precision for accumulation-order noise
    while still distinguishing any two values a mutant kill hinges on
    in practice.
    """
    if isinstance(value, Fraction):
        value = float(value)
    if isinstance(value, float):
        if math.isinf(value) or math.isnan(value):
            return value
        quantised = float(f"{value:.12g}")
        return int(quantised) if quantised.is_integer() else quantised
    return value


def result_signature(relation: Relation) -> tuple[tuple[str, ...], Counter]:
    """(sorted column names, bag of name-aligned canonicalised rows)."""
    order = sorted(range(len(relation.columns)), key=lambda i: relation.columns[i])
    names = tuple(relation.columns[i] for i in order)
    bag = Counter(
        tuple(canonical_value(row[i]) for i in order) for row in relation.rows
    )
    return names, bag


def results_differ(a: Relation, b: Relation) -> bool:
    """True when two results differ as name-aligned bags."""
    return result_signature(a) != result_signature(b)


@dataclass
class MutantOutcome:
    """Per-mutant kill record."""

    mutant: Mutant
    killed_by: list[int] = field(default_factory=list)

    @property
    def killed(self) -> bool:
        return bool(self.killed_by)


@dataclass
class KillReport:
    """The kill matrix for one suite against one mutation space."""

    outcomes: list[MutantOutcome]
    dataset_count: int

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def killed(self) -> int:
        return sum(1 for o in self.outcomes if o.killed)

    @property
    def survivors(self) -> list[Mutant]:
        return [o.mutant for o in self.outcomes if not o.killed]

    def kills_of_dataset(self, index: int) -> int:
        return sum(1 for o in self.outcomes if index in o.killed_by)


def evaluate_suite(
    space: MutationSpace,
    databases: list[Database],
    original_plan: PlanNode | None = None,
    stop_at_first_kill: bool = False,
    backend=None,
    cross_check: bool = False,
) -> KillReport:
    """Run every mutant against every dataset; record which kills occur.

    Args:
        space: The mutation space (provides the analyzed query).
        databases: The generated test datasets.
        original_plan: Plan for the original query; defaults to compiling
            the analyzed query.
        stop_at_first_kill: Record only the first killing dataset per
            mutant (faster for large spaces; the kill counts are equal).
        backend: Execution backend — a name (``"engine"``, ``"sqlite"``)
            or a :class:`repro.backends.Backend` instance.  ``None``
            keeps the direct in-process engine path.
        cross_check: Shadow every execution on a second backend (SQLite
            when the primary is the engine, the engine otherwise) and
            raise :class:`repro.backends.BackendDisagreement` the moment
            their result bags differ — every kill verdict becomes a
            differential test of the engine itself.
    """
    plan = original_plan or compile_query(space.analyzed.query)
    if backend is None and not cross_check:
        # Hot path: no handle indirection, no integrity re-validation.
        original_results = [execute_plan(plan, db) for db in databases]
        original_signatures = [result_signature(r) for r in original_results]
        outcomes: list[MutantOutcome] = []
        for mutant in space.mutants:
            outcome = MutantOutcome(mutant)
            for index, db in enumerate(databases):
                mutant_result = execute_plan(mutant.plan, db)
                if result_signature(mutant_result) != original_signatures[index]:
                    outcome.killed_by.append(index)
                    if stop_at_first_kill:
                        break
            outcomes.append(outcome)
        return KillReport(outcomes, len(databases))

    from repro.backends import CrossChecker, resolve_backend

    primary = resolve_backend(backend)
    reference = None
    if cross_check:
        reference = resolve_backend(
            "engine" if primary.name == "sqlite" else "sqlite"
        )
    with CrossChecker(primary, reference) as checker:
        original_signatures = [
            checker.signature(plan, db, "original query") for db in databases
        ]
        outcomes = []
        for mutant in space.mutants:
            outcome = MutantOutcome(mutant)
            context = f"mutant [{mutant.kind}] {mutant.description}"
            for index, db in enumerate(databases):
                got = checker.signature(mutant.plan, db, context)
                if got != original_signatures[index]:
                    outcome.killed_by.append(index)
                    if stop_at_first_kill:
                        break
            outcomes.append(outcome)
    return KillReport(outcomes, len(databases))
