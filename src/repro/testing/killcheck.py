"""Kill checking: differential execution of mutants over datasets.

A mutant is *killed* by a dataset when the original query and the mutant
produce different results on it (Section I).  Results are compared as
bags of rows with columns aligned by name, so equivalent plans that emit
columns in different orders (different join orders under ``SELECT *``)
still compare equal.

The evaluation loop is batched per dataset (DESIGN.md §5g): each dataset
is loaded once, the original executes once, and the mutant set runs in
fingerprint-sorted order against a shared
:class:`~repro.engine.subplan.SubplanCache`, so every subtree unchanged
from the original — and every subtree shared between sibling mutants —
is computed once per dataset instead of once per mutant.
:class:`KillCheckConfig` carries the ablation switches; verdicts are
byte-identical with every switch off (the seed's re-execute-everything
path, kept for benchmarks and equivalence tests).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from fractions import Fraction

from repro.engine.database import Database
from repro.engine.executor import execute_plan
from repro.engine.plan import PlanNode, plan_fingerprint
from repro.engine.relation import Relation
from repro.engine.subplan import SubplanCache
from repro.mutation.space import Mutant, MutationSpace


def canonical_value(value):
    """Quantise a result value for cross-backend comparison.

    The engine computes division and AVG exactly (``Fraction``) while
    real systems return floating point; both map to the same canonical
    form here — 12 significant digits, integral values as int — so the
    signature comparison has a built-in tolerance.  12 digits leaves
    ~4 guard digits of double precision for accumulation-order noise
    while still distinguishing any two values a mutant kill hinges on
    in practice.
    """
    if isinstance(value, Fraction):
        value = float(value)
    if isinstance(value, float):
        if math.isinf(value) or math.isnan(value):
            return value
        quantised = float(f"{value:.12g}")
        return int(quantised) if quantised.is_integer() else quantised
    return value


def result_signature(relation: Relation) -> tuple[tuple[str, ...], Counter]:
    """(sorted column names, bag of name-aligned canonicalised rows).

    Memoized per relation object: the subplan cache returns one shared
    :class:`Relation` for every mutant whose final input content
    matched, so a whole batch of verdicts reuses one canonicalisation.
    """
    memo = getattr(relation, "_canonical_signature", None)
    if memo is not None:
        return memo
    order = sorted(range(len(relation.columns)), key=lambda i: relation.columns[i])
    names = tuple(relation.columns[i] for i in order)
    bag = Counter(
        tuple(canonical_value(row[i]) for i in order) for row in relation.rows
    )
    relation._canonical_signature = (names, bag)
    return names, bag


def results_differ(a: Relation, b: Relation) -> bool:
    """True when two results differ as name-aligned bags."""
    return result_signature(a) != result_signature(b)


def raw_signature(relation: Relation) -> tuple[tuple[str, ...], Counter]:
    """Like :func:`result_signature` but without value canonicalisation.

    Python's ``==`` already equates ``1``, ``1.0`` and ``Fraction(1)``,
    and :func:`canonical_value` maps ``==``-equal values to ``==``-equal
    canonical forms — so raw-equal bags are always canonically equal.
    The converse does not hold (canonicalisation has a 12-significant-
    digit tolerance), so a raw mismatch is never a verdict by itself.
    Memoized per relation object, like :func:`result_signature`.
    """
    memo = getattr(relation, "_raw_sig", None)
    if memo is not None:
        return memo
    order = sorted(range(len(relation.columns)), key=lambda i: relation.columns[i])
    names = tuple(relation.columns[i] for i in order)
    bag = Counter(tuple(row[i] for i in order) for row in relation.rows)
    relation._raw_sig = (names, bag)
    return names, bag


def differs_from_signature(
    relation: Relation,
    signature,
    rowcount: int,
    short_circuit: bool = True,
    raw=None,
) -> bool:
    """Does ``relation`` differ from a precomputed original signature?

    With ``short_circuit`` on, a row-count mismatch decides immediately
    — bags of different cardinality can never be equal — and, when the
    original's :func:`raw_signature` is supplied, a raw-bag match
    decides "not killed" without canonicalising anything.  Only results
    that match on count but differ raw pay the full
    12-significant-digit canonicalisation.  Verdicts are identical
    either way.
    """
    if short_circuit:
        if len(relation.rows) != rowcount:
            return True
        if raw is not None and raw_signature(relation) == raw:
            return False
    return result_signature(relation) != signature


@dataclass(frozen=True)
class KillCheckConfig:
    """Kill-check evaluation switches (``SearchConfig`` conventions).

    Every switch preserves verdicts; they exist as ablation levers for
    :mod:`benchmarks.bench_killcheck` and the equivalence tests.

    Attributes:
        subplan_cache: Memoize subplan results per (fingerprint,
            dataset) across the mutant batch (the §5g hot path; the CLI
            spells the ablation ``--no-subplan-cache``).
        fingerprint_sort: Walk each dataset's mutant batch in
            fingerprint-sorted order so structurally adjacent mutants
            run back to back and the cache stays warm.
        short_circuit: Compare row counts before canonicalising full
            result bags (see :func:`differs_from_signature`).
    """

    subplan_cache: bool = True
    fingerprint_sort: bool = True
    short_circuit: bool = True

    @classmethod
    def uncached(cls) -> "KillCheckConfig":
        """The seed's behaviour: re-execute every tree from scratch."""
        return cls(subplan_cache=False, fingerprint_sort=False,
                   short_circuit=False)


@dataclass
class MutantOutcome:
    """Per-mutant kill record."""

    mutant: Mutant
    killed_by: list[int] = field(default_factory=list)

    @property
    def killed(self) -> bool:
        return bool(self.killed_by)


@dataclass
class KillReport:
    """The kill matrix for one suite against one mutation space."""

    outcomes: list[MutantOutcome]
    dataset_count: int
    #: Subplan-cache traffic for the run (``SubplanCache.stats()``), or
    #: ``None`` when the cache was disabled.
    cache_stats: dict | None = None

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def killed(self) -> int:
        return sum(1 for o in self.outcomes if o.killed)

    @property
    def survivors(self) -> list[Mutant]:
        return [o.mutant for o in self.outcomes if not o.killed]

    def kills_of_dataset(self, index: int) -> int:
        return sum(1 for o in self.outcomes if index in o.killed_by)


def mutant_order(mutants: list[Mutant], fingerprint_sort: bool = True) -> list[int]:
    """Indices of ``mutants`` in cache-friendly evaluation order.

    Fingerprint-sorted order clusters structurally similar plans —
    sibling join-type mutants, comparison mutants over the same join
    tree — so each dataset's warm-cache window is maximised.  The
    returned indices always cover every mutant exactly once; outcome
    lists stay in the original mutant order regardless.
    """
    order = list(range(len(mutants)))
    if fingerprint_sort:
        order.sort(key=lambda i: plan_fingerprint(mutants[i].plan))
    return order


def evaluate_suite(
    space: MutationSpace,
    databases: list[Database],
    original_plan: PlanNode | None = None,
    stop_at_first_kill: bool = False,
    backend=None,
    cross_check: bool = False,
    config: KillCheckConfig | None = None,
) -> KillReport:
    """Run every mutant against every dataset; record which kills occur.

    Mutants are batched per dataset: the dataset is loaded/validated
    once, the original executes once, and the mutant set walks in
    fingerprint-sorted order over a shared subplan cache (dropped when
    the batch moves to the next dataset, so memory stays bounded by one
    dataset's working set).

    Args:
        space: The mutation space (provides the analyzed query).
        databases: The generated test datasets.
        original_plan: Plan for the original query; defaults to the
            space's compiled-once plan (:attr:`MutationSpace.original_plan`).
        stop_at_first_kill: Record only the first killing dataset per
            mutant (faster for large spaces; the kill counts are equal).
        backend: Execution backend — a name (``"engine"``, ``"sqlite"``)
            or a :class:`repro.backends.Backend` instance.  ``None``
            keeps the direct in-process engine path.
        cross_check: Shadow every execution on a second backend (SQLite
            when the primary is the engine, the engine otherwise) and
            raise :class:`repro.backends.BackendDisagreement` the moment
            their result bags differ — every kill verdict becomes a
            differential test of the engine itself.
        config: Evaluation switches (:class:`KillCheckConfig`); the
            default enables the full §5g hot path.
    """
    config = config or KillCheckConfig()
    plan = original_plan if original_plan is not None else space.original_plan
    mutants = space.mutants
    outcomes = [MutantOutcome(mutant) for mutant in mutants]
    order = mutant_order(mutants, config.fingerprint_sort)
    cache = SubplanCache() if config.subplan_cache else None

    if backend is None and not cross_check:
        # Hot path: no handle indirection, no integrity re-validation.
        plans = [mutant.plan for mutant in mutants]
        short_circuit = config.short_circuit
        for index, db in enumerate(databases):
            original = execute_plan(plan, db, cache)
            signature = result_signature(original)
            raw = raw_signature(original) if short_circuit else None
            rowcount = len(original.rows)
            for i in order:
                outcome = outcomes[i]
                if stop_at_first_kill and outcome.killed_by:
                    continue
                mutant_result = execute_plan(plans[i], db, cache)
                # The subplan cache returns the original's relation
                # object itself when a mutant's result content matched
                # it — identical by construction, no comparison needed.
                if mutant_result is original:
                    continue
                # Distinct-but-shared result objects get one verdict
                # each per dataset: the memo is keyed on the original's
                # identity, so a new dataset (new original) re-decides.
                memo = mutant_result.__dict__.get("_verdict_memo")
                if memo is not None and memo[0] is original:
                    differs = memo[1]
                else:
                    differs = differs_from_signature(
                        mutant_result, signature, rowcount,
                        short_circuit, raw,
                    )
                    mutant_result._verdict_memo = (original, differs)
                if differs:
                    outcome.killed_by.append(index)
            if cache is not None:
                cache.drop_dataset(db)
        return KillReport(
            outcomes, len(databases),
            cache_stats=cache.stats() if cache is not None else None,
        )

    from repro.backends import CrossChecker, resolve_backend

    primary = resolve_backend(backend)
    reference = None
    if cross_check:
        reference = resolve_backend(
            "engine" if primary.name == "sqlite" else "sqlite"
        )
    _attach_subplan_cache((primary, reference), cache)
    with CrossChecker(primary, reference) as checker:
        for index, db in enumerate(databases):
            if cross_check:
                # Both backends' bags are compared inside the checker,
                # so the full signature is computed regardless.
                signature = checker.signature(plan, db, "original query")
                rowcount = None
            else:
                original = checker.result(plan, db, "original query")
                signature = result_signature(original)
                raw = (
                    raw_signature(original) if config.short_circuit else None
                )
                rowcount = len(original.rows)
            for i in order:
                outcome = outcomes[i]
                if stop_at_first_kill and outcome.killed_by:
                    continue
                mutant = mutants[i]
                context = f"mutant [{mutant.kind}] {mutant.description}"
                if cross_check:
                    differs = (
                        checker.signature(mutant.plan, db, context) != signature
                    )
                else:
                    differs = differs_from_signature(
                        checker.result(mutant.plan, db, context),
                        signature, rowcount, config.short_circuit, raw,
                    )
                if differs:
                    outcome.killed_by.append(index)
            checker.release(db)
            if cache is not None:
                cache.drop_dataset(db)
    return KillReport(
        outcomes, len(databases),
        cache_stats=cache.stats() if cache is not None else None,
    )


def _attach_subplan_cache(backends, cache: SubplanCache | None) -> None:
    """Hand the shared subplan cache to every engine-executing backend."""
    if cache is None:
        return
    for backend in backends:
        if backend is not None and getattr(backend, "name", "") == "engine":
            backend.subplan_cache = cache
