"""Mutation-testing harness: run mutants against datasets, report kills."""

from repro.testing.conformance import (
    ConformanceCase,
    ConformanceReport,
    run_conformance_case,
    run_conformance_corpus,
    sample_conformance_query,
)
from repro.testing.equivalence import classify_survivors, random_database
from repro.testing.killcheck import (
    KillReport,
    canonical_value,
    evaluate_suite,
    result_signature,
    results_differ,
)
from repro.testing.minimize import (
    MinimizationResult,
    minimize_dataset,
    minimize_suite,
)
from repro.testing.report import format_kill_report, format_suite, format_trace
from repro.testing.workload import WorkloadEntry, WorkloadSuite, generate_workload

__all__ = [
    "evaluate_suite",
    "results_differ",
    "result_signature",
    "canonical_value",
    "KillReport",
    "random_database",
    "classify_survivors",
    "format_kill_report",
    "format_suite",
    "format_trace",
    "minimize_suite",
    "minimize_dataset",
    "MinimizationResult",
    "generate_workload",
    "WorkloadSuite",
    "WorkloadEntry",
    "ConformanceCase",
    "ConformanceReport",
    "run_conformance_case",
    "run_conformance_corpus",
    "sample_conformance_query",
]
