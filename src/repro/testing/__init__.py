"""Mutation-testing harness: run mutants against datasets, report kills."""

from repro.testing.equivalence import classify_survivors, random_database
from repro.testing.killcheck import KillReport, evaluate_suite, results_differ
from repro.testing.minimize import MinimizationResult, minimize_suite
from repro.testing.report import format_kill_report, format_suite, format_trace
from repro.testing.workload import WorkloadEntry, WorkloadSuite, generate_workload

__all__ = [
    "evaluate_suite",
    "results_differ",
    "KillReport",
    "random_database",
    "classify_survivors",
    "format_kill_report",
    "format_suite",
    "format_trace",
    "minimize_suite",
    "MinimizationResult",
    "generate_workload",
    "WorkloadSuite",
    "WorkloadEntry",
]
