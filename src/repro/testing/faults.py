"""Deterministic fault injection for the generation pipeline (test-only).

The fault-tolerance guarantees of the generator — budget skips, failure
isolation, pool degradation — are worthless untested, and their trigger
conditions (a pathological search, a segfaulting worker) are hard to
reproduce organically.  This module injects them on demand, keyed by
*spec index* (the position in ``XDataGenerator._derive_specs`` order,
which is deterministic for a given query/schema/config).

Configuration is environment-driven so faults reach worker processes:
the process pool forks workers, which inherit the parent's environment.

``XDATA_FAULTS`` — comma-separated ``<spec_index>:<kind>[:<arg>]``::

    XDATA_FAULTS="1:limit,3:crash,4:sleep:0.5,6:error:2"

Kinds (each fires at the solve point of the matching spec, i.e. once
per retry-ladder attempt):

* ``limit[:n]`` — raise :class:`~repro.errors.SolverLimitError` on the
  first ``n`` attempts of the spec (every attempt when ``n`` omitted).
  ``limit`` alone forces the full ladder to trip → a ``budget`` skip;
  ``limit:1`` trips only the first attempt → the escalation retry
  succeeds.
* ``error[:n]`` — raise ``RuntimeError`` likewise (unexpected-exception
  isolation → an ``error:RuntimeError`` skip).
* ``crash`` — hard-kill the current *worker* process (``os._exit``),
  breaking the process pool mid-batch.  In the parent process (no pool,
  or the sequential resume after a pool break) it degrades to a
  ``RuntimeError``: crashing the caller's interpreter is never useful
  in a test.
* ``sleep:<seconds>`` — artificial slowness (``time.sleep``) before the
  solve, for exercising map timeouts and deadlines.

``XDATA_FAULTS_LOG`` — a file path; every solve attempt appends a
``<pid>:<role>:<spec_index>`` line (role ``w`` in a pool worker, ``p``
in the parent), so tests can assert *where* each spec was solved — e.g.
that a pool break did not re-solve specs whose results had already come
back.  The log is written whenever the variable is set, even with no
faults configured.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass

from repro.errors import SolverLimitError

FAULTS_ENV = "XDATA_FAULTS"
LOG_ENV = "XDATA_FAULTS_LOG"

#: Exit status used by the ``crash`` fault (distinctive in worker logs).
CRASH_EXIT_CODE = 3


@dataclass(frozen=True)
class Fault:
    """One injected fault: ``kind`` plus its numeric argument."""

    kind: str
    arg: float = 0.0


def parse_plan(raw: str) -> dict[int, Fault]:
    """Parse an ``XDATA_FAULTS`` value into ``{spec_index: Fault}``.

    Raises ``ValueError`` on malformed entries — a silently ignored
    fault plan would make a test pass vacuously.
    """
    plan: dict[int, Fault] = {}
    for entry in raw.split(","):
        entry = entry.strip()
        if not entry:
            continue
        parts = entry.split(":")
        if len(parts) < 2:
            raise ValueError(f"malformed fault entry {entry!r}")
        index = int(parts[0])
        kind = parts[1]
        if kind not in ("limit", "error", "crash", "sleep"):
            raise ValueError(f"unknown fault kind {kind!r} in {entry!r}")
        if kind == "sleep" and len(parts) < 3:
            raise ValueError(f"sleep fault needs a duration: {entry!r}")
        arg = float(parts[2]) if len(parts) > 2 else 0.0
        plan[index] = Fault(kind, arg)
    return plan


#: Parsed-plan cache keyed by the raw env value (re-parsed on change so
#: tests can swap plans without touching module state).
_plan_cache: tuple[str, dict[int, Fault]] | None = None

#: Per-process count of solve attempts seen per spec index, for the
#: ``limit:n`` / ``error:n`` first-n-attempts forms.
_attempt_counts: dict[int, int] = {}


def reset() -> None:
    """Forget per-process attempt counts (between tests)."""
    _attempt_counts.clear()


def _active_plan() -> dict[int, Fault]:
    global _plan_cache
    raw = os.environ.get(FAULTS_ENV, "")
    if _plan_cache is None or _plan_cache[0] != raw:
        _plan_cache = (raw, parse_plan(raw))
    return _plan_cache[1]


def in_worker_process() -> bool:
    """True when running inside a multiprocessing worker."""
    return multiprocessing.parent_process() is not None


def _record(spec_index: int) -> None:
    path = os.environ.get(LOG_ENV)
    if not path:
        return
    role = "w" if in_worker_process() else "p"
    # O_APPEND keeps concurrent short writes from different processes
    # intact (one line per write).
    with open(path, "a") as handle:
        handle.write(f"{os.getpid()}:{role}:{spec_index}\n")


def fire(spec_index: int) -> None:
    """Trigger the configured fault for ``spec_index``, if any.

    Called by the generator at each solve attempt when either fault
    environment variable is set; a no-op for unlisted indices.
    """
    _record(spec_index)
    fault = _active_plan().get(spec_index)
    if fault is None:
        return
    attempt = _attempt_counts.get(spec_index, 0) + 1
    _attempt_counts[spec_index] = attempt
    if fault.kind in ("limit", "error") and fault.arg and attempt > fault.arg:
        return
    if fault.kind == "limit":
        raise SolverLimitError(
            f"injected budget trip at spec {spec_index} "
            f"(attempt {attempt})",
            kind="nodes", nodes=0, limit=0,
        )
    if fault.kind == "error":
        raise RuntimeError(
            f"injected fault at spec {spec_index} (attempt {attempt})"
        )
    if fault.kind == "crash":
        if in_worker_process():
            os._exit(CRASH_EXIT_CODE)
        raise RuntimeError(
            f"injected crash at spec {spec_index} (in-process)"
        )
    if fault.kind == "sleep":
        time.sleep(fault.arg)


def enabled() -> bool:
    """Cheap gate for callers: is any fault machinery configured?"""
    return bool(os.environ.get(FAULTS_ENV) or os.environ.get(LOG_ENV))
