"""Command-line interface: ``xdata`` (or ``python -m repro.cli``).

Subcommands:

* ``generate`` — produce a mutant-killing test suite for a query;
* ``mutants``  — list the mutation space of a query;
* ``evaluate`` — generate a suite, enumerate mutants, report the kill
  matrix and classify survivors;
* ``export``   — write a suite as per-dataset INSERT scripts;
* ``workload`` — one combined fixture set for a file of named queries;
* ``serve``    — run the HTTP generation service (``repro.service``);
* ``campaign`` — run a crash-safe differential fuzzing campaign
  (``repro.campaign``).

The schema comes from a DDL file (``--schema``) or the bundled university
schema (``--university``, optionally with ``--fk`` edge names).
"""

from __future__ import annotations

import argparse
import sys

from repro.core.generator import GenConfig, XDataGenerator
from repro.datasets.university import (
    FK_EDGES,
    schema_with_fks,
    university_sample_database,
    university_schema,
)
from repro.errors import XDataError
from repro.mutation import enumerate_mutants
from repro.schema.ddl import parse_ddl
from repro.testing import classify_survivors, evaluate_suite
from repro.testing.report import format_kill_report, format_suite, format_trace


def _print_observability(suite, args) -> None:
    """Print the span tree and/or metrics a run recorded, per flags."""
    if args.trace and suite.trace is not None:
        print()
        print("-- trace:")
        print(format_trace(suite.trace))
    if args.metrics and suite.metrics is not None:
        from repro.obs.metrics import render_text

        print()
        print("-- metrics:")
        print(render_text(suite.metrics))


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="xdata",
        description="Generate test data that kills SQL query mutants.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, help_text in (
        ("generate", "generate a test suite for a query"),
        ("mutants", "list the mutation space of a query"),
        ("evaluate", "generate, run mutants, report kills"),
        ("export", "generate a suite and write INSERT scripts to a directory"),
        ("workload", "generate a combined fixture set for a file of queries"),
    ):
        cmd = sub.add_parser(name, help=help_text)
        if name == "workload":
            cmd.add_argument(
                "query",
                metavar="FILE",
                help="SQL file: queries introduced by '-- name: <label>' lines",
            )
        else:
            cmd.add_argument("query", help="SQL query text, or '-' to read stdin")
        source = cmd.add_mutually_exclusive_group()
        source.add_argument(
            "--schema", metavar="FILE", help="DDL file with CREATE TABLE statements"
        )
        source.add_argument(
            "--university",
            action="store_true",
            help="use the bundled university schema",
        )
        cmd.add_argument(
            "--fk",
            action="append",
            default=None,
            metavar="EDGE",
            choices=sorted(FK_EDGES),
            help="with --university: keep only these foreign keys "
            "(repeatable; default keeps all)",
        )
        cmd.add_argument(
            "--no-unfold",
            action="store_true",
            help="disable quantifier unfolding (the paper's slow mode)",
        )
        cmd.add_argument(
            "--no-delta-solve",
            action="store_true",
            help="ablation: compile every kill group's constraint system "
            "from scratch instead of delta-solving against the compiled "
            "query skeleton (the datasets are byte-identical; see "
            "benchmarks/bench_parallel.py)",
        )
        cmd.add_argument(
            "--workers",
            type=int,
            default=1,
            metavar="N",
            help="worker processes for dataset generation (datasets are "
            "independent constraint problems; results are identical to "
            "a sequential run)",
        )
        cmd.add_argument(
            "--input-db",
            action="store_true",
            help="with --university: constrain values to the sample database",
        )
        cmd.add_argument(
            "--deadline",
            type=float,
            default=None,
            metavar="SECONDS",
            help="wall-clock budget per dataset (solve attempts beyond it "
            "are cut off and the target is skipped with reason 'budget')",
        )
        cmd.add_argument(
            "--retries",
            type=int,
            default=1,
            metavar="N",
            help="budget-escalation retries per dataset before degrading "
            "(each retry multiplies the node budget; default 1)",
        )
        cmd.add_argument(
            "--fail-fast",
            action="store_true",
            help="abort on the first degraded dataset (budget/error skip) "
            "instead of completing the suite and reporting it in the "
            "health summary",
        )
        cmd.add_argument(
            "--trace",
            action="store_true",
            help="record spans for every pipeline stage and print the "
            "span tree after the run",
        )
        cmd.add_argument(
            "--metrics",
            action="store_true",
            help="collect counters/gauges/histograms and print them in "
            "Prometheus text format after the run",
        )
        cmd.add_argument(
            "--journal",
            metavar="PATH",
            default=None,
            help="append a JSON-lines run journal (one event per span "
            "close; survives crashes — validate with "
            "'python -m repro.obs.journal PATH')",
        )
        if name in ("mutants", "evaluate"):
            cmd.add_argument(
                "--full-outer",
                action="store_true",
                help="include mutations to full outer join",
            )
        if name in ("evaluate", "workload"):
            cmd.add_argument(
                "--backend",
                choices=("engine", "sqlite"),
                default="engine",
                help="execution backend for kill checking (default: the "
                "in-process engine; 'sqlite' runs every plan on the "
                "stdlib sqlite3 module instead)",
            )
            cmd.add_argument(
                "--cross-check",
                action="store_true",
                help="run every execution on BOTH backends and fail with "
                "a structured disagreement report if their result bags "
                "ever differ (differential oracle mode)",
            )
            cmd.add_argument(
                "--no-subplan-cache",
                action="store_true",
                help="ablation: disable the batched subplan cache and "
                "re-execute every mutant tree from scratch (the verdicts "
                "are identical; see benchmarks/bench_killcheck.py)",
            )
        if name == "generate":
            cmd.add_argument(
                "--show-constraints",
                action="store_true",
                help="print each dataset's constraints in CVC3 ASSERT syntax",
            )
        if name in ("export", "workload"):
            cmd.add_argument(
                "--out",
                required=name == "export",
                metavar="DIR",
                help="directory for the per-dataset .sql files",
            )
        if name == "evaluate":
            cmd.add_argument(
                "--trials",
                type=int,
                default=20,
                help="random instances for survivor classification",
            )
            cmd.add_argument(
                "--minimize",
                action="store_true",
                help="prune datasets that add no killing power (greedy set cover)",
            )
    # ``serve`` takes the service's own flags, not the query/schema set
    # the loop above wires up; main() routes it to repro.service before
    # this parser ever sees its arguments.  Registered here so it shows
    # in ``xdata --help``.
    sub.add_parser(
        "serve",
        help="serve generation over HTTP (POST /v1/jobs; see repro.service)",
        add_help=False,
    )
    sub.add_parser(
        "campaign",
        help="run a crash-safe differential fuzzing campaign (repro.campaign)",
        add_help=False,
    )
    return parser


def _load_schema(args):
    if args.schema:
        with open(args.schema) as handle:
            return parse_ddl(handle.read()), None
    if args.fk is not None:
        schema = schema_with_fks(args.fk)
    else:
        schema = university_schema()
    input_db = None
    if args.input_db:
        if args.fk is not None:
            input_db = university_sample_database(schema)
        else:
            input_db = university_sample_database(schema)
    return schema, input_db


def _read_query(args) -> str:
    if args.query == "-":
        return sys.stdin.read()
    return args.query


def parse_workload_file(text: str) -> dict[str, str]:
    """Split a SQL file into named queries.

    Queries are introduced by ``-- name: <label>`` comment lines; the text
    until the next marker (semicolons stripped) is the query.
    """
    queries: dict[str, str] = {}
    current: str | None = None
    buffer: list[str] = []

    def flush():
        if current is not None:
            sql = "\n".join(buffer).strip().rstrip(";").strip()
            if sql:
                queries[current] = sql

    for line in text.splitlines():
        stripped = line.strip()
        if stripped.lower().startswith("-- name:"):
            flush()
            current = stripped.split(":", 1)[1].strip()
            buffer = []
        elif current is not None:
            buffer.append(line)
    flush()
    return queries


def _run_workload(schema, config, args) -> int:
    import os

    from repro.engine.export import to_insert_script
    from repro.testing.workload import generate_workload

    with open(args.query) as handle:
        queries = parse_workload_file(handle.read())
    if not queries:
        print("error: no '-- name:' sections found", file=sys.stderr)
        return 1
    suite = generate_workload(
        schema,
        queries,
        config,
        backend=None if args.backend == "engine" else args.backend,
        cross_check=args.cross_check,
        subplan_cache=not args.no_subplan_cache,
    )
    print(suite.summary())
    if args.trace or args.metrics:
        for entry in suite.entries:
            if entry.suite is None:
                continue
            print(f"\n== {entry.name} ==")
            _print_observability(entry.suite, args)
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        for index, dataset in enumerate(suite.datasets):
            entry_index, _ = suite.provenance[index]
            label = list(queries)[entry_index]
            path = os.path.join(
                args.out, f"fixture_{index:02d}_{label}_{dataset.group}.sql"
            )
            with open(path, "w") as handle:
                handle.write(f"-- {dataset.purpose}\n")
                handle.write(to_insert_script(dataset.db) + "\n")
        print(f"{len(suite.datasets)} fixtures written to {args.out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``xdata`` command; returns the exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv[:1] == ["serve"]:
        from repro.service.server import main as serve_main

        return serve_main(argv[1:])
    if argv[:1] == ["campaign"]:
        from repro.campaign.__main__ import main as campaign_main

        return campaign_main(argv[1:])
    args = _build_parser().parse_args(argv)
    try:
        schema, input_db = _load_schema(args)
        sql = _read_query(args)
        config = GenConfig(
            unfold=not args.no_unfold,
            delta_solve=False if args.no_delta_solve else None,
            input_db=input_db,
            trace_constraints=getattr(args, "show_constraints", False),
            workers=max(1, args.workers),
            spec_deadline_s=args.deadline,
            retries=max(0, args.retries),
            fail_fast=args.fail_fast,
            trace=args.trace,
            metrics=args.metrics,
            journal_path=args.journal,
        )
        if args.command == "mutants":
            space = enumerate_mutants(
                sql, schema, include_full_outer=args.full_outer
            )
            for mutant in space.mutants:
                print(mutant)
            print(f"total: {len(space)} mutants")
            return 0
        if args.command == "workload":
            return _run_workload(schema, config, args)
        generator = XDataGenerator(schema, config)
        suite = generator.generate(sql)
        if args.command == "export":
            import os

            from repro.engine.export import to_insert_script

            os.makedirs(args.out, exist_ok=True)
            for index, dataset in enumerate(suite.datasets):
                path = os.path.join(
                    args.out, f"dataset_{index:02d}_{dataset.group}.sql"
                )
                with open(path, "w") as handle:
                    handle.write(f"-- {dataset.purpose}\n")
                    handle.write(to_insert_script(dataset.db) + "\n")
                print(f"wrote {path}")
            print(f"{len(suite.datasets)} datasets exported to {args.out}")
            _print_observability(suite, args)
            return 0
        if args.command == "generate":
            print(format_suite(suite))
            print()
            for dataset in suite.datasets:
                print(dataset.pretty())
                if dataset.constraints_cvc:
                    print("-- constraints:")
                    print(dataset.constraints_cvc)
                print()
            _print_observability(suite, args)
            return 0
        # evaluate
        space = enumerate_mutants(
            suite.analyzed, include_full_outer=args.full_outer
        )
        from repro.testing.killcheck import KillCheckConfig

        report = evaluate_suite(
            space,
            suite.databases,
            backend=None if args.backend == "engine" else args.backend,
            cross_check=args.cross_check,
            config=(
                KillCheckConfig.uncached()
                if args.no_subplan_cache
                else KillCheckConfig()
            ),
        )
        if report.cache_stats is not None:
            from repro.api import _reconcile_cache_stats

            _reconcile_cache_stats(suite, report.cache_stats)
        print(format_suite(suite))
        print()
        print(format_kill_report(report))
        if args.minimize:
            from repro.testing import minimize_suite

            result = minimize_suite(suite, space)
            print(
                f"minimized suite: {result.kept_count} of "
                f"{len(suite.datasets)} datasets retained"
            )
            for dataset, reason in result.dropped:
                print(f"  dropped [{dataset.group}] {dataset.target}: {reason}")
        survivors = report.survivors
        if survivors:
            classification = classify_survivors(
                space, survivors, trials=args.trials
            )
            print(
                f"survivors likely equivalent: "
                f"{len(classification.likely_equivalent)}; "
                f"missed (non-equivalent!): {len(classification.missed)}"
            )
            for miss in classification.missed:
                print(f"  MISSED: {miss.mutant}")
        _print_observability(suite, args)
        return 0
    except XDataError as exc:
        from repro.backends import BackendDisagreement

        if isinstance(exc, BackendDisagreement):
            print(f"error: {exc}", file=sys.stderr)
            print(exc.detail(), file=sys.stderr)
            return 2
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
