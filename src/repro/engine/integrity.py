"""Primary-key, foreign-key and NOT NULL checking for database instances.

Generated datasets must be *legal* database instances (the paper's
definition of a test case); every dataset the generator emits is passed
through :func:`check_integrity` before it reaches the user, and the
property-based tests assert this invariant over wide input spaces.
"""

from __future__ import annotations

from repro.errors import IntegrityError
from repro.engine.database import Database


def find_violations(db: Database) -> list[str]:
    """Return human-readable descriptions of every constraint violation."""
    violations: list[str] = []
    schema = db.schema
    for table in schema.tables:
        relation = db.relation(table.name)
        if not relation.rows:
            # An empty relation can violate nothing: it has no NOT NULL
            # or key rows, and its (nonexistent) FK rows reference nothing.
            continue
        # NOT NULL
        for column in table.columns:
            if column.nullable:
                continue
            idx = relation.column_index(column.name)
            for row_num, row in enumerate(relation.rows):
                if row[idx] is None:
                    violations.append(
                        f"{table.name}.{column.name} is NOT NULL but row "
                        f"{row_num} has NULL"
                    )
        # PRIMARY KEY: no NULLs, no duplicates
        if table.primary_key:
            key_idx = [relation.column_index(c) for c in table.primary_key]
            seen: dict[tuple, int] = {}
            for row_num, row in enumerate(relation.rows):
                key = tuple(row[i] for i in key_idx)
                if any(v is None for v in key):
                    violations.append(
                        f"{table.name} primary key contains NULL in row {row_num}"
                    )
                    continue
                if key in seen:
                    violations.append(
                        f"{table.name} primary key {key!r} duplicated in rows "
                        f"{seen[key]} and {row_num}"
                    )
                else:
                    seen[key] = row_num
        # FOREIGN KEYS
        for fk in table.foreign_keys:
            target = db.relation(fk.ref_table)
            src_idx = [relation.column_index(c) for c in fk.columns]
            dst_idx = [target.column_index(c) for c in fk.ref_columns]
            target_keys = {tuple(row[i] for i in dst_idx) for row in target.rows}
            for row_num, row in enumerate(relation.rows):
                key = tuple(row[i] for i in src_idx)
                if any(v is None for v in key):
                    # NULL FK values satisfy the constraint (Section V-H
                    # relaxation); assumption A2 forbids them via NOT NULL,
                    # which is checked above.
                    continue
                if key not in target_keys:
                    violations.append(
                        f"{table.name} row {row_num} foreign key {key!r} has no "
                        f"match in {fk.ref_table}({', '.join(fk.ref_columns)})"
                    )
    return violations


def check_integrity(db: Database) -> None:
    """Raise :class:`IntegrityError` if ``db`` violates any constraint."""
    violations = find_violations(db)
    if violations:
        raise IntegrityError(
            f"{len(violations)} integrity violation(s); first: {violations[0]}",
            violations,
        )
