"""SQL value semantics: three-valued logic and NULL-aware operations.

NULL is represented by Python ``None``.  Comparisons involving NULL yield
``None`` (SQL UNKNOWN); WHERE/ON clauses keep a row only when the predicate
evaluates to ``True``.  Arithmetic with NULL yields NULL.
"""

from __future__ import annotations

from fractions import Fraction

from repro.errors import ExecutionError

#: The three truth values: True, False, and None (UNKNOWN).
TruthValue = bool | None


def sql_and(a: TruthValue, b: TruthValue) -> TruthValue:
    """Three-valued AND."""
    if a is False or b is False:
        return False
    if a is None or b is None:
        return None
    return True


def sql_or(a: TruthValue, b: TruthValue) -> TruthValue:
    """Three-valued OR."""
    if a is True or b is True:
        return True
    if a is None or b is None:
        return None
    return False


def sql_not(a: TruthValue) -> TruthValue:
    """Three-valued NOT."""
    if a is None:
        return None
    return not a


def sql_compare(op: str, left, right) -> TruthValue:
    """Evaluate ``left op right`` with SQL semantics.

    NULL on either side yields UNKNOWN.  Mixed numeric types compare
    numerically; comparing a number with a string is a type error (the
    catalog-aware analyzer should have prevented it).
    """
    if left is None or right is None:
        return None
    left_num = isinstance(left, (int, float, Fraction)) and not isinstance(left, bool)
    right_num = isinstance(right, (int, float, Fraction)) and not isinstance(
        right, bool
    )
    if left_num != right_num:
        raise ExecutionError(
            f"cannot compare {type(left).__name__} with {type(right).__name__}"
        )
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if op == "<":
        return left < right
    if op == ">":
        return left > right
    if op == "<=":
        return left <= right
    if op == ">=":
        return left >= right
    raise ExecutionError(f"unknown comparison operator {op!r}")


def sql_arith(op: str, left, right):
    """Evaluate arithmetic with NULL propagation and exact division."""
    if left is None or right is None:
        return None
    if isinstance(left, str) or isinstance(right, str):
        raise ExecutionError(f"arithmetic on non-numeric value ({left!r} {op} {right!r})")
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            return None  # SQL engines raise; NULL keeps differential runs total
        result = Fraction(left) / Fraction(right)
        return int(result) if result.denominator == 1 else result
    raise ExecutionError(f"unknown arithmetic operator {op!r}")


def normalize_value(value):
    """Canonicalise a value for result comparison.

    Integral floats and Fractions become ints so that ``4``, ``4.0`` and
    ``Fraction(4, 1)`` compare equal across plans; other Fractions stay
    exact.
    """
    if isinstance(value, bool):
        raise ExecutionError("boolean values cannot appear in result rows")
    if isinstance(value, Fraction):
        return int(value) if value.denominator == 1 else value
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value
