"""Database: a schema-bound collection of relations."""

from __future__ import annotations

from repro.errors import CatalogError, ExecutionError
from repro.engine.relation import Relation
from repro.schema.catalog import Schema


class Database:
    """A database instance: one :class:`Relation` per schema table.

    Tables start empty; insert rows with :meth:`insert` (positional tuples)
    or :meth:`insert_dict`.  Integrity is *not* enforced on insert — a test
    dataset under construction may be temporarily inconsistent — call
    :func:`repro.engine.integrity.check_integrity` (or :meth:`validate`)
    to verify PK/FK constraints.
    """

    def __init__(self, schema: Schema):
        self.schema = schema
        # One header template (lower-cased columns + name->position index)
        # per schema table, built on first use and cached on the schema —
        # a generator assembles one Database per dataset, all against the
        # same schema, and the headers never change.
        templates = getattr(schema, "_relation_templates", None)
        if templates is None:
            templates = []
            for table in schema.tables:
                columns = [c.lower() for c in table.column_names]
                index = {name: i for i, name in enumerate(columns)}
                templates.append((table.name, columns, index))
            schema._relation_templates = templates
        self._relations: dict[str, Relation] = {
            name: Relation._from_header(columns, index)
            for name, columns, index in templates
        }

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name.lower()]
        except KeyError:
            raise CatalogError(f"no table {name!r} in database") from None

    @property
    def table_names(self) -> list[str]:
        return list(self._relations)

    def insert(self, table: str, row: tuple) -> None:
        """Insert a positional row into ``table``."""
        self.relation(table).add(tuple(row))

    def insert_dict(self, table: str, values: dict) -> None:
        """Insert a row given as a column->value mapping.

        Missing columns become NULL; unknown columns are an error.
        """
        relation = self.relation(table)
        known = set(relation.columns)
        unknown = {k.lower() for k in values} - known
        if unknown:
            raise ExecutionError(f"unknown columns for {table}: {sorted(unknown)}")
        lowered = {k.lower(): v for k, v in values.items()}
        relation.add(tuple(lowered.get(c) for c in relation.columns))

    def insert_rows(self, table: str, rows) -> None:
        """Insert many positional rows."""
        for row in rows:
            self.insert(table, row)

    def validate(self) -> None:
        """Raise :class:`~repro.errors.IntegrityError` on any PK/FK violation."""
        from repro.engine.integrity import check_integrity

        check_integrity(self)

    def is_empty(self) -> bool:
        return all(len(rel) == 0 for rel in self._relations.values())

    def total_rows(self) -> int:
        """Total number of rows across all relations (dataset size metric)."""
        return sum(len(rel) for rel in self._relations.values())

    def copy(self) -> "Database":
        """A deep-enough copy: rows are immutable tuples, lists are fresh."""
        clone = Database(self.schema)
        for name, relation in self._relations.items():
            clone._relations[name] = Relation(
                list(relation.columns), list(relation.rows)
            )
        return clone

    def pretty(self, only_nonempty: bool = True) -> str:
        """Human-readable rendering of the instance, for test-case review.

        The paper stresses that generated datasets must be small and
        intuitive because a human inspects each one; this is the format the
        CLI and examples print.
        """
        blocks: list[str] = []
        for name, relation in self._relations.items():
            if only_nonempty and not relation.rows:
                continue
            header = ", ".join(relation.columns)
            lines = [f"{name}({header})"]
            for row in relation.rows:
                rendered = ", ".join("NULL" if v is None else str(v) for v in row)
                lines.append(f"  ({rendered})")
            blocks.append("\n".join(lines))
        return "\n".join(blocks) if blocks else "(empty database)"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = {n: len(r) for n, r in self._relations.items() if len(r)}
        return f"Database({sizes})"
