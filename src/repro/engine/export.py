"""Export and import database instances: SQL INSERT scripts and CSV.

Generated datasets are only useful if they can be loaded into the system
under test; this module renders a :class:`Database` as standard INSERT
statements (orderable by foreign-key dependencies so plain ``psql -f``
works) and round-trips per-table CSV files for fixture directories.
"""

from __future__ import annotations

import csv
import io
import math
from fractions import Fraction

from repro.engine.database import Database
from repro.errors import EngineError
from repro.schema.catalog import Schema
from repro.schema.types import SqlType


def _string_literal(value: str) -> str:
    """A SQL string literal that survives line-oriented consumers.

    Embedded newlines/carriage returns are spliced in via ``char(n)``
    concatenation so the script stays one statement per line (and
    sqlite3's tokenizer agrees with naive splitters about where a
    statement ends).
    """
    escaped = value.replace("'", "''")
    if "\n" not in escaped and "\r" not in escaped:
        return f"'{escaped}'"
    parts: list[str] = []
    chunk: list[str] = []

    def flush_chunk():
        if chunk:
            parts.append("'" + "".join(chunk) + "'")
            chunk.clear()

    for ch in escaped:
        if ch in ("\n", "\r"):
            flush_chunk()
            parts.append(f"char({ord(ch)})")
        else:
            chunk.append(ch)
    flush_chunk()
    return "(" + " || ".join(parts) + ")" if len(parts) > 1 else parts[0]


def _sql_literal(value) -> str:
    if value is None:
        return "NULL"
    # bool before int: str(True) is not a SQL literal.
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, str):
        return _string_literal(value)
    if isinstance(value, float):
        if math.isnan(value):
            return "NULL"
        if math.isinf(value):
            # Out-of-range literal: parses as +/-Infinity REAL in SQLite.
            return "9e999" if value > 0 else "-9e999"
        return repr(value)  # repr round-trips; str() of old Pythons didn't
    if isinstance(value, Fraction):
        return repr(float(value))
    return str(value)


def topological_table_order(schema: Schema) -> list[str]:
    """Tables ordered referenced-first, so INSERTs never violate FKs.

    Falls back to a deterministic break for FK cycles (self-references
    are ignored — they need deferred constraints anyway).
    """
    remaining = {t.name for t in schema.tables}
    deps = {
        t.name: {fk.ref_table for fk in t.foreign_keys if fk.ref_table != t.name}
        for t in schema.tables
    }
    ordered: list[str] = []
    while remaining:
        ready = sorted(n for n in remaining if not (deps[n] & remaining))
        if not ready:
            ready = [sorted(remaining)[0]]
        for name in ready:
            ordered.append(name)
            remaining.remove(name)
    return ordered


def to_insert_script(
    db: Database, include_empty: bool = False, quote_identifiers: bool = False
) -> str:
    """Render the instance as INSERT statements in FK-safe order.

    ``quote_identifiers`` double-quotes table and column names so the
    script loads even when a name collides with a keyword of the target
    system (the SQLite backend always sets it).
    """

    def ident(name: str) -> str:
        return f'"{name}"' if quote_identifiers else name

    lines: list[str] = []
    for table in topological_table_order(db.schema):
        relation = db.relation(table)
        if not relation.rows and not include_empty:
            continue
        columns = ", ".join(ident(c) for c in relation.columns)
        for row in relation.rows:
            values = ", ".join(_sql_literal(v) for v in row)
            lines.append(
                f"INSERT INTO {ident(table)} ({columns}) VALUES ({values});"
            )
    return "\n".join(lines)


def to_csv_map(db: Database, include_empty: bool = False) -> dict[str, str]:
    """Render the instance as one CSV text per table (header row first).

    NULL is encoded as the empty field; empty strings are quoted, so the
    two round-trip distinctly.
    """
    out: dict[str, str] = {}
    for table in db.table_names:
        relation = db.relation(table)
        if not relation.rows and not include_empty:
            continue
        buffer = io.StringIO()
        writer = csv.writer(buffer, quoting=csv.QUOTE_MINIMAL)
        writer.writerow(relation.columns)
        for row in relation.rows:
            writer.writerow(
                ['""' if v == "" else ("" if v is None else v) for v in row]
            )
        out[table] = buffer.getvalue()
    return out


def from_csv_map(schema: Schema, csv_map: dict[str, str]) -> Database:
    """Rebuild a database instance from :func:`to_csv_map` output.

    Values are decoded against the schema's column types; unknown tables
    or mismatched headers raise :class:`~repro.errors.EngineError`.
    """
    db = Database(schema)
    for table_name, text in csv_map.items():
        if not schema.has_table(table_name):
            raise EngineError(f"CSV for unknown table {table_name!r}")
        table = schema.table(table_name)
        reader = csv.reader(io.StringIO(text))
        try:
            header = next(reader)
        except StopIteration:
            raise EngineError(f"CSV for {table_name!r} has no header") from None
        if [h.lower() for h in header] != table.column_names:
            raise EngineError(
                f"CSV header for {table_name!r} does not match the schema: "
                f"{header} vs {table.column_names}"
            )
        for row in reader:
            if not row:
                continue
            if len(row) != len(header):
                raise EngineError(
                    f"CSV row arity mismatch in {table_name!r}: {row}"
                )
            decoded = []
            for text_value, column_name in zip(row, table.column_names):
                column = table.column(column_name)
                if text_value == "":
                    decoded.append(None)
                elif text_value == '""':
                    decoded.append("")
                elif column.sqltype.is_textual:
                    decoded.append(text_value)
                elif column.sqltype is SqlType.FLOAT:
                    decoded.append(float(text_value))
                else:
                    decoded.append(int(text_value))
            db.insert(table_name, tuple(decoded))
    return db
