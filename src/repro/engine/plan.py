"""Physical-ish plan trees and compilation from the SQL AST.

Plans are what the engine executes.  The original query compiles to a plan
via :func:`compile_query`; join-type mutants (which pick *different join
trees* of the same query, per Section II) are constructed directly as plan
trees by :mod:`repro.mutation.jointype`, so the executor is the single
source of truth for SQL semantics in kill checking.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import UnsupportedSqlError
from repro.sql.ast import (
    ColumnRef,
    Comparison,
    FromItem,
    Join,
    JoinKind,
    Query,
    SelectItem,
    TableRef,
)


class PlanNode:
    """Marker base class for plan nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class ScanNode(PlanNode):
    """Scan a base table under a binding (alias)."""

    table: str
    binding: str


@dataclass(frozen=True)
class SelectNode(PlanNode):
    """Filter rows by a conjunction of comparisons."""

    child: PlanNode
    predicates: tuple[Comparison, ...]


@dataclass(frozen=True)
class JoinNode(PlanNode):
    """Join two inputs.

    Attributes:
        kind: INNER / LEFT / RIGHT / FULL / CROSS.
        condition: ON conjunction (empty for CROSS and NATURAL joins).
        natural: NATURAL join — the condition is derived from common column
            names at execution time and common columns are coalesced.
    """

    kind: JoinKind
    left: PlanNode
    right: PlanNode
    condition: tuple[Comparison, ...] = ()
    natural: bool = False

    def with_kind(self, kind: JoinKind) -> "JoinNode":
        """This join with a different join type (a join-type mutation)."""
        return JoinNode(kind, self.left, self.right, self.condition, self.natural)


@dataclass(frozen=True)
class ProjectNode(PlanNode):
    """Evaluate a select list per row (no aggregation)."""

    child: PlanNode
    items: tuple[SelectItem, ...]
    distinct: bool = False


@dataclass(frozen=True)
class AggregateNode(PlanNode):
    """GROUP BY + aggregate evaluation, with optional HAVING filtering."""

    child: PlanNode
    group_by: tuple[ColumnRef, ...]
    items: tuple[SelectItem, ...]
    having: tuple[Comparison, ...] = ()


def _compile_from_item(item: FromItem) -> PlanNode:
    if isinstance(item, TableRef):
        return ScanNode(item.name.lower(), item.binding.lower())
    if isinstance(item, Join):
        return JoinNode(
            item.kind,
            _compile_from_item(item.left),
            _compile_from_item(item.right),
            item.condition,
            item.natural,
        )
    raise UnsupportedSqlError(f"cannot compile FROM item {item!r}")


def compile_query(query: Query) -> PlanNode:
    """Compile a parsed query into an executable plan.

    Comma-separated FROM items become cross joins under the WHERE filter,
    which matches SQL semantics for inner queries; explicit join trees are
    preserved node for node so outer-join placement is respected.
    """
    if query.has_subquery_predicates:
        raise UnsupportedSqlError(
            "subquery predicates cannot be executed directly; decorrelate "
            "the query first (repro.core.decorrelate)"
        )
    plans = [_compile_from_item(item) for item in query.from_items]
    plan = plans[0]
    for other in plans[1:]:
        plan = JoinNode(JoinKind.CROSS, plan, other)
    if query.where:
        plan = SelectNode(plan, tuple(query.where))
    if query.group_by or query.has_aggregates or query.having:
        return AggregateNode(
            plan,
            tuple(query.group_by),
            tuple(query.select_items),
            tuple(query.having),
        )
    return ProjectNode(plan, tuple(query.select_items), query.distinct)


# ---------------------------------------------------------------------------
# Structural fingerprints
# ---------------------------------------------------------------------------

#: Cached-fingerprint attribute name.  Plan nodes are frozen dataclasses
#: (no ``__slots__``), so the digest is stashed on the instance dict with
#: ``object.__setattr__`` — mutants share subtree objects with the
#: original plan, and a shared subtree is fingerprinted exactly once.
_FP_ATTR = "_structural_fingerprint"

_FP_SEP = "\x1f"


def _fingerprint_parts(node: PlanNode) -> list[str]:
    """The canonical token list for one node (children by fingerprint).

    Every semantic field participates: expression fields (predicates,
    join conditions, select items, group-by columns, HAVING conjuncts)
    are frozen AST dataclasses whose ``repr`` is deterministic and
    complete, so any single-field mutation — join kind, comparison
    operator, aggregate function, flipped NULL test — lands in the
    stream and changes the digest.
    """
    if isinstance(node, ScanNode):
        return ["Scan", node.table, node.binding]
    if isinstance(node, SelectNode):
        return ["Select", plan_fingerprint(node.child), repr(node.predicates)]
    if isinstance(node, JoinNode):
        return [
            "Join",
            node.kind.name,
            plan_fingerprint(node.left),
            plan_fingerprint(node.right),
            repr(node.condition),
            repr(node.natural),
        ]
    if isinstance(node, ProjectNode):
        return [
            "Project",
            plan_fingerprint(node.child),
            repr(node.items),
            repr(node.distinct),
        ]
    if isinstance(node, AggregateNode):
        return [
            "Aggregate",
            plan_fingerprint(node.child),
            repr(node.group_by),
            repr(node.items),
            repr(node.having),
        ]
    raise TypeError(f"cannot fingerprint plan node {node!r}")


def plan_fingerprint(plan: PlanNode) -> str:
    """A stable structural fingerprint of a plan subtree (hex string).

    Two plans have equal fingerprints iff they are structurally equal —
    same node kinds, same children, same semantic fields.  The digest is
    content-based (never identity-based), so the recompiled plan of a
    comparison mutant shares the fingerprints of every subtree it left
    unchanged even though the objects are fresh.  Fingerprints are
    memoized per node instance, which makes re-fingerprinting a mutant
    batch (and sorting it) cheap.
    """
    cached = plan.__dict__.get(_FP_ATTR)
    if cached is not None:
        return cached
    digest = hashlib.blake2b(
        _FP_SEP.join(_fingerprint_parts(plan)).encode(), digest_size=16
    ).hexdigest()
    object.__setattr__(plan, _FP_ATTR, digest)
    return digest




def plan_scans(plan: PlanNode) -> list[ScanNode]:
    """All scan leaves of a plan, left to right."""
    if isinstance(plan, ScanNode):
        return [plan]
    if isinstance(plan, SelectNode):
        return plan_scans(plan.child)
    if isinstance(plan, JoinNode):
        return plan_scans(plan.left) + plan_scans(plan.right)
    if isinstance(plan, (ProjectNode,)):
        return plan_scans(plan.child)
    if isinstance(plan, AggregateNode):
        return plan_scans(plan.child)
    raise TypeError(f"unexpected plan node {plan!r}")
