"""Plan execution: frames in, relation out.

Nested-loop joins everywhere — generated datasets are tiny by design (the
paper's key usability claim), so clarity wins over asymptotics.
"""

from __future__ import annotations

from repro.errors import ExecutionError
from repro.engine.database import Database
from repro.engine.eval_expr import (
    eval_comparison,
    eval_conjunction,
    eval_scalar,
    eval_select_expr,
)
from repro.engine.frame import Frame, FrameCol
from repro.engine.plan import (
    AggregateNode,
    JoinNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SelectNode,
    compile_query,
)
from repro.engine.relation import Relation
from repro.engine.values import normalize_value
from repro.sql.ast import JoinKind, Query, SelectItem, Star


def execute_query(query: Query, db: Database) -> Relation:
    """Compile and execute a parsed query against ``db``."""
    return execute_plan(compile_query(query), db)


def execute_plan(plan: PlanNode, db: Database) -> Relation:
    """Execute a plan against ``db`` and return the result relation."""
    if isinstance(plan, (ProjectNode, AggregateNode)):
        return _finalize(plan, db)
    # A bare algebra tree (no projection) — return all frame columns.
    frame = _run(plan, db)
    names = _unique_names(
        [
            col.name if col.binding is None else f"{col.binding}.{col.name}"
            for col in frame.header
        ]
    )
    return Relation(names, [tuple(normalize_value(v) for v in row) for row in frame.rows])


# ---------------------------------------------------------------------------
# Frame pipeline
# ---------------------------------------------------------------------------


def _run(plan: PlanNode, db: Database) -> Frame:
    if isinstance(plan, ScanNode):
        return _scan(plan, db)
    if isinstance(plan, SelectNode):
        child = _run(plan.child, db)
        rows = [
            row
            for row in child.rows
            if eval_conjunction(plan.predicates, child, row) is True
        ]
        return Frame(child.header, rows)
    if isinstance(plan, JoinNode):
        return _join(plan, db)
    raise ExecutionError(f"unexpected plan node in pipeline: {plan!r}")


def _scan(plan: ScanNode, db: Database) -> Frame:
    relation = db.relation(plan.table)
    header = [
        FrameCol(plan.binding, name, ((plan.binding, name),))
        for name in relation.columns
    ]
    return Frame(header, list(relation.rows))


def _join(plan: JoinNode, db: Database) -> Frame:
    left = _run(plan.left, db)
    right = _run(plan.right, db)
    if plan.natural:
        return _natural_join(plan.kind, left, right)
    header = list(left.header) + list(right.header)
    combined = Frame(header)
    n_left = len(left.header)
    n_right = len(right.header)
    rows: list[tuple] = []
    left_matched = [False] * len(left.rows)
    right_matched = [False] * len(right.rows)
    for i, lrow in enumerate(left.rows):
        for j, rrow in enumerate(right.rows):
            row = lrow + rrow
            ok = (
                True
                if plan.kind is JoinKind.CROSS
                else eval_conjunction(plan.condition, combined, row) is True
            )
            if ok:
                rows.append(row)
                left_matched[i] = True
                right_matched[j] = True
    if plan.kind in (JoinKind.LEFT, JoinKind.FULL):
        for i, lrow in enumerate(left.rows):
            if not left_matched[i]:
                rows.append(lrow + (None,) * n_right)
    if plan.kind in (JoinKind.RIGHT, JoinKind.FULL):
        for j, rrow in enumerate(right.rows):
            if not right_matched[j]:
                rows.append((None,) * n_left + rrow)
    return Frame(header, rows)


def _natural_join(kind: JoinKind, left: Frame, right: Frame) -> Frame:
    """NATURAL join: equate common column names, coalesce them in the output."""
    left_names = [col.name for col in left.header]
    right_names = [col.name for col in right.header]
    common = [name for name in left_names if name in set(right_names)]
    left_common = [left.resolve(None, name) for name in common]
    right_common = [right.resolve(None, name) for name in common]
    header: list[FrameCol] = []
    for name, li, ri in zip(common, left_common, right_common):
        sources = left.header[li].sources + right.header[ri].sources
        header.append(FrameCol(None, name, sources))
    left_rest = [i for i in range(len(left.header)) if i not in set(left_common)]
    right_rest = [i for i in range(len(right.header)) if i not in set(right_common)]
    header.extend(left.header[i] for i in left_rest)
    header.extend(right.header[i] for i in right_rest)

    def merged(lrow, rrow) -> tuple:
        values = [lrow[li] for li in left_common]
        values.extend(lrow[i] for i in left_rest)
        values.extend(rrow[i] for i in right_rest)
        return tuple(values)

    rows: list[tuple] = []
    left_matched = [False] * len(left.rows)
    right_matched = [False] * len(right.rows)
    for i, lrow in enumerate(left.rows):
        for j, rrow in enumerate(right.rows):
            match = True
            for li, ri in zip(left_common, right_common):
                lv, rv = lrow[li], rrow[ri]
                if lv is None or rv is None or lv != rv:
                    match = False
                    break
            if match:
                rows.append(merged(lrow, rrow))
                left_matched[i] = True
                right_matched[j] = True
    if kind in (JoinKind.LEFT, JoinKind.FULL):
        for i, lrow in enumerate(left.rows):
            if not left_matched[i]:
                values = [lrow[li] for li in left_common]
                values.extend(lrow[k] for k in left_rest)
                values.extend([None] * len(right_rest))
                rows.append(tuple(values))
    if kind in (JoinKind.RIGHT, JoinKind.FULL):
        for j, rrow in enumerate(right.rows):
            if not right_matched[j]:
                values = [rrow[ri] for ri in right_common]
                values.extend([None] * len(left_rest))
                values.extend(rrow[k] for k in right_rest)
                rows.append(tuple(values))
    return Frame(header, rows)


# ---------------------------------------------------------------------------
# Final projection / aggregation
# ---------------------------------------------------------------------------


def _finalize(plan: ProjectNode | AggregateNode, db: Database) -> Relation:
    frame = _run(plan.child, db)
    if isinstance(plan, ProjectNode):
        return _project(plan, frame)
    return _aggregate(plan, frame)


def _expand_items(
    items: tuple[SelectItem, ...], frame: Frame
) -> list[tuple[str, object]]:
    """Expand ``*`` / ``t.*`` into (output name, column index or expr) pairs.

    Star columns are named by their qualified source so results of different
    join orders stay comparable column-by-column.
    """
    expanded: list[tuple[str, object]] = []
    for item in items:
        expr = item.expr
        if isinstance(expr, Star):
            indices = (
                frame.columns_of_binding(expr.table)
                if expr.table
                else range(len(frame.header))
            )
            if expr.table and not indices:
                raise ExecutionError(f"no columns for {expr.table}.*")
            for i in indices:
                col = frame.header[i]
                name = (
                    col.name if col.binding is None else f"{col.binding}.{col.name}"
                )
                expanded.append((name, i))
        else:
            name = item.alias or str(expr)
            expanded.append((name, expr))
    return expanded


def _unique_names(names: list[str]) -> list[str]:
    seen: dict[str, int] = {}
    out = []
    for name in names:
        count = seen.get(name, 0)
        seen[name] = count + 1
        out.append(name if count == 0 else f"{name}#{count + 1}")
    return out


def _project(plan: ProjectNode, frame: Frame) -> Relation:
    expanded = _expand_items(plan.items, frame)
    names = _unique_names([name for name, _ in expanded])
    rows: list[tuple] = []
    for row in frame.rows:
        values = []
        for _, source in expanded:
            if isinstance(source, int):
                values.append(normalize_value(row[source]))
            else:
                values.append(normalize_value(eval_scalar(source, frame, row)))
        rows.append(tuple(values))
    if plan.distinct:
        deduped: list[tuple] = []
        seen: set[tuple] = set()
        for row in rows:
            if row not in seen:
                seen.add(row)
                deduped.append(row)
        rows = deduped
    return Relation(names, rows)


def _aggregate(plan: AggregateNode, frame: Frame) -> Relation:
    group_idx = [frame.resolve(col.table, col.column) for col in plan.group_by]
    groups: dict[tuple, list[tuple]] = {}
    order: list[tuple] = []
    for row in frame.rows:
        key = tuple(row[i] for i in group_idx)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(row)
    if not plan.group_by and not order:
        order.append(())
        groups[()] = []
    names = _unique_names(
        [item.alias or str(item.expr) for item in plan.items]
    )
    rows = []
    for key in order:
        group_rows = groups[key]
        if not _having_holds(plan.having, frame, group_rows):
            continue
        values = []
        for item in plan.items:
            if isinstance(item.expr, Star):
                raise ExecutionError("SELECT * cannot be mixed with GROUP BY")
            values.append(
                normalize_value(eval_select_expr(item.expr, frame, group_rows))
            )
        rows.append(tuple(values))
    return Relation(names, rows)


def _having_holds(having, frame: Frame, group_rows: list[tuple]) -> bool:
    """Evaluate HAVING conjuncts over one group (3VL: only TRUE keeps)."""
    from repro.engine.values import sql_compare

    for pred in having:
        left = eval_select_expr(pred.left, frame, group_rows)
        right = eval_select_expr(pred.right, frame, group_rows)
        if sql_compare(pred.op, left, right) is not True:
            return False
    return True
