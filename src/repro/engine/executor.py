"""Plan execution: frames in, relation out.

Nested-loop joins everywhere — generated datasets are tiny by design (the
paper's key usability claim), so clarity wins over asymptotics.

Every entry point optionally takes a
:class:`~repro.engine.subplan.SubplanCache` (DESIGN.md §5g).  With a
cache, each pipeline subtree's frame is memoized under its structural
fingerprint per dataset, the kind-independent matching pass of a join is
shared across the INNER/LEFT/RIGHT/FULL variants of the same join (the
join-type mutation axis), and GROUP BY partitions are shared across
aggregate-function and HAVING mutants.  Without a cache the behaviour is
the seed's: every subtree recomputed from scratch.  Results are
identical either way — cached values are never mutated (kernel row
lists are copied before outer-join padding).
"""

from __future__ import annotations

from repro.errors import ExecutionError
from repro.engine.database import Database
from repro.engine.eval_expr import (
    eval_comparison,
    eval_conjunction,
    eval_scalar,
    eval_select_expr,
)
from repro.engine.frame import Frame, FrameCol
from repro.engine.plan import (
    AggregateNode,
    JoinNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SelectNode,
    compile_query,
    plan_fingerprint,
)
from repro.engine.relation import Relation
from repro.engine.subplan import SubplanCache, estimate_entry_bytes
from repro.engine.values import normalize_value
from repro.sql.ast import JoinKind, Query, SelectItem, Star


def execute_query(query: Query, db: Database) -> Relation:
    """Compile and execute a parsed query against ``db``."""
    return execute_plan(compile_query(query), db)


def execute_plan(
    plan: PlanNode, db: Database, cache: SubplanCache | None = None
) -> Relation:
    """Execute a plan against ``db`` and return the result relation.

    ``cache`` memoizes subplan results per ``(fingerprint, dataset)`` so
    a batch of single-node mutants shares all unchanged subtree
    computations (see :mod:`repro.engine.subplan`).
    """
    if isinstance(plan, (ProjectNode, AggregateNode)):
        return _finalize(plan, db, cache)
    # A bare algebra tree (no projection) — return all frame columns.
    frame = _run(plan, db, cache)
    names = _unique_names(
        [
            col.name if col.binding is None else f"{col.binding}.{col.name}"
            for col in frame.header
        ]
    )
    return Relation(names, [tuple(normalize_value(v) for v in row) for row in frame.rows])


# ---------------------------------------------------------------------------
# Frame pipeline
# ---------------------------------------------------------------------------


def _run(plan: PlanNode, db: Database, cache: SubplanCache | None = None) -> Frame:
    if cache is not None:
        # The prefixed frame key is memoized on the node alongside the
        # structural fingerprint, and the probe works on the dataset's
        # entry dict directly: _run is the hottest probe site, so both
        # the "F:" + digest concatenation and the get()/put() method
        # dispatch are worth paying only once.
        key = plan.__dict__.get("_frame_key")
        if key is None:
            key = "F:" + plan_fingerprint(plan)
            object.__setattr__(plan, "_frame_key", key)
        entry = cache._entry(db)
        cached = entry.get(key)
        if cached is not None:
            cache.hits += 1
            return cached
        cache.misses += 1
    if isinstance(plan, JoinNode):
        # Checked first: joins dominate cache misses — every join-order
        # mutant's spine is a chain of fresh join nodes.
        frame = _join(plan, db, cache)
    elif isinstance(plan, ScanNode):
        frame = _scan(plan, db)
    elif isinstance(plan, SelectNode):
        frame = _select(plan, db, cache)
    else:
        raise ExecutionError(f"unexpected plan node in pipeline: {plan!r}")
    if cache is not None:
        entry[key] = frame
        cache.bytes_stored += estimate_entry_bytes(frame)
    return frame


#: Memoized cache-key spec per plan node (the ``repr`` of its semantic
#: fields).  ``repr`` of a nested AST dataclass is not cheap, and key
#: construction runs on every execution — including hits — so the spec
#: is computed once per node, like the structural fingerprint.
_SPEC_ATTR = "_cache_key_spec"


def _node_spec(plan: PlanNode):
    spec = plan.__dict__.get(_SPEC_ATTR)
    if spec is not None:
        return spec
    if isinstance(plan, SelectNode):
        spec = repr(plan.predicates)
    elif isinstance(plan, JoinNode):
        condition = () if plan.kind is JoinKind.CROSS else plan.condition
        # (condition, kind) pair: the kernel key uses spec[0] alone, the
        # output-frame key uses the whole pair.  Enum ``.name`` is a
        # DynamicClassAttribute lookup — worth memoizing too.
        spec = (repr(condition), plan.kind.name)
    elif isinstance(plan, ProjectNode):
        spec = (repr(plan.items), plan.distinct)
    elif isinstance(plan, AggregateNode):
        spec = (repr(plan.group_by), repr(plan.items), repr(plan.having))
    else:
        raise ExecutionError(f"no cache-key spec for plan node {plan!r}")
    object.__setattr__(plan, _SPEC_ATTR, spec)
    return spec


def _content_id(frame: Frame, db: Database, cache: SubplanCache) -> int:
    """Dataset-local id of a frame's *content* (header + row bag).

    Structural fingerprints distinguish plans that happen to produce
    identical frames — a LEFT-variant mutant whose padding added no
    rows is content-equal to its INNER sibling — so caches of work that
    depends only on input content (join kernels, group partitions,
    projected results) key on this id instead.  Memoized per frame
    object; cached frames are shared objects, so each distinct frame is
    hashed once per dataset.
    """
    ident = getattr(frame, "_content_id", None)
    if ident is None:
        ident = cache.intern_content(
            db, (tuple(frame.header), tuple(frame.rows))
        )
        frame._content_id = ident
    return ident


def _select(
    plan: SelectNode, db: Database, cache: SubplanCache | None
) -> Frame:
    child = _run(plan.child, db, cache)
    out_key = None
    if cache is not None:
        # The filtered frame depends only on the child's *content* and
        # the predicate list, so structurally different plans whose
        # children happen to coincide — sibling join-kind mutants under
        # one residual filter — share a single output frame object (and
        # its memoized content id, so downstream lookups are attribute
        # reads).
        child_id = child.__dict__.get("_content_id")
        if child_id is None:
            child_id = _content_id(child, db, cache)
        spec = plan.__dict__.get(_SPEC_ATTR)
        if spec is None:
            spec = _node_spec(plan)
        out_key = ("SF", child_id, spec)
        cached = cache.get(db, out_key)
        if cached is not None:
            return cached
    # Per-predicate masks pay off only when several distinct selects
    # share one child (the comparison/NULL-test mutation axis); a
    # select seen once over its child — every join-order mutant's
    # residual filter — keeps the cheaper short-circuit evaluation.
    if (
        cache is not None
        and len(plan.predicates) > 1
        and cache.seen(db, ("MC", child_id))
    ):
        rows = _select_rows_masked(plan, child, db, cache)
    else:
        rows = [
            row
            for row in child.rows
            if eval_conjunction(plan.predicates, child, row) is True
        ]
    frame = Frame(child.header, rows)
    if out_key is not None:
        cache.put(db, out_key, frame)
    return frame


def _select_rows_masked(
    plan: SelectNode, child: Frame, db: Database, cache: SubplanCache
) -> list[tuple]:
    """Select rows via cached per-predicate row masks.

    Each conjunct's TRUE-row index set is memoized under (child
    fingerprint, predicate), so a comparison/NULL-test mutant — one
    predicate changed out of k — evaluates only its mutated conjunct
    and intersects it with the k-1 shared masks.  A conjunction keeps a
    row iff every conjunct is TRUE (3VL), which is exactly the mask
    intersection, so the selected bag is identical to direct
    evaluation; rows keep the child's order.
    """
    child_id = _content_id(child, db, cache)
    masks = []
    for pred in plan.predicates:
        key = ("M", child_id, repr(pred))
        mask = cache.get(db, key)
        if mask is None:
            mask = {
                i
                for i, row in enumerate(child.rows)
                if eval_conjunction((pred,), child, row) is True
            }
            cache.put(db, key, mask)
        masks.append(mask)
    masks.sort(key=len)
    smallest = masks[0]
    rest = masks[1:]
    return [
        child.rows[i]
        for i in sorted(smallest)
        if all(i in mask for mask in rest)
    ]


def _scan(plan: ScanNode, db: Database) -> Frame:
    relation = db.relation(plan.table)
    header = [
        FrameCol(plan.binding, name, ((plan.binding, name),))
        for name in relation.columns
    ]
    return Frame(header, list(relation.rows))


def _match_join(plan: JoinNode, left: Frame, right: Frame):
    """The kind-independent matching pass of a non-natural join.

    Returns ``(rows, left_matched, right_matched)`` — the matched
    (concatenated) rows plus per-side match flags.  Everything a join
    kind adds on top is padding of unmatched rows, so the four outer
    variants of one join share this pass (CROSS is the empty-condition
    match: an empty conjunction evaluates to TRUE).
    """
    header = list(left.header) + list(right.header)
    combined = Frame(header)
    condition = () if plan.kind is JoinKind.CROSS else plan.condition
    rows: list[tuple] = []
    left_matched = [False] * len(left.rows)
    right_matched = [False] * len(right.rows)
    for i, lrow in enumerate(left.rows):
        for j, rrow in enumerate(right.rows):
            row = lrow + rrow
            ok = (
                True
                if not condition
                else eval_conjunction(condition, combined, row) is True
            )
            if ok:
                rows.append(row)
                left_matched[i] = True
                right_matched[j] = True
    return rows, left_matched, right_matched


def _join(plan: JoinNode, db: Database, cache: SubplanCache | None = None) -> Frame:
    left = _run(plan.left, db, cache)
    right = _run(plan.right, db, cache)
    if plan.natural:
        return _natural_join(plan, left, right, db, cache)
    kernel = None
    out_key = None
    if cache is not None:
        lid = left.__dict__.get("_content_id")
        if lid is None:
            lid = _content_id(left, db, cache)
        rid = right.__dict__.get("_content_id")
        if rid is None:
            rid = _content_id(right, db, cache)
        spec = plan.__dict__.get(_SPEC_ATTR)
        if spec is None:
            spec = _node_spec(plan)
        # The joined frame depends only on input content, condition and
        # kind — mutants that reach the same join over content-equal
        # inputs (different join *orders* upstream, say) share one
        # padded output frame, not just the matching kernel.
        entry = cache._entry(db)
        out_key = ("JF", lid, rid, spec)
        cached = entry.get(out_key)
        if cached is not None:
            cache.hits += 1
            return cached
        cache.misses += 1
        kernel_key = ("K", lid, rid, spec[0])
        kernel = entry.get(kernel_key)
        if kernel is None:
            cache.misses += 1
            kernel = _match_join(plan, left, right)
            entry[kernel_key] = kernel
            cache.bytes_stored += estimate_entry_bytes(kernel)
        else:
            cache.hits += 1
    else:
        kernel = _match_join(plan, left, right)
    matched_rows, left_matched, right_matched = kernel
    header = list(left.header) + list(right.header)
    n_left = len(left.header)
    n_right = len(right.header)
    rows = matched_rows
    if plan.kind in (JoinKind.LEFT, JoinKind.RIGHT, JoinKind.FULL):
        rows = list(matched_rows)  # the kernel entry stays pad-free
        if plan.kind in (JoinKind.LEFT, JoinKind.FULL):
            for i, lrow in enumerate(left.rows):
                if not left_matched[i]:
                    rows.append(lrow + (None,) * n_right)
        if plan.kind in (JoinKind.RIGHT, JoinKind.FULL):
            for j, rrow in enumerate(right.rows):
                if not right_matched[j]:
                    rows.append((None,) * n_left + rrow)
    frame = Frame(header, rows)
    if out_key is not None:
        entry[out_key] = frame
        cache.bytes_stored += estimate_entry_bytes(frame)
    return frame


def _match_natural(left: Frame, right: Frame):
    """The kind-independent matching pass of a NATURAL join.

    Returns ``(header, rows, left_matched, right_matched, left_common,
    right_common, left_rest, right_rest)`` — everything the per-kind
    padding needs.
    """
    left_names = [col.name for col in left.header]
    right_names = [col.name for col in right.header]
    common = [name for name in left_names if name in set(right_names)]
    left_common = [left.resolve(None, name) for name in common]
    right_common = [right.resolve(None, name) for name in common]
    header: list[FrameCol] = []
    for name, li, ri in zip(common, left_common, right_common):
        sources = left.header[li].sources + right.header[ri].sources
        header.append(FrameCol(None, name, sources))
    left_rest = [i for i in range(len(left.header)) if i not in set(left_common)]
    right_rest = [i for i in range(len(right.header)) if i not in set(right_common)]
    header.extend(left.header[i] for i in left_rest)
    header.extend(right.header[i] for i in right_rest)

    def merged(lrow, rrow) -> tuple:
        values = [lrow[li] for li in left_common]
        values.extend(lrow[i] for i in left_rest)
        values.extend(rrow[i] for i in right_rest)
        return tuple(values)

    rows: list[tuple] = []
    left_matched = [False] * len(left.rows)
    right_matched = [False] * len(right.rows)
    for i, lrow in enumerate(left.rows):
        for j, rrow in enumerate(right.rows):
            match = True
            for li, ri in zip(left_common, right_common):
                lv, rv = lrow[li], rrow[ri]
                if lv is None or rv is None or lv != rv:
                    match = False
                    break
            if match:
                rows.append(merged(lrow, rrow))
                left_matched[i] = True
                right_matched[j] = True
    return (
        header, rows, left_matched, right_matched,
        left_common, right_common, left_rest, right_rest,
    )


def _natural_join(
    plan: JoinNode,
    left: Frame,
    right: Frame,
    db: Database | None = None,
    cache: SubplanCache | None = None,
) -> Frame:
    """NATURAL join: equate common column names, coalesce them in the output."""
    kernel = None
    kernel_key = None
    out_key = None
    if cache is not None:
        lid = _content_id(left, db, cache)
        rid = _content_id(right, db, cache)
        out_key = ("JFN", lid, rid, _node_spec(plan)[1])
        cached = cache.get(db, out_key)
        if cached is not None:
            return cached
        kernel_key = ("KN", lid, rid)
        kernel = cache.get(db, kernel_key)
    if kernel is None:
        kernel = _match_natural(left, right)
        if cache is not None:
            cache.put(db, kernel_key, kernel)
    (
        header, matched_rows, left_matched, right_matched,
        left_common, right_common, left_rest, right_rest,
    ) = kernel
    kind = plan.kind
    rows = matched_rows
    if kind in (JoinKind.LEFT, JoinKind.RIGHT, JoinKind.FULL):
        rows = list(matched_rows)
        if kind in (JoinKind.LEFT, JoinKind.FULL):
            for i, lrow in enumerate(left.rows):
                if not left_matched[i]:
                    values = [lrow[li] for li in left_common]
                    values.extend(lrow[k] for k in left_rest)
                    values.extend([None] * len(right_rest))
                    rows.append(tuple(values))
        if kind in (JoinKind.RIGHT, JoinKind.FULL):
            for j, rrow in enumerate(right.rows):
                if not right_matched[j]:
                    values = [rrow[ri] for ri in right_common]
                    values.extend([None] * len(left_rest))
                    values.extend(rrow[k] for k in right_rest)
                    rows.append(tuple(values))
    frame = Frame(header, rows)
    if out_key is not None:
        cache.put(db, out_key, frame)
    return frame


# ---------------------------------------------------------------------------
# Final projection / aggregation
# ---------------------------------------------------------------------------


def _finalize(
    plan: ProjectNode | AggregateNode,
    db: Database,
    cache: SubplanCache | None = None,
) -> Relation:
    frame = _run(plan.child, db, cache)
    # The final relation depends only on the child frame's content and
    # the projection/aggregation spec, so content-equal children — the
    # common case across a join-kind mutant batch on datasets where the
    # padding is empty — share one projected result object (and, via
    # the kill checker's per-object signature memo, one signature).
    result_key = None
    if cache is not None:
        child_id = frame.__dict__.get("_content_id")
        if child_id is None:
            child_id = _content_id(frame, db, cache)
        spec = plan.__dict__.get(_SPEC_ATTR)
        if spec is None:
            spec = _node_spec(plan)
        entry = cache._entry(db)
        result_key = ("R", child_id, spec)
        cached = entry.get(result_key)
        if cached is not None:
            cache.hits += 1
            return cached
        cache.misses += 1
    if isinstance(plan, ProjectNode):
        result = _project(plan, frame)
    else:
        result = _aggregate(plan, frame, db, cache)
    if result_key is not None:
        entry[result_key] = result
        cache.bytes_stored += estimate_entry_bytes(result)
    return result


def _expand_items(
    items: tuple[SelectItem, ...], frame: Frame
) -> list[tuple[str, object]]:
    """Expand ``*`` / ``t.*`` into (output name, column index or expr) pairs.

    Star columns are named by their qualified source so results of different
    join orders stay comparable column-by-column.
    """
    expanded: list[tuple[str, object]] = []
    for item in items:
        expr = item.expr
        if isinstance(expr, Star):
            indices = (
                frame.columns_of_binding(expr.table)
                if expr.table
                else range(len(frame.header))
            )
            if expr.table and not indices:
                raise ExecutionError(f"no columns for {expr.table}.*")
            for i in indices:
                col = frame.header[i]
                name = (
                    col.name if col.binding is None else f"{col.binding}.{col.name}"
                )
                expanded.append((name, i))
        else:
            name = item.alias or str(expr)
            expanded.append((name, expr))
    return expanded


def _unique_names(names: list[str]) -> list[str]:
    seen: dict[str, int] = {}
    out = []
    for name in names:
        count = seen.get(name, 0)
        seen[name] = count + 1
        out.append(name if count == 0 else f"{name}#{count + 1}")
    return out


def _project(plan: ProjectNode, frame: Frame) -> Relation:
    expanded = _expand_items(plan.items, frame)
    names = _unique_names([name for name, _ in expanded])
    rows: list[tuple] = []
    for row in frame.rows:
        values = []
        for _, source in expanded:
            if isinstance(source, int):
                values.append(normalize_value(row[source]))
            else:
                values.append(normalize_value(eval_scalar(source, frame, row)))
        rows.append(tuple(values))
    if plan.distinct:
        deduped: list[tuple] = []
        seen: set[tuple] = set()
        for row in rows:
            if row not in seen:
                seen.add(row)
                deduped.append(row)
        rows = deduped
    return Relation(names, rows)


def _partition_groups(
    plan: AggregateNode, frame: Frame
) -> tuple[dict[tuple, list[tuple]], list[tuple]]:
    """The GROUP BY partition of ``frame``: groups dict + first-seen order.

    Depends only on (child frame, group-by columns) — aggregate-function
    and HAVING mutants over the same grouping share one partition, so it
    is cacheable under the child fingerprint.  Never mutated by callers.
    """
    group_idx = [frame.resolve(col.table, col.column) for col in plan.group_by]
    groups: dict[tuple, list[tuple]] = {}
    order: list[tuple] = []
    for row in frame.rows:
        key = tuple(row[i] for i in group_idx)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(row)
    if not plan.group_by and not order:
        order.append(())
        groups[()] = []
    return groups, order


def _aggregate(
    plan: AggregateNode,
    frame: Frame,
    db: Database | None = None,
    cache: SubplanCache | None = None,
) -> Relation:
    partition = None
    partition_key = None
    if cache is not None:
        partition_key = (
            "G", _content_id(frame, db, cache), _node_spec(plan)[0]
        )
        partition = cache.get(db, partition_key)
    if partition is None:
        partition = _partition_groups(plan, frame)
        if cache is not None:
            cache.put(db, partition_key, partition)
    groups, order = partition
    names = _unique_names(
        [item.alias or str(item.expr) for item in plan.items]
    )
    rows = []
    for key in order:
        group_rows = groups[key]
        if not _having_holds(plan.having, frame, group_rows):
            continue
        values = []
        for item in plan.items:
            if isinstance(item.expr, Star):
                raise ExecutionError("SELECT * cannot be mixed with GROUP BY")
            values.append(
                normalize_value(eval_select_expr(item.expr, frame, group_rows))
            )
        rows.append(tuple(values))
    return Relation(names, rows)


def _having_holds(having, frame: Frame, group_rows: list[tuple]) -> bool:
    """Evaluate HAVING conjuncts over one group (3VL: only TRUE keeps)."""
    from repro.engine.values import sql_compare

    for pred in having:
        left = eval_select_expr(pred.left, frame, group_rows)
        right = eval_select_expr(pred.right, frame, group_rows)
        if sql_compare(pred.op, left, right) is not True:
            return False
    return True
