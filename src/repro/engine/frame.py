"""Intermediate results ("frames") flowing between plan operators.

A frame is a bag of rows with a header of :class:`FrameCol` entries.  Each
header entry remembers its *binding* (the table alias that produced it) and
its *sources* — for columns produced by NATURAL-join coalescing, the set of
original (binding, column) pairs it merged.  This lets qualified references
resolve through natural joins, and implements the paper's assumption A8
observation that a natural join replaces common attributes by a single
output attribute whose value may come from either input.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ExecutionError


@dataclass(frozen=True)
class FrameCol:
    """One column of a frame header.

    Attributes:
        binding: Table alias that produced the column, or ``None`` for a
            coalesced natural-join column.
        name: Column name (lower-case).
        sources: Original (binding, name) pairs this column answers for.
    """

    binding: str | None
    name: str
    sources: tuple[tuple[str, str], ...] = ()

    def __hash__(self) -> int:
        # Header tuples are hashed on every frame-content interning
        # probe (subplan cache), so the field-tuple hash the dataclass
        # would recompute each call is memoized on the instance.
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.binding, self.name, self.sources))
            object.__setattr__(self, "_hash", cached)
        return cached

    def answers(self, binding: str, name: str) -> bool:
        """True if a qualified reference ``binding.name`` resolves here."""
        if self.binding is not None:
            return self.binding == binding and self.name == name
        return (binding, name) in self.sources


@dataclass
class Frame:
    """A bag of rows with a rich header."""

    header: list[FrameCol]
    rows: list[tuple] = field(default_factory=list)
    #: Memo of successful ``resolve`` lookups — expression evaluation
    #: resolves the same references once per row, and headers never
    #: change after construction, so the index is computed once.
    _resolve_memo: dict = field(
        default_factory=dict, repr=False, compare=False
    )

    def resolve(self, binding: str | None, name: str) -> int:
        """Index of the column answering to ``binding.name`` (or bare name).

        Unqualified names must be unambiguous; coalesced (natural-join)
        columns shadow the per-side originals, as in SQL.
        """
        memo_key = (binding, name)
        cached = self._resolve_memo.get(memo_key)
        if cached is not None:
            return cached
        index = self._resolve(binding, name)
        self._resolve_memo[memo_key] = index
        return index

    def _resolve(self, binding: str | None, name: str) -> int:
        name = name.lower()
        if binding is not None:
            binding = binding.lower()
            matches = [
                i for i, col in enumerate(self.header) if col.answers(binding, name)
            ]
        else:
            matches = [i for i, col in enumerate(self.header) if col.name == name]
            if len(matches) > 1:
                coalesced = [
                    i
                    for i, col in enumerate(self.header)
                    if col.name == name and col.binding is None
                ]
                if len(coalesced) == 1:
                    return coalesced[0]
        if not matches:
            target = f"{binding}.{name}" if binding else name
            raise ExecutionError(f"column {target!r} not found in frame")
        if len(matches) > 1:
            target = f"{binding}.{name}" if binding else name
            raise ExecutionError(f"ambiguous column reference {target!r}")
        return matches[0]

    def bindings(self) -> set[str]:
        """All bindings visible in this frame (including coalesce sources)."""
        out: set[str] = set()
        for col in self.header:
            if col.binding is not None:
                out.add(col.binding)
            for src_binding, _ in col.sources:
                out.add(src_binding)
        return out

    def columns_of_binding(self, binding: str) -> list[int]:
        """Indices of columns answering for ``binding`` (for ``t.*``)."""
        binding = binding.lower()
        out = []
        for i, col in enumerate(self.header):
            if col.binding == binding:
                out.append(i)
            elif col.binding is None and any(b == binding for b, _ in col.sources):
                out.append(i)
        return out
