"""Relation: an ordered bag of rows with a named-column header."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ExecutionError


@dataclass
class Relation:
    """A bag of rows.

    Attributes:
        columns: Column names, lower-case, in order.
        rows: Row tuples, parallel to ``columns``.  Rows are plain tuples;
            the bag may contain duplicates.
    """

    columns: list[str]
    rows: list[tuple] = field(default_factory=list)

    def __post_init__(self):
        self.columns = [c.lower() for c in self.columns]
        self._index = {name: i for i, name in enumerate(self.columns)}
        if len(self._index) != len(self.columns):
            raise ExecutionError(f"duplicate column in relation: {self.columns}")
        for row in self.rows:
            if len(row) != len(self.columns):
                raise ExecutionError(
                    f"row arity {len(row)} does not match header "
                    f"{len(self.columns)}"
                )

    @classmethod
    def _from_header(cls, columns: list[str], index: dict[str, int]) -> "Relation":
        """Construct from a pre-validated header, skipping ``__post_init__``.

        ``columns`` must already be lower-cased and ``index`` consistent
        with it; the index dict is adopted by reference (it is never
        mutated after construction), so one dict can back every relation
        instantiated from the same schema table.
        """
        relation = object.__new__(cls)
        relation.columns = list(columns)
        relation.rows = []
        relation._index = index
        return relation

    def column_index(self, name: str) -> int:
        try:
            return self._index[name.lower()]
        except KeyError:
            raise ExecutionError(f"no column {name!r} in {self.columns}") from None

    def has_column(self, name: str) -> bool:
        return name.lower() in self._index

    def value(self, row: tuple, column: str):
        return row[self.column_index(column)]

    def add(self, row: tuple) -> None:
        if len(row) != len(self.columns):
            raise ExecutionError(
                f"row arity {len(row)} does not match header {len(self.columns)}"
            )
        self.rows.append(row)

    def as_dicts(self) -> list[dict]:
        """Rows as name->value dictionaries (for display and tests)."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)
