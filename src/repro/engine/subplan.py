"""Memoized subplan results shared across a mutant batch (DESIGN.md §5g).

Every mutant differs from the original query in exactly one plan node,
so when a kill check runs a mutant batch over one dataset, almost every
subtree evaluation is a repeat: sibling join-type mutants share
everything below (and beside) the mutated join, comparison and NULL-test
mutants share the whole join tree under the mutated selection, and
aggregate mutants share the grouped partition itself.  The cache keys
each intermediate result by ``(structural fingerprint, dataset)`` so the
executor computes each distinct subtree once per dataset and replays it
for every mutant that contains it.

Entry kinds live side by side, namespaced by key prefix:

* **frames** (``F:``) — the :class:`~repro.engine.frame.Frame` produced
  by a pipeline subtree (scan / select / join), keyed by the subtree's
  :func:`~repro.engine.plan.plan_fingerprint` — a structural hit skips
  the whole subtree without touching its children;
* **join kernels** (``K`` / ``KN``) — the kind-independent matching
  pass of a join (matched rows + per-side match flags), keyed by the
  *content* ids of both input frames plus the condition
  (:meth:`SubplanCache.intern_content`), so the INNER/LEFT/RIGHT/FULL
  variants of one join — the join-type mutation axis — pay for the
  O(|L|·|R|) pairwise pass once, even across structurally different
  plans whose inputs happen to coincide;
* **predicate masks** (``M``) — per-conjunct TRUE-row index sets over a
  select's child content, so a comparison/NULL-test mutant evaluates
  only its mutated conjunct and intersects the rest;
* **group partitions** (``G``) — the GROUP BY partition of an
  aggregate's child, keyed by (child content, group-by columns), shared
  by every aggregate-function and HAVING mutant over the same grouping;
* **final relations** (``R``) — the projected/aggregated
  :class:`~repro.engine.relation.Relation`, keyed by (child content,
  output spec): mutants whose final input content matched share one
  result object, and the kill checker's per-object signature memo then
  collapses their verdict comparisons to identity checks.

Entries are held per dataset and dropped with :meth:`drop_dataset` when
the batch moves on, so peak memory is one dataset's working set.  All
cached values are treated as immutable by the executor (frames are
read-only once built; kernel row lists are copied before padding).

Counters (``hits`` / ``misses`` / ``bytes``) follow the §5e metrics
conventions and surface as ``xdata_subplan_cache_*`` counters when a
kill check runs under metrics (see :func:`repro.api.evaluate`).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field

__all__ = ["SubplanCache", "SUBPLAN_COUNTER_PREFIX", "estimate_entry_bytes"]

#: Metrics-counter prefix for cache traffic (§5e reconciliation).
SUBPLAN_COUNTER_PREFIX = "xdata_subplan_cache_"


def estimate_entry_bytes(value) -> int:
    """Shallow byte estimate of a cached entry (rows + row tuples).

    Deliberately does not recurse into cell values — rows share value
    objects with the dataset relations, so counting them would double
    charge.  Good enough for the ``bytes`` counter's job: showing the
    cache's working set is bounded and dataset-sized.
    """
    rows = getattr(value, "rows", None)
    if rows is None and isinstance(value, tuple):
        # Kernel entries: (rows, left_matched, right_matched, ...).
        rows = value[0] if value and isinstance(value[0], list) else None
    if rows is None and isinstance(value, dict):
        # Group partitions: key -> row list.
        total = sys.getsizeof(value)
        for group_rows in value.values():
            total += sys.getsizeof(group_rows)
        return total
    if rows is None:
        return sys.getsizeof(value)
    # Rows of one entry are near-uniform in width, and the counter only
    # needs order-of-magnitude fidelity — CPython list/tuple header
    # arithmetic on the first row's width beats a getsizeof pass per
    # store on the hot path.
    count = len(rows)
    width = len(rows[0]) if count and isinstance(rows[0], tuple) else 0
    return 56 + 8 * count + count * (56 + 8 * width)


@dataclass
class SubplanCache:
    """Per-dataset memo of subplan results, with §5e-style counters.

    The cache is scoped to one kill-check batch (one ``evaluate_suite``
    call, one conformance case, one workload matrix); callers drop each
    dataset's entries once its mutant batch is done.  Counters are
    cumulative across the whole batch.
    """

    #: dataset key (``id(db)``) -> {namespaced fingerprint -> value}.
    _by_dataset: dict[int, dict[str, object]] = field(
        default_factory=dict, repr=False
    )
    hits: int = 0
    misses: int = 0
    #: Shallow size estimate of everything ever stored (monotonic, per
    #: the counter convention; live size shrinks on ``drop_dataset``).
    bytes_stored: int = 0
    #: One-slot memo of the last dataset's entry dict — kill-check
    #: batches probe the same dataset thousands of times in a row.
    _last_id: int | None = field(default=None, repr=False)
    _last_entry: dict | None = field(default=None, repr=False)

    def _entry(self, db) -> dict:
        """The live entry dict for ``db`` (created on first touch).

        The executor's hottest probe sites use this handle directly and
        maintain ``hits``/``misses``/``bytes_stored`` inline, skipping
        the :meth:`get`/:meth:`put` method dispatch per probe.
        """
        ident = id(db)
        if ident == self._last_id:
            return self._last_entry
        entry = self._by_dataset.get(ident)
        if entry is None:
            entry = self._by_dataset[ident] = {}
        self._last_id = ident
        self._last_entry = entry
        return entry

    def get(self, db, key: str):
        """The cached value for ``key`` on dataset ``db``, else ``None``."""
        value = self._entry(db).get(key)
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def put(self, db, key: str, value) -> None:
        """Store ``value`` for ``key`` on dataset ``db``."""
        self._entry(db)[key] = value
        self.bytes_stored += estimate_entry_bytes(value)

    def intern_content(self, db, key) -> int:
        """Intern a content key (header + rows) to a small dataset-local id.

        Content-equal frames — an outer-join variant whose padding added
        no rows, say — map to the same id even when their plans differ
        structurally, so downstream caches keyed by input *content*
        (join kernels, group partitions, projected results) share work
        the structural fingerprint cannot see.  The id is only
        meaningful within one dataset; callers memoize it on the frame
        object, which never outlives its dataset's batch.
        """
        entry = self._entry(db)
        table = entry.get("__content_ids__")
        if table is None:
            table = entry["__content_ids__"] = {}
        ident = table.get(key)
        if ident is None:
            ident = table[key] = len(table)
        return ident

    def seen(self, db, key: str) -> bool:
        """Record ``key`` for ``db``; True when it was already recorded.

        A bookkeeping probe (mask-worthiness heuristics), deliberately
        outside the hit/miss counters so it never skews the hit rate.
        """
        entry = self._entry(db)
        if key in entry:
            return True
        entry[key] = True
        return False

    def drop_dataset(self, db) -> None:
        """Release every entry cached for ``db`` (end of its batch)."""
        self._by_dataset.pop(id(db), None)
        self._last_id = None
        self._last_entry = None

    def clear(self) -> None:
        self._by_dataset.clear()
        self._last_id = None
        self._last_entry = None

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def counters(self) -> dict[str, int]:
        """Counter deltas under the §5e naming convention."""
        return {
            SUBPLAN_COUNTER_PREFIX + "hits_total": self.hits,
            SUBPLAN_COUNTER_PREFIX + "misses_total": self.misses,
            SUBPLAN_COUNTER_PREFIX + "bytes_total": self.bytes_stored,
        }

    def stats(self) -> dict:
        """A plain-dict summary for reports and benchmark JSON."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "bytes": self.bytes_stored,
            "hit_rate": round(self.hit_rate, 4),
        }
