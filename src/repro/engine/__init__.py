"""In-memory relational engine with full SQL join and NULL semantics.

The paper executes the original query and every mutant against each
generated dataset on a real DBMS to determine kills; this package is that
substrate.  It implements bag semantics, three-valued logic for NULLs,
inner/left/right/full/natural joins, and the aggregate operators of the
mutation space with exact rational arithmetic (AVG returns
:class:`fractions.Fraction`), so differential comparison of query results
is never confounded by floating-point rounding.
"""

from repro.engine.database import Database
from repro.engine.executor import execute_plan, execute_query
from repro.engine.integrity import check_integrity
from repro.engine.plan import (
    AggregateNode,
    JoinNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SelectNode,
    compile_query,
)
from repro.engine.relation import Relation

__all__ = [
    "Database",
    "Relation",
    "execute_plan",
    "execute_query",
    "check_integrity",
    "compile_query",
    "PlanNode",
    "ScanNode",
    "SelectNode",
    "JoinNode",
    "ProjectNode",
    "AggregateNode",
]
