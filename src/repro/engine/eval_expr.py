"""Expression and predicate evaluation over frame rows."""

from __future__ import annotations

from fractions import Fraction

from repro.errors import ExecutionError
from repro.engine.frame import Frame
from repro.engine.values import TruthValue, sql_and, sql_arith, sql_compare
from repro.sql.ast import (
    Aggregate,
    BinaryOp,
    ColumnRef,
    Comparison,
    Expr,
    Literal,
    Star,
)


def eval_scalar(expr: Expr, frame: Frame, row: tuple):
    """Evaluate a non-aggregate scalar expression against one row."""
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, ColumnRef):
        return row[frame.resolve(expr.table, expr.column)]
    if isinstance(expr, BinaryOp):
        left = eval_scalar(expr.left, frame, row)
        right = eval_scalar(expr.right, frame, row)
        return sql_arith(expr.op, left, right)
    if isinstance(expr, Aggregate):
        raise ExecutionError("aggregate used outside an aggregation context")
    if isinstance(expr, Star):
        raise ExecutionError("* is only valid in a select list or COUNT(*)")
    raise ExecutionError(f"cannot evaluate expression {expr!r}")


def eval_comparison(pred, frame: Frame, row: tuple) -> TruthValue:
    """Evaluate one comparison or null test with 3-valued logic.

    IS [NOT] NULL is total: it never yields UNKNOWN.
    """
    from repro.sql.ast import NullTest

    if isinstance(pred, NullTest):
        value = eval_scalar(pred.expr, frame, row)
        return (value is not None) if pred.negated else (value is None)
    left = eval_scalar(pred.left, frame, row)
    right = eval_scalar(pred.right, frame, row)
    return sql_compare(pred.op, left, right)


def eval_conjunction(preds, frame: Frame, row: tuple) -> TruthValue:
    """Evaluate an AND of comparisons (empty conjunction is TRUE)."""
    result: TruthValue = True
    for pred in preds:
        result = sql_and(result, eval_comparison(pred, frame, row))
        if result is False:
            return False
    return result


def eval_aggregate(agg: Aggregate, frame: Frame, rows: list[tuple]):
    """Evaluate one aggregate over a group of rows.

    NULL inputs are ignored (SQL semantics).  COUNT(*) counts rows.
    AVG returns an exact :class:`fractions.Fraction`.  On an empty group
    COUNT returns 0 and everything else returns NULL.
    """
    if isinstance(agg.arg, Star):
        if agg.func != "COUNT":
            raise ExecutionError(f"{agg.func}(*) is not valid SQL")
        return len(rows)
    values = []
    for row in rows:
        value = eval_scalar(agg.arg, frame, row)
        if value is not None:
            values.append(value)
    if agg.distinct:
        deduped = []
        seen = set()
        for value in values:
            if value not in seen:
                seen.add(value)
                deduped.append(value)
        values = deduped
    if agg.func == "COUNT":
        return len(values)
    if not values:
        return None
    if agg.func == "MIN":
        return min(values)
    if agg.func == "MAX":
        return max(values)
    if agg.func == "SUM":
        total = sum(values)
        return int(total) if isinstance(total, Fraction) and total.denominator == 1 else total
    if agg.func == "AVG":
        total = Fraction(sum(Fraction(v) for v in values), len(values))
        return int(total) if total.denominator == 1 else total
    raise ExecutionError(f"unknown aggregate {agg.func!r}")


def eval_select_expr(expr: Expr, frame: Frame, rows: list[tuple]):
    """Evaluate a select-list expression in an aggregation context.

    ``expr`` may mix aggregates with group-by columns and arithmetic, e.g.
    ``SUM(x) / COUNT(x) + 1``.  Non-aggregate column references take their
    value from the first row of the group (all rows agree on group-by
    columns by construction).
    """
    if isinstance(expr, Aggregate):
        return eval_aggregate(expr, frame, rows)
    if isinstance(expr, BinaryOp):
        left = eval_select_expr(expr.left, frame, rows)
        right = eval_select_expr(expr.right, frame, rows)
        return sql_arith(expr.op, left, right)
    if not rows:
        return None
    return eval_scalar(expr, frame, rows[0])
