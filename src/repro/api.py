"""The stable programmatic facade (DESIGN.md §5e).

Three call shapes cover the common workflows, each accepting a
:class:`~repro.schema.catalog.Schema` or raw DDL text:

* :func:`generate` — one query, one :class:`Run` (suite + trace +
  metrics + health);
* :func:`generate_workload` — many queries, one combined fixture set;
* :func:`evaluate` — generate, enumerate mutants, and score the suite's
  killing power in one call.

Everything here is re-exported from :mod:`repro`; this module is the
documented entry point, and ``tests/test_public_api.py`` locks its
surface so it cannot drift silently::

    import repro

    run = repro.generate(ddl, "SELECT * FROM r WHERE r.a > 5",
                         config=repro.GenConfig(trace=True, metrics=True))
    print(run.health.summary())
    print(run.trace_text())
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.generator import (
    Budgets,
    GenConfig,
    GeneratedDataset,
    SuiteHealth,
    TestSuite,
    XDataGenerator,
)
from repro.engine.database import Database
from repro.mutation.space import MutationSpace, enumerate_mutants
from repro.schema.catalog import Schema
from repro.schema.ddl import parse_ddl
from repro.solver.search import SearchConfig
from repro.testing.killcheck import KillCheckConfig, KillReport, evaluate_suite
from repro.testing.workload import WorkloadSuite
from repro.testing.workload import generate_workload as _generate_workload

__all__ = [
    "Run",
    "Evaluation",
    "generate",
    "generate_workload",
    "evaluate",
    "GenConfig",
    "SearchConfig",
    "Budgets",
]


def _as_schema(schema: Schema | str) -> Schema:
    """Accept a parsed schema or raw DDL text."""
    if isinstance(schema, str):
        return parse_ddl(schema)
    return schema


@dataclass
class Run:
    """One ``generate()`` call's complete result.

    Bundles the suite with its observability artefacts so callers never
    reach into generator internals: ``run.suite`` (datasets + skip
    list), ``run.health`` (failure semantics), ``run.trace`` (span
    tree, with :attr:`GenConfig.trace`) and ``run.metrics`` (snapshot,
    with :attr:`GenConfig.metrics`).
    """

    suite: TestSuite

    @property
    def datasets(self) -> list[GeneratedDataset]:
        return self.suite.datasets

    @property
    def databases(self) -> list[Database]:
        return self.suite.databases

    @property
    def health(self) -> SuiteHealth:
        return self.suite.health

    @property
    def ok(self) -> bool:
        """True when nothing degraded (equivalences are not failures)."""
        return self.suite.health.ok

    @property
    def trace(self) -> list | None:
        """Root span records (``GenConfig.trace``), else ``None``."""
        return self.suite.trace

    @property
    def metrics(self) -> dict | None:
        """Metrics snapshot (``GenConfig.metrics``), else ``None``."""
        return self.suite.metrics

    def trace_text(self) -> str:
        """The span tree rendered as an indented text tree."""
        from repro.testing.report import format_trace

        return format_trace(self.trace)

    def metrics_text(self) -> str:
        """The metrics snapshot in Prometheus-style text exposition."""
        from repro.obs.metrics import render_text

        return render_text(self.metrics)

    def summary(self) -> str:
        """The suite summary (datasets, timings, health)."""
        from repro.testing.report import format_suite

        return format_suite(self.suite)


@dataclass
class Evaluation:
    """Result of :func:`evaluate`: a run scored against its mutants."""

    run: Run
    space: MutationSpace
    report: KillReport

    @property
    def killed(self) -> int:
        return self.report.killed

    @property
    def total(self) -> int:
        return self.report.total

    @property
    def survivors(self) -> list:
        return self.report.survivors


def generate(
    schema: Schema | str, query: str, *, config: GenConfig | None = None
) -> Run:
    """Generate a mutant-killing test suite for one query.

    Args:
        schema: Parsed :class:`Schema` or raw ``CREATE TABLE`` DDL text.
        query: The SQL query under test.
        config: Generator configuration; defaults cover the paper's
            standard pipeline.  Turn on :attr:`GenConfig.trace` /
            ``metrics`` / ``journal_path`` for observability.
    """
    generator = XDataGenerator(_as_schema(schema), config)
    return Run(generator.generate(query))


def generate_workload(
    schema: Schema | str, queries: dict[str, str], *,
    config: GenConfig | None = None, **kwargs,
) -> WorkloadSuite:
    """Generate one combined fixture set for many named queries.

    Keyword arguments (``minimize``, ``workers``, ``fail_fast``) pass
    through to :func:`repro.testing.workload.generate_workload`.
    """
    return _generate_workload(
        _as_schema(schema), queries, config=config, **kwargs
    )


def evaluate(
    schema: Schema | str, query: str, *,
    config: GenConfig | None = None, include_full_outer: bool = False,
    backend=None, cross_check: bool = False,
    kill_config: KillCheckConfig | None = None,
) -> Evaluation:
    """Generate a suite and score it against the query's mutants.

    ``backend`` selects the execution backend for the kill check
    (``"engine"``, ``"sqlite"``, or a :class:`repro.backends.Backend`
    instance); ``cross_check=True`` runs every execution on both the
    engine and SQLite and raises
    :class:`repro.backends.BackendDisagreement` if their result bags
    ever differ (DESIGN.md §5f).  ``kill_config`` carries the kill-check
    evaluation switches (:class:`repro.testing.killcheck.KillCheckConfig`;
    the default enables the batched subplan-cache path of DESIGN.md
    §5g).  Cache traffic lands in ``run.health.subplan_cache`` and, when
    metrics are on, as ``xdata_subplan_cache_*`` counters in the
    snapshot.
    """
    run = generate(schema, query, config=config)
    space = enumerate_mutants(
        run.suite.analyzed, include_full_outer=include_full_outer
    )
    report = evaluate_suite(
        space, run.databases, backend=backend, cross_check=cross_check,
        config=kill_config,
    )
    if report.cache_stats is not None:
        _reconcile_cache_stats(run.suite, report.cache_stats)
    return Evaluation(run, space, report)


def _reconcile_cache_stats(suite: TestSuite, stats: dict) -> None:
    """Fold kill-check subplan-cache traffic into the suite's telemetry.

    Health gets the plain stats (``format_suite`` prints the hit rate
    beside the skip taxonomy); a metrics snapshot, when present, gains
    the matching ``xdata_subplan_cache_*`` counters so the two surfaces
    reconcile (§5e convention: counter totals equal health fields).
    """
    suite.health.subplan_cache = dict(stats)
    if suite.metrics is not None:
        from repro.engine.subplan import SUBPLAN_COUNTER_PREFIX

        counters = suite.metrics.setdefault("counters", {})
        for name, value in (
            ("hits_total", stats.get("hits", 0)),
            ("misses_total", stats.get("misses", 0)),
            ("bytes_total", stats.get("bytes", 0)),
        ):
            key = SUBPLAN_COUNTER_PREFIX + name
            counters[key] = counters.get(key, 0) + value
