"""The stable programmatic facade (DESIGN.md §5e).

Three call shapes cover the common workflows, each accepting a
:class:`~repro.schema.catalog.Schema` or raw DDL text:

* :func:`generate` — one query, one :class:`Run` (suite + trace +
  metrics + health);
* :func:`generate_workload` — many queries, one combined fixture set;
* :func:`evaluate` — generate, enumerate mutants, and score the suite's
  killing power in one call.

For repeated calls against one schema — a grading session, the service
layer — :class:`Session` holds the parsed schema, generator, backend
handle and a fingerprint-keyed suite cache across calls::

    with repro.Session(ddl) as session:
        for submission in submissions:
            result = session.evaluate(submission)   # equivalent spellings hit the cache

Kill-check evaluation switches travel in one :class:`EvalOptions`
value rather than a keyword per switch; the old keywords still work but
warn :class:`DeprecationWarning`.

Everything here is re-exported from :mod:`repro`; this module is the
documented entry point, and ``tests/test_public_api.py`` locks its
surface so it cannot drift silently::

    import repro

    run = repro.generate(ddl, "SELECT * FROM r WHERE r.a > 5",
                         config=repro.GenConfig(trace=True, metrics=True))
    print(run.health.summary())
    print(run.trace_text())
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from repro.core.generator import (
    Budgets,
    GenConfig,
    GeneratedDataset,
    SuiteHealth,
    TestSuite,
    XDataGenerator,
)
from repro.engine.database import Database
from repro.mutation.space import MutationSpace, enumerate_mutants
from repro.schema.catalog import Schema
from repro.schema.ddl import parse_ddl
from repro.solver.search import SearchConfig
from repro.testing.killcheck import KillCheckConfig, KillReport, evaluate_suite
from repro.testing.workload import WorkloadSuite
from repro.testing.workload import generate_workload as _generate_workload

__all__ = [
    "Run",
    "Evaluation",
    "EvalOptions",
    "Session",
    "generate",
    "generate_workload",
    "evaluate",
    "fingerprint",
    "GenConfig",
    "SearchConfig",
    "Budgets",
]


def _as_schema(schema: Schema | str) -> Schema:
    """Accept a parsed schema or raw DDL text."""
    if isinstance(schema, str):
        return parse_ddl(schema)
    return schema


@dataclass
class Run:
    """One ``generate()`` call's complete result.

    Bundles the suite with its observability artefacts so callers never
    reach into generator internals: ``run.suite`` (datasets + skip
    list), ``run.health`` (failure semantics), ``run.trace`` (span
    tree, with :attr:`GenConfig.trace`) and ``run.metrics`` (snapshot,
    with :attr:`GenConfig.metrics`).
    """

    suite: TestSuite

    @property
    def datasets(self) -> list[GeneratedDataset]:
        return self.suite.datasets

    @property
    def databases(self) -> list[Database]:
        return self.suite.databases

    @property
    def health(self) -> SuiteHealth:
        return self.suite.health

    @property
    def ok(self) -> bool:
        """True when nothing degraded (equivalences are not failures)."""
        return self.suite.health.ok

    @property
    def trace(self) -> list | None:
        """Root span records (``GenConfig.trace``), else ``None``."""
        return self.suite.trace

    @property
    def metrics(self) -> dict | None:
        """Metrics snapshot (``GenConfig.metrics``), else ``None``."""
        return self.suite.metrics

    def trace_text(self) -> str:
        """The span tree rendered as an indented text tree."""
        from repro.testing.report import format_trace

        return format_trace(self.trace)

    def metrics_text(self) -> str:
        """The metrics snapshot in Prometheus-style text exposition."""
        from repro.obs.metrics import render_text

        return render_text(self.metrics)

    def summary(self) -> str:
        """The suite summary (datasets, timings, health)."""
        from repro.testing.report import format_suite

        return format_suite(self.suite)


@dataclass
class Evaluation:
    """Result of :func:`evaluate`: a run scored against its mutants."""

    run: Run
    space: MutationSpace
    report: KillReport

    @property
    def killed(self) -> int:
        return self.report.killed

    @property
    def total(self) -> int:
        return self.report.total

    @property
    def survivors(self) -> list:
        return self.report.survivors


@dataclass(frozen=True)
class EvalOptions:
    """Kill-check evaluation switches, bundled (DESIGN.md §5e).

    Replaces the former keyword sprawl on :func:`evaluate`
    (``include_full_outer`` / ``backend`` / ``cross_check`` /
    ``kill_config``) with one value that travels through sessions, the
    job queue and the HTTP service unchanged.

    Attributes:
        include_full_outer: Enumerate FULL OUTER JOIN mutants too.
        backend: Kill-check execution backend — ``None`` for the
            reference engine, ``"engine"`` / ``"sqlite"``, or a
            :class:`repro.backends.Backend` instance.
        cross_check: Run every execution on both the engine and SQLite,
            raising :class:`repro.backends.BackendDisagreement` on any
            result-bag difference (DESIGN.md §5f).
        kill_config: Kill-check evaluation switches
            (:class:`repro.testing.killcheck.KillCheckConfig`); the
            default enables the batched subplan-cache path (§5g).
    """

    include_full_outer: bool = False
    backend: object = None
    cross_check: bool = False
    kill_config: KillCheckConfig | None = None


#: The deprecated ``evaluate()`` keywords and the EvalOptions field each
#: maps to; kept as data so the shim and its test stay in lockstep.
_LEGACY_EVAL_KEYWORDS = (
    "include_full_outer",
    "backend",
    "cross_check",
    "kill_config",
)


def _coerce_options(options: EvalOptions | None, legacy: dict) -> EvalOptions:
    """Fold deprecated ``evaluate()`` keywords into an :class:`EvalOptions`.

    Mirrors the ``*_deadline_s`` precedent: old spellings keep working
    but warn, and mixing old and new spellings is an error rather than a
    silent precedence rule.
    """
    unknown = [k for k in legacy if k not in _LEGACY_EVAL_KEYWORDS]
    if unknown:
        raise TypeError(
            f"evaluate() got unexpected keyword argument {unknown[0]!r}"
        )
    if not legacy:
        return options or EvalOptions()
    if options is not None:
        raise TypeError(
            "pass evaluation switches either via options=EvalOptions(...) "
            f"or via the deprecated keywords {sorted(legacy)}, not both"
        )
    warnings.warn(
        f"evaluate() keywords {sorted(legacy)} are deprecated; "
        "pass options=EvalOptions(...) instead",
        DeprecationWarning,
        stacklevel=3,
    )
    return EvalOptions(**legacy)


def generate(
    schema: Schema | str, query: str, *, config: GenConfig | None = None
) -> Run:
    """Generate a mutant-killing test suite for one query.

    Args:
        schema: Parsed :class:`Schema` or raw ``CREATE TABLE`` DDL text.
        query: The SQL query under test.
        config: Generator configuration; defaults cover the paper's
            standard pipeline.  Turn on :attr:`GenConfig.trace` /
            ``metrics`` / ``journal_path`` for observability.
    """
    generator = XDataGenerator(_as_schema(schema), config)
    return Run(generator.generate(query))


def generate_workload(
    schema: Schema | str, queries: dict[str, str], *,
    config: GenConfig | None = None, **kwargs,
) -> WorkloadSuite:
    """Generate one combined fixture set for many named queries.

    Keyword arguments (``minimize``, ``workers``, ``fail_fast``) pass
    through to :func:`repro.testing.workload.generate_workload`.
    """
    return _generate_workload(
        _as_schema(schema), queries, config=config, **kwargs
    )


def _evaluate_run(run: Run, options: EvalOptions) -> Evaluation:
    """Score an existing run against its mutants (shared kill-check tail)."""
    space = enumerate_mutants(
        run.suite.analyzed, include_full_outer=options.include_full_outer
    )
    report = evaluate_suite(
        space, run.databases, backend=options.backend,
        cross_check=options.cross_check, config=options.kill_config,
    )
    if report.cache_stats is not None:
        _reconcile_cache_stats(run.suite, report.cache_stats)
    return Evaluation(run, space, report)


def evaluate(
    schema: Schema | str, query: str, *,
    config: GenConfig | None = None, options: EvalOptions | None = None,
    **legacy,
) -> Evaluation:
    """Generate a suite and score it against the query's mutants.

    Evaluation switches (backend selection, cross-checking, FULL OUTER
    mutants, kill-check tuning) travel in ``options`` — see
    :class:`EvalOptions`.  The former per-switch keywords are accepted
    with a :class:`DeprecationWarning`.  Subplan-cache traffic lands in
    ``run.health.subplan_cache`` and, when metrics are on, as
    ``xdata_subplan_cache_*`` counters in the snapshot.
    """
    opts = _coerce_options(options, legacy)
    run = generate(schema, query, config=config)
    return _evaluate_run(run, opts)


def fingerprint(schema: Schema | str, query, config: GenConfig | None = None) -> str:
    """The content address of a generation request (sha-256 hex digest).

    Two ``(schema, query, config)`` triples share a fingerprint exactly
    when the generator is guaranteed to produce byte-identical suites
    for them, which is the contract the suite cache
    (:class:`repro.service.SuiteCache`) and :class:`Session` rely on to
    serve a cached result in place of a solve.

    Canonicalization rules (full details in
    :mod:`repro.service.fingerprint`):

    * the query is parsed and re-printed, normalizing whitespace,
      keyword and identifier case, literal formatting (``1.50`` →
      ``1.5``), ``!=`` → ``<>`` and redundant parentheses;
    * table bindings are renamed positionally (``t1``, ``t2``, ... in
      FROM-clause order, recursing into subqueries), so alias choice
      never affects the fingerprint; select-list aliases are kept
      (lower-cased) because they name output columns;
    * conjunct, join and select-item order are **not** normalized —
      reordering preserves SQL semantics but changes the order in which
      dataset specs are derived, hence the generated bytes;
    * the schema renders with tables sorted and column order preserved;
    * the config covers every generator knob except ``workers`` and the
      observability switches (``trace`` / ``metrics`` /
      ``journal_path``), which are documented to never change generated
      bytes.  ``config=None`` fingerprints like ``GenConfig()``.

    Accepts raw DDL/SQL text or parsed :class:`Schema` /
    :class:`repro.sql.ast.Query` values.
    """
    # Imported lazily: repro.service pulls in the job queue and HTTP
    # server, which themselves import this module.
    from repro.service.fingerprint import fingerprint as _fingerprint

    return _fingerprint(schema, query, config)


class Session:
    """Repeated generation/evaluation against one schema, with caching.

    A session parses the schema once, reuses one
    :class:`~repro.core.generator.XDataGenerator`, resolves the backend
    handle once, and memoizes runs by content fingerprint — so
    equivalent spellings of one query (case, whitespace, aliases) share
    a single solve.  This is the execution substrate of the service
    layer (:mod:`repro.service`) and the natural shape for grading
    assistants (``examples/grading_assistant.py``).

    Thread-safety: safe for concurrent ``generate`` / ``evaluate``
    calls; concurrent solves of *different* queries proceed in
    parallel, duplicate fingerprints are single-flighted by the dict
    check (a rare double solve is benign — both produce identical
    suites).
    """

    def __init__(
        self,
        schema: Schema | str,
        *,
        config: GenConfig | None = None,
        options: EvalOptions | None = None,
    ) -> None:
        self.schema = _as_schema(schema)
        self.config = config or GenConfig()
        self.options = options or EvalOptions()
        self._generator = XDataGenerator(self.schema, self.config)
        self._runs: dict[str, Run] = {}
        self._evaluations: dict[str, Evaluation] = {}
        self._schema_canon: str | None = None

    # -- content addressing --------------------------------------------

    def fingerprint(self, query) -> str:
        """The content address of ``query`` under this session's config."""
        from repro.service.fingerprint import (
            canonical_config,
            canonical_query,
            canonical_schema,
            fingerprint_parts,
        )

        if self._schema_canon is None:
            self._schema_canon = canonical_schema(self.schema)
            self._config_canon = canonical_config(self.config)
        return fingerprint_parts(
            self._schema_canon, canonical_query(query), self._config_canon
        )

    def canonical_sql(self, query) -> str:
        """The canonical SQL text this session would actually solve."""
        from repro.service.fingerprint import canonical_query

        return canonical_query(query)

    # -- cached pipeline stages ----------------------------------------

    def generate(self, query) -> Run:
        """Generate (or fetch) the suite for ``query``.

        The solve runs over the *canonical* SQL text, so every spelling
        that shares a fingerprint returns the very same :class:`Run`
        object — which is what lets the service layer promise
        byte-identical responses for equivalent submissions.
        """
        key = self.fingerprint(query)
        run = self._runs.get(key)
        if run is None:
            run = Run(self._generator.generate(self.canonical_sql(query)))
            self._runs[key] = run
        return run

    def evaluate(self, query, options: EvalOptions | None = None) -> Evaluation:
        """Generate (or fetch) a suite and score it against mutants.

        ``options`` overrides the session default for this call only.
        Evaluations are memoized per ``(fingerprint, options)`` pair, so
        re-grading an equivalent submission costs a dict lookup.
        """
        opts = options or self.options
        key = f"{self.fingerprint(query)}|{opts!r}"
        evaluation = self._evaluations.get(key)
        if evaluation is None:
            evaluation = _evaluate_run(self.generate(query), opts)
            self._evaluations[key] = evaluation
        return evaluation

    # -- bookkeeping ---------------------------------------------------

    @property
    def cached_runs(self) -> int:
        """Number of distinct fingerprints solved so far."""
        return len(self._runs)

    def clear(self) -> None:
        """Drop memoized runs and evaluations (schema/config kept)."""
        self._runs.clear()
        self._evaluations.clear()

    def close(self) -> None:
        """Release cached state; the session stays usable but cold."""
        self.clear()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _reconcile_cache_stats(suite: TestSuite, stats: dict) -> None:
    """Fold kill-check subplan-cache traffic into the suite's telemetry.

    Health gets the plain stats (``format_suite`` prints the hit rate
    beside the skip taxonomy); a metrics snapshot, when present, gains
    the matching ``xdata_subplan_cache_*`` counters so the two surfaces
    reconcile (§5e convention: counter totals equal health fields).
    """
    suite.health.subplan_cache = dict(stats)
    if suite.metrics is not None:
        from repro.engine.subplan import SUBPLAN_COUNTER_PREFIX

        counters = suite.metrics.setdefault("counters", {})
        for name, value in (
            ("hits_total", stats.get("hits", 0)),
            ("misses_total", stats.get("misses", 0)),
            ("bytes_total", stats.get("bytes", 0)),
        ):
            key = SUBPLAN_COUNTER_PREFIX + name
            counters[key] = counters.get(key, 0) + value
