"""Schema substrate: catalog types, constraints, and a small DDL parser."""

from repro.schema.catalog import Column, ForeignKey, Schema, Table
from repro.schema.ddl import parse_ddl
from repro.schema.types import SqlType

__all__ = ["Column", "ForeignKey", "Schema", "Table", "SqlType", "parse_ddl"]
