"""Relational catalog: tables, columns, primary/foreign keys.

The paper assumes (A1) that primary-key and foreign-key constraints are the
only constraints, and (A2) that foreign-key columns are not nullable.  The
catalog records both kinds, exposes the *column-level transitive closure*
of foreign-key relationships required by Algorithm 1's preprocessing step,
and answers the "which attributes reference R.a (directly or indirectly)"
queries at the heart of Algorithm 2.

All table and column names are case-insensitive; they are stored and
compared in lower case.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CatalogError, SchemaError
from repro.schema.types import SqlType


@dataclass(frozen=True)
class Column:
    """A column definition.

    Attributes:
        name: Column name (stored lower-case).
        sqltype: Declared type.
        nullable: Whether NULL is admissible.  Foreign-key columns are
            forced non-nullable at schema validation time (assumption A2)
            unless the schema is built with ``allow_nullable_fks=True``
            (the Section V-H relaxation).
        domain: Optional enumeration of admissible values; used by the
            solver to pick intuitive values (e.g. real department names).
    """

    name: str
    sqltype: SqlType
    nullable: bool = True
    domain: tuple = ()

    def __post_init__(self):
        object.__setattr__(self, "name", self.name.lower())


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key constraint from one table to another.

    Attributes:
        table: Referencing table name.
        columns: Referencing column names, in declaration order.
        ref_table: Referenced table name.
        ref_columns: Referenced column names (parallel to ``columns``).
    """

    table: str
    columns: tuple[str, ...]
    ref_table: str
    ref_columns: tuple[str, ...]

    def __post_init__(self):
        object.__setattr__(self, "table", self.table.lower())
        object.__setattr__(self, "ref_table", self.ref_table.lower())
        object.__setattr__(self, "columns", tuple(c.lower() for c in self.columns))
        object.__setattr__(
            self, "ref_columns", tuple(c.lower() for c in self.ref_columns)
        )
        if len(self.columns) != len(self.ref_columns):
            raise SchemaError(
                f"foreign key on {self.table} has {len(self.columns)} columns "
                f"but references {len(self.ref_columns)}"
            )

    def column_pairs(self) -> list[tuple[str, str]]:
        """(referencing column, referenced column) pairs."""
        return list(zip(self.columns, self.ref_columns))


@dataclass
class Table:
    """A table definition: ordered columns plus key constraints."""

    name: str
    columns: list[Column]
    primary_key: tuple[str, ...] = ()
    foreign_keys: list[ForeignKey] = field(default_factory=list)

    def __post_init__(self):
        self.name = self.name.lower()
        self.primary_key = tuple(c.lower() for c in self.primary_key)
        self._by_name = {c.name: i for i, c in enumerate(self.columns)}
        if len(self._by_name) != len(self.columns):
            raise SchemaError(f"duplicate column name in table {self.name}")
        for pk_col in self.primary_key:
            if pk_col not in self._by_name:
                raise SchemaError(
                    f"primary key column {pk_col!r} not in table {self.name}"
                )

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def has_column(self, name: str) -> bool:
        return name.lower() in self._by_name

    def column(self, name: str) -> Column:
        try:
            return self.columns[self._by_name[name.lower()]]
        except KeyError:
            raise CatalogError(f"no column {name!r} in table {self.name}") from None

    def column_index(self, name: str) -> int:
        try:
            return self._by_name[name.lower()]
        except KeyError:
            raise CatalogError(f"no column {name!r} in table {self.name}") from None


class Schema:
    """A database schema: a set of tables with validated key constraints.

    Args:
        tables: Table definitions.
        allow_nullable_fks: If False (the default, per assumption A2),
            foreign-key columns are forced NOT NULL.  Setting True enables
            the Section V-H relaxation where the generator may emit NULL
            foreign-key values instead of nullifying referenced attributes.
    """

    def __init__(self, tables: list[Table], allow_nullable_fks: bool = False):
        self._tables: dict[str, Table] = {}
        self.allow_nullable_fks = allow_nullable_fks
        for table in tables:
            if table.name in self._tables:
                raise SchemaError(f"duplicate table {table.name}")
            self._tables[table.name] = table
        self._validate()
        self._fk_closure = self._compute_fk_closure()

    # -- lookup -------------------------------------------------------------

    @property
    def tables(self) -> list[Table]:
        return list(self._tables.values())

    @property
    def table_names(self) -> list[str]:
        return list(self._tables)

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"no table {name!r} in schema") from None

    def foreign_keys(self) -> list[ForeignKey]:
        """All foreign keys in the schema."""
        out: list[ForeignKey] = []
        for table in self._tables.values():
            out.extend(table.foreign_keys)
        return out

    # -- validation ----------------------------------------------------------

    def _validate(self) -> None:
        for table in self._tables.values():
            for fk in table.foreign_keys:
                if fk.table != table.name:
                    raise SchemaError(
                        f"foreign key declared on {table.name} but names {fk.table}"
                    )
                if fk.ref_table not in self._tables:
                    raise SchemaError(
                        f"foreign key on {table.name} references unknown table "
                        f"{fk.ref_table}"
                    )
                target = self._tables[fk.ref_table]
                for col in fk.columns:
                    if not table.has_column(col):
                        raise SchemaError(
                            f"foreign key column {col!r} not in table {table.name}"
                        )
                for col in fk.ref_columns:
                    if not target.has_column(col):
                        raise SchemaError(
                            f"referenced column {col!r} not in table {fk.ref_table}"
                        )
                if not self.allow_nullable_fks:
                    # Assumption A2: make FK columns non-nullable.
                    for col in fk.columns:
                        idx = table.column_index(col)
                        column = table.columns[idx]
                        if column.nullable:
                            table.columns[idx] = Column(
                                column.name,
                                column.sqltype,
                                nullable=False,
                                domain=column.domain,
                            )

    # -- foreign-key closure ---------------------------------------------------

    def _compute_fk_closure(self) -> set[tuple[str, str, str, str]]:
        """Column-level transitive closure of FK references.

        Returns a set of ``(table, column, ref_table, ref_column)`` 4-tuples:
        if A.x -> B.x and B.x -> C.x are declared, the closure also contains
        A.x -> C.x (Algorithm 1 preprocessing, step 3).
        """
        edges: set[tuple[str, str, str, str]] = set()
        for fk in self.foreign_keys():
            for col, ref_col in fk.column_pairs():
                edges.add((fk.table, col, fk.ref_table, ref_col))
        closed = set(edges)
        changed = True
        while changed:
            changed = False
            for t1, c1, t2, c2 in list(closed):
                for t3, c3, t4, c4 in edges:
                    if (t3, c3) == (t2, c2) and (t1, c1, t4, c4) not in closed:
                        if (t1, c1) != (t4, c4):
                            closed.add((t1, c1, t4, c4))
                            changed = True
        return closed

    def fk_closure(self) -> set[tuple[str, str, str, str]]:
        """The transitive column-level FK closure (copy)."""
        return set(self._fk_closure)

    def references(self, table: str, column: str) -> set[tuple[str, str]]:
        """Columns that ``table.column`` references, directly or transitively."""
        table = table.lower()
        column = column.lower()
        return {
            (rt, rc)
            for (t, c, rt, rc) in self._fk_closure
            if (t, c) == (table, column)
        }

    def referencing(self, table: str, column: str) -> set[tuple[str, str]]:
        """Columns that reference ``table.column``, directly or transitively.

        This is the Algorithm 2 helper: nullifying a referenced attribute
        requires jointly nullifying everything in this set.
        """
        table = table.lower()
        column = column.lower()
        return {
            (t, c)
            for (t, c, rt, rc) in self._fk_closure
            if (rt, rc) == (table, column)
        }

    # -- derived schemas ----------------------------------------------------------

    def without_foreign_keys(self, keep: int | None = None) -> "Schema":
        """A copy of this schema with only the first ``keep`` foreign keys.

        Used by the Table I experiments, which vary the number of foreign
        keys from 0 up to the number originally present.  ``keep=None``
        keeps all; ``keep=0`` strips every foreign key.
        """
        remaining = keep
        tables = []
        for table in self._tables.values():
            fks: list[ForeignKey] = []
            for fk in table.foreign_keys:
                if remaining is None:
                    fks.append(fk)
                elif remaining > 0:
                    fks.append(fk)
                    remaining -= 1
            tables.append(
                Table(
                    table.name,
                    list(table.columns),
                    table.primary_key,
                    fks,
                )
            )
        return Schema(tables, allow_nullable_fks=self.allow_nullable_fks)

    def restrict_foreign_keys(self, count: int, among: list[str]) -> "Schema":
        """Keep only the first ``count`` FKs declared on tables in ``among``.

        Foreign keys on other tables are dropped too, so experiments that
        say "the query's relations have k foreign keys" are reproducible.
        """
        among_set = {name.lower() for name in among}
        remaining = count
        tables = []
        for table in self._tables.values():
            fks = []
            if table.name in among_set:
                for fk in table.foreign_keys:
                    if remaining > 0 and fk.ref_table in among_set:
                        fks.append(fk)
                        remaining -= 1
            tables.append(
                Table(table.name, list(table.columns), table.primary_key, fks)
            )
        return Schema(tables, allow_nullable_fks=self.allow_nullable_fks)
