"""SQL column types supported by the catalog, engine and solver.

All types are integer-backed inside the constraint solver: VARCHAR values
are interned against a per-domain symbol pool, NUMERIC/FLOAT values are
generated as integers (the paper's generator does the same — CVC3 models
are integer assignments decoded into typed values).
"""

from __future__ import annotations

import enum


class SqlType(enum.Enum):
    """Column type; values are canonical SQL spellings."""

    INT = "INT"
    VARCHAR = "VARCHAR"
    NUMERIC = "NUMERIC"
    FLOAT = "FLOAT"
    DATE = "DATE"

    @property
    def is_numeric(self) -> bool:
        """True for types whose values support arithmetic and ordering."""
        return self in (SqlType.INT, SqlType.NUMERIC, SqlType.FLOAT)

    @property
    def is_textual(self) -> bool:
        return self is SqlType.VARCHAR

    @classmethod
    def from_sql(cls, name: str) -> "SqlType":
        """Map a SQL type keyword (INT, INTEGER, CHAR, DECIMAL, ...) here."""
        upper = name.upper()
        aliases = {
            "INT": cls.INT,
            "INTEGER": cls.INT,
            "VARCHAR": cls.VARCHAR,
            "CHAR": cls.VARCHAR,
            "TEXT": cls.VARCHAR,
            "NUMERIC": cls.NUMERIC,
            "DECIMAL": cls.NUMERIC,
            "FLOAT": cls.FLOAT,
            "REAL": cls.FLOAT,
            "DATE": cls.DATE,
        }
        if upper not in aliases:
            raise ValueError(f"unsupported SQL type {name!r}")
        return aliases[upper]
