"""Parser for a small CREATE TABLE DDL subset.

Supports the constructs the paper's schemas need::

    CREATE TABLE course (
        course_id VARCHAR(8) PRIMARY KEY,
        title     VARCHAR(50) NOT NULL,
        dept_name VARCHAR(20) REFERENCES department(dept_name),
        credits   NUMERIC(2,0)
    );
    CREATE TABLE prereq (
        course_id  VARCHAR(8),
        prereq_id  VARCHAR(8),
        PRIMARY KEY (course_id, prereq_id),
        FOREIGN KEY (course_id) REFERENCES course (course_id),
        FOREIGN KEY (prereq_id) REFERENCES course (course_id)
    );

Reuses the SQL lexer; statement separators are semicolons.
"""

from __future__ import annotations

from repro.errors import ParseError, SchemaError
from repro.schema.catalog import Column, ForeignKey, Schema, Table
from repro.schema.types import SqlType
from repro.sql.lexer import Token, TokenKind, tokenize

_TYPE_KEYWORDS = {
    "INT", "INTEGER", "VARCHAR", "CHAR", "NUMERIC", "DECIMAL",
    "FLOAT", "REAL", "DATE", "TEXT",
}


class _DdlParser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._current
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _accept(self, kind: TokenKind, value: str | None = None) -> Token | None:
        if self._current.matches(kind, value):
            return self._advance()
        return None

    def _expect(self, kind: TokenKind, value: str | None = None) -> Token:
        token = self._accept(kind, value)
        if token is None:
            want = value or kind.name
            raise ParseError(
                f"expected {want} but found {self._current.value!r}", self._current
            )
        return token

    def _name(self) -> str:
        """Accept an identifier, or a keyword used as a name (e.g. ``year``)."""
        token = self._current
        if token.kind in (TokenKind.IDENT, TokenKind.KEYWORD):
            self._advance()
            return token.value.lower()
        raise ParseError(f"expected name, found {token.value!r}", token)

    def parse_tables(self) -> list[Table]:
        tables = []
        while not self._current.matches(TokenKind.EOF):
            tables.append(self._create_table())
            self._accept(TokenKind.OP, ";")
        return tables

    def _create_table(self) -> Table:
        self._expect(TokenKind.KEYWORD, "CREATE")
        self._expect(TokenKind.KEYWORD, "TABLE")
        table_name = self._name()
        self._expect(TokenKind.OP, "(")
        columns: list[Column] = []
        primary_key: tuple[str, ...] = ()
        foreign_keys: list[ForeignKey] = []
        while True:
            if self._accept(TokenKind.KEYWORD, "PRIMARY"):
                self._expect(TokenKind.KEYWORD, "KEY")
                if primary_key:
                    raise SchemaError(f"duplicate PRIMARY KEY on {table_name}")
                primary_key = tuple(self._column_name_list())
            elif self._accept(TokenKind.KEYWORD, "FOREIGN"):
                self._expect(TokenKind.KEYWORD, "KEY")
                cols = tuple(self._column_name_list())
                self._expect(TokenKind.KEYWORD, "REFERENCES")
                ref_table = self._name()
                ref_cols = cols
                if self._current.matches(TokenKind.OP, "("):
                    ref_cols = tuple(self._column_name_list())
                foreign_keys.append(
                    ForeignKey(table_name, cols, ref_table, ref_cols)
                )
            else:
                column, inline_pk, inline_fk = self._column_def(table_name)
                columns.append(column)
                if inline_pk:
                    if primary_key:
                        raise SchemaError(f"duplicate PRIMARY KEY on {table_name}")
                    primary_key = (column.name,)
                if inline_fk is not None:
                    foreign_keys.append(inline_fk)
            if not self._accept(TokenKind.OP, ","):
                break
        self._expect(TokenKind.OP, ")")
        return Table(table_name, columns, primary_key, foreign_keys)

    def _column_name_list(self) -> list[str]:
        self._expect(TokenKind.OP, "(")
        names = [self._name()]
        while self._accept(TokenKind.OP, ","):
            names.append(self._name())
        self._expect(TokenKind.OP, ")")
        return names

    def _column_def(self, table_name: str):
        col_name = self._name()
        type_token = self._current
        if type_token.value.upper() not in _TYPE_KEYWORDS:
            raise ParseError(
                f"expected column type, found {type_token.value!r}", type_token
            )
        self._advance()
        sqltype = SqlType.from_sql(type_token.value)
        if self._accept(TokenKind.OP, "("):  # length/precision — recorded nowhere
            self._expect(TokenKind.NUMBER)
            if self._accept(TokenKind.OP, ","):
                self._expect(TokenKind.NUMBER)
            self._expect(TokenKind.OP, ")")
        nullable = True
        inline_pk = False
        inline_fk: ForeignKey | None = None
        while True:
            if self._accept(TokenKind.KEYWORD, "NOT"):
                self._expect(TokenKind.KEYWORD, "NULL")
                nullable = False
            elif self._accept(TokenKind.KEYWORD, "PRIMARY"):
                self._expect(TokenKind.KEYWORD, "KEY")
                inline_pk = True
                nullable = False
            elif self._accept(TokenKind.KEYWORD, "REFERENCES"):
                ref_table = self._name()
                ref_cols = (col_name,)
                if self._current.matches(TokenKind.OP, "("):
                    ref_cols = tuple(self._column_name_list())
                inline_fk = ForeignKey(table_name, (col_name,), ref_table, ref_cols)
            else:
                break
        return Column(col_name, sqltype, nullable=nullable), inline_pk, inline_fk


def parse_ddl(ddl: str, allow_nullable_fks: bool = False) -> Schema:
    """Parse CREATE TABLE statements into a validated :class:`Schema`."""
    parser = _DdlParser(tokenize(ddl))
    return Schema(parser.parse_tables(), allow_nullable_fks=allow_nullable_fks)


def to_ddl(schema: Schema) -> str:
    """Render a schema back to CREATE TABLE text :func:`parse_ddl` accepts.

    The inverse direction of :func:`parse_ddl` — needed wherever a
    schema must travel as text, e.g. a ``POST /v1/jobs`` body for the
    generation service.  Round-trip property:
    ``parse_ddl(to_ddl(schema))`` equals ``schema`` table for table
    (columns, types, nullability, keys).
    """
    statements = []
    for table in schema.tables:
        lines = []
        for column in table.columns:
            parts = [f"    {column.name} {column.sqltype.value}"]
            if not column.nullable and column.name not in table.primary_key:
                parts.append("NOT NULL")
            lines.append(" ".join(parts))
        if table.primary_key:
            lines.append(f"    PRIMARY KEY ({', '.join(table.primary_key)})")
        for fk in table.foreign_keys:
            lines.append(
                f"    FOREIGN KEY ({', '.join(fk.columns)}) "
                f"REFERENCES {fk.ref_table} ({', '.join(fk.ref_columns)})"
            )
        body = ",\n".join(lines)
        statements.append(f"CREATE TABLE {table.name} (\n{body}\n);")
    return "\n".join(statements)
