"""Attribute bookkeeping: occurrences, qualified attributes, value pools.

An *occurrence* is one use of a base table in the FROM clause, identified
by its binding (alias, or the table name when unaliased) — the paper's
"distinct name".  A qualified attribute is an ``Attr(binding, column)``
pair; equivalence classes, predicates and nullification targets are all
expressed over these.

The :class:`PoolAssigner` computes, for VARCHAR columns, which columns
share a value universe: two columns belong to the same pool when they are
linked by a foreign key or compared by the query.  String interning is per
pool, so equality constraints between interned codes are meaningful and
cross-pool comparisons fail loudly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CatalogError
from repro.schema.catalog import Schema
from repro.schema.types import SqlType


@dataclass(frozen=True, order=True)
class Attr:
    """A qualified attribute: (binding, column)."""

    binding: str
    column: str

    def __str__(self) -> str:
        return f"{self.binding}.{self.column}"


@dataclass(frozen=True)
class Occurrence:
    """One use of a base table in the FROM clause."""

    binding: str
    table: str


class PoolAssigner:
    """Assigns a shared value pool to every (table, column) of the schema.

    Pools are computed over *schema tables and columns* (not occurrences):
    columns linked by foreign keys always share a pool, and the analyzer
    adds query-induced links (columns compared to each other) before pools
    are frozen.  Numeric columns all live in the single ``int`` universe
    and have no pool.
    """

    def __init__(self, schema: Schema):
        self._schema = schema
        self._parent: dict[tuple[str, str], tuple[str, str]] = {}
        # Memoized per-column answers; every dataset spec re-declares the
        # same variables, so these are asked thousands of times per query.
        # Invalidated on link() — the analyzer adds links before any
        # ProblemSpace consults the pools.
        self._pref_cache: dict[tuple[str, str], tuple[str, ...]] = {}
        #: Prepared slot-variable declarations (kind, pool, preferred),
        #: keyed by variable name — every base declaration build of a
        #: query redoes the same domain munging (see ProblemSpace.var).
        self._decl_cache: dict[str, tuple] = {}
        #: Declared VarInfo per variable name.  Valid across the sibling
        #: declaration builds of one query: they intern the same values
        #: in the same order (warm-table replay), so the preferred codes
        #: are identical by construction.
        self._info_cache: dict[str, object] = {}
        #: Hot-path ablation hook (see GenConfig.hot_path_caching).
        self.cache_enabled = True
        for fk in schema.foreign_keys():
            for col, ref_col in fk.column_pairs():
                self.link((fk.table, col), (fk.ref_table, ref_col))

    def _find(self, key: tuple[str, str]) -> tuple[str, str]:
        parent = self._parent.setdefault(key, key)
        if parent == key:
            return key
        root = self._find(parent)
        self._parent[key] = root
        return root

    def link(self, a: tuple[str, str], b: tuple[str, str]) -> None:
        """Record that two columns are compared / FK-linked."""
        ra, rb = self._find(a), self._find(b)
        if ra != rb:
            if rb < ra:
                ra, rb = rb, ra
            self._parent[rb] = ra
            self._pref_cache.clear()
            self._decl_cache.clear()
            self._info_cache.clear()

    def pool_of(self, table: str, column: str) -> str:
        """The pool identifier for a VARCHAR column."""
        root = self._find((table.lower(), column.lower()))
        return f"{root[0]}.{root[1]}"

    def preferred_values(self, table: str, column: str) -> tuple[str, ...]:
        """Union of enumerated domains across the column's pool members."""
        cache_key = (table.lower(), column.lower())
        cached = self._pref_cache.get(cache_key) if self.cache_enabled else None
        if cached is not None:
            return cached
        root = self._find(cache_key)
        values: list[str] = []
        seen: set[str] = set()
        for key in list(self._parent) + [(table.lower(), column.lower())]:
            if self._find(key) != root:
                continue
            table_name, col_name = key
            if not self._schema.has_table(table_name):
                continue
            schema_table = self._schema.table(table_name)
            if not schema_table.has_column(col_name):
                continue
            for value in schema_table.column(col_name).domain:
                if value not in seen:
                    seen.add(value)
                    values.append(value)
        result = tuple(values)
        self._pref_cache[cache_key] = result
        return result


def column_type(schema: Schema, table: str, column: str) -> SqlType:
    """Declared type of ``table.column`` (raises CatalogError if absent)."""
    schema_table = schema.table(table)
    if not schema_table.has_column(column):
        raise CatalogError(f"no column {column!r} in table {table}")
    return schema_table.column(column).sqltype
