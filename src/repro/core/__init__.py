"""The paper's core contribution: constraint-based test-data generation.

Public surface:

* :func:`repro.core.analyze.analyze_query` — canonicalise a parsed query
  (occurrence naming, equivalence classes, selection pushdown metadata);
* :class:`repro.core.generator.XDataGenerator` — Algorithm 1: produce a
  complete test suite of datasets for a query;
* :class:`repro.core.generator.TestSuite` / ``GeneratedDataset`` — results.
"""

from repro.core.analyze import AnalyzedQuery, analyze_query
from repro.core.generator import (
    Budgets,
    GeneratedDataset,
    GenConfig,
    SuiteHealth,
    TestSuite,
    XDataGenerator,
)

__all__ = [
    "AnalyzedQuery",
    "analyze_query",
    "XDataGenerator",
    "GenConfig",
    "Budgets",
    "TestSuite",
    "GeneratedDataset",
    "SuiteHealth",
]
