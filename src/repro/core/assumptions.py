"""Checks for the paper's assumptions A1-A8 (Section II).

The completeness guarantee (Theorem 1) holds *under the assumptions*;
violating some of them silently weakens the suite instead of breaking
generation.  This module audits a query + schema and returns warnings so
users know when they are outside the guaranteed envelope:

* A1/A2 are enforced by the :class:`~repro.schema.catalog.Schema`
  constructor (only key constraints exist; FK columns are NOT NULL unless
  the V-H relaxation is opted into — which is reported here).
* A3-A6 are enforced by the parser/analyzer (single block, conjunctive
  predicates, no IS NULL).
* A7: a full outer join should contribute at least one attribute from
  each input to the select list, else mutations in one input may be
  invisible in the result.
* A8: a *natural* full outer join needs a non-common attribute from each
  input (the coalesced common column can mask one side).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analyze import AnalyzedQuery
from repro.sql.ast import (
    ColumnRef,
    FromItem,
    Join,
    JoinKind,
    Star,
    TableRef,
    expr_columns,
    iter_table_refs,
)


@dataclass(frozen=True)
class AssumptionWarning:
    """One audit finding."""

    assumption: str  # e.g. 'A7'
    message: str

    def __str__(self) -> str:
        return f"[{self.assumption}] {self.message}"


def _select_bindings(aq: AnalyzedQuery) -> tuple[set[str], bool]:
    """(bindings referenced by the select list, has bare star)."""
    bindings: set[str] = set()
    bare_star = False
    for item in aq.query.select_items:
        if isinstance(item.expr, Star):
            if item.expr.table is None:
                bare_star = True
            else:
                bindings.add(item.expr.table.lower())
            continue
        for ref in expr_columns(item.expr):
            if ref.table:
                bindings.add(ref.table.lower())
    return bindings, bare_star


def _common_natural_columns(aq: AnalyzedQuery, join: Join) -> set[str]:
    left_tables = {
        aq.table_of(r.binding.lower()) for r in iter_table_refs(join.left)
    }
    right_tables = {
        aq.table_of(r.binding.lower()) for r in iter_table_refs(join.right)
    }
    left_cols = set()
    for table in left_tables:
        left_cols.update(aq.schema.table(table).column_names)
    right_cols = set()
    for table in right_tables:
        right_cols.update(aq.schema.table(table).column_names)
    return left_cols & right_cols


def check_assumptions(aq: AnalyzedQuery) -> list[AssumptionWarning]:
    """Audit the analyzed query; returns an empty list when all clear."""
    warnings: list[AssumptionWarning] = []
    if aq.schema.allow_nullable_fks:
        warnings.append(
            AssumptionWarning(
                "A2",
                "schema allows nullable foreign keys; the Section V-H "
                "NULL-key datasets are used where applicable",
            )
        )
    select_bindings, bare_star = _select_bindings(aq)

    def side_visible(item: FromItem, exclude_columns: set[str]) -> bool:
        if bare_star:
            return not exclude_columns or _has_noncommon_column(
                aq, item, exclude_columns
            )
        for ref in iter_table_refs(item):
            if ref.binding.lower() in select_bindings:
                if not exclude_columns:
                    return True
                if _select_uses_noncommon(aq, ref, exclude_columns):
                    return True
        return False

    def _has_noncommon_column(aq, item, exclude) -> bool:
        for ref in iter_table_refs(item):
            table = aq.schema.table(aq.table_of(ref.binding.lower()))
            if set(table.column_names) - exclude:
                return True
        return False

    def _select_uses_noncommon(aq, ref, exclude) -> bool:
        binding = ref.binding.lower()
        for item in aq.query.select_items:
            if isinstance(item.expr, Star):
                if item.expr.table and item.expr.table.lower() == binding:
                    return _has_noncommon_column(aq, ref, exclude)
                continue
            for col in expr_columns(item.expr):
                if col.table == binding and col.column not in exclude:
                    return True
        return False

    def walk(item: FromItem) -> None:
        if isinstance(item, TableRef):
            return
        assert isinstance(item, Join)
        walk(item.left)
        walk(item.right)
        if item.kind is not JoinKind.FULL:
            return
        exclude = (
            _common_natural_columns(aq, item) if item.natural else set()
        )
        rule = "A8" if item.natural else "A7"
        for side, label in ((item.left, "left"), (item.right, "right")):
            if not side_visible(side, exclude):
                suffix = (
                    " other than the common (join) attributes"
                    if item.natural
                    else ""
                )
                warnings.append(
                    AssumptionWarning(
                        rule,
                        f"full outer join: the select list exposes no "
                        f"attribute of the {label} input{suffix}; mutations "
                        f"there may be invisible in the result",
                    )
                )

    for item in aq.query.from_items:
        walk(item)
    return warnings
