"""killEquivalenceClasses() — Algorithm 2.

For every equivalence class ``ec`` and every element ``e = R.a`` of it:

* ``S`` is ``e`` itself, every other element of ``ec`` over the same base
  column (repeated occurrences share the tuple array, so they are
  nullified together), and every element that is a foreign key referencing
  ``R.a`` directly or transitively;
* ``P = ec - S``; when ``P`` is empty the whole group is a provably
  equivalent mutation and no dataset is attempted;
* otherwise the dataset makes all of ``P`` join with each other while no
  tuple of ``R`` carries the joined value in ``a`` — with every other
  equivalence class and predicate still satisfied so the difference
  propagates to the root (Section V-A's "second problem").
"""

from __future__ import annotations

from repro.core.analyze import AnalyzedQuery
from repro.core.attrs import Attr
from repro.core.spec import DatasetSpec, SkippedTarget
from repro.core.tuplespace import ProblemSpace
from repro.solver.terms import Formula


def _base_column(aq: AnalyzedQuery, attr: Attr) -> tuple[str, str]:
    return (aq.table_of(attr.binding), attr.column)


def nullification_sets(
    aq: AnalyzedQuery, ec: tuple[Attr, ...], element: Attr
) -> tuple[list[Attr], list[Attr]]:
    """Split ``ec`` into (S, P) for nullifying ``element`` (Alg 2 lines 5-7)."""
    target = _base_column(aq, element)
    referencing = aq.schema.referencing(*target)
    s_set: list[Attr] = []
    p_set: list[Attr] = []
    for attr in ec:
        base = _base_column(aq, attr)
        if base == target or base in referencing:
            s_set.append(attr)
        else:
            p_set.append(attr)
    return s_set, p_set


def _ec_label(ec: tuple[Attr, ...]) -> str:
    return "{" + ",".join(str(a) for a in ec) + "}"


def _null_fk_spec(aq, ec, element, s_set, target):
    """The Section V-H alternative: NULL the referencing foreign keys.

    When nullifying a referenced attribute is impossible (P empty) but the
    schema allows nullable foreign keys, a dataset whose referencing
    tuples carry NULL in the foreign-key column still exhibits the
    join/outer-join difference: a NULL key joins nothing.  Applicable only
    when every referencing column is nullable, outside its table's primary
    key, and not mentioned by any other predicate.
    """
    if not aq.schema.allow_nullable_fks:
        return None
    base_target = _base_column(aq, element)
    null_attrs = [a for a in s_set if _base_column(aq, a) != base_target]
    if not null_attrs:
        return None
    for attr in null_attrs:
        table = aq.table_of(attr.binding)
        schema_table = aq.schema.table(table)
        if not schema_table.column(attr.column).nullable:
            return None
        if attr.column in schema_table.primary_key:
            return None
        for info in aq.selections + aq.other_joins:
            from repro.sql.ast import comparison_columns

            refs = {
                (ref.table, ref.column)
                for ref in comparison_columns(info.pred)
            }
            if (attr.binding, attr.column) in refs:
                return None

    def build(space: ProblemSpace, ec=ec, null_attrs=tuple(null_attrs)):
        for attr in null_attrs:
            table = space.aq.table_of(attr.binding)
            space.force_null(table, space.slot_of(attr.binding), attr.column)
        conds: list[Formula] = []
        for other_ec in space.aq.eq_classes:
            if other_ec == ec:
                continue
            conds.extend(space.eq_class_conditions(other_ec))
        for info in space.aq.selections + space.aq.other_joins:
            conds.append(space.pred_formula(info.pred))
        return conds

    nulled = ", ".join(str(a) for a in null_attrs)
    return DatasetSpec(
        group="eqclass",
        target=target + " (null-fk)",
        purpose=(
            f"kill join-type mutants via NULL foreign keys (Section V-H): "
            f"{nulled} set to NULL so the referencing tuples join nothing"
        ),
        build=build,
    )


def specs(
    aq: AnalyzedQuery,
    merged_ecs: bool = True,
    groupby_distinct: bool = True,
) -> tuple[list[DatasetSpec], list[SkippedTarget]]:
    """One dataset spec per (equivalence class, element) with non-empty P.

    Args:
        merged_ecs: Use transitively merged equivalence classes (the
            paper's design, Section IV-B).  When False (ablation study),
            each equi-join conjunct is treated as its own two-member
            class, which loses the reordered-join-tree coverage of Fig. 2.
        groupby_distinct: Attach group-by distinctness constraints for
            aggregate queries (with relaxation); disabled in ablations.
    """
    out: list[DatasetSpec] = []
    skipped: list[SkippedTarget] = []
    if merged_ecs:
        classes = list(aq.eq_classes)
    else:
        seen_pairs = []
        for pair in aq.raw_equijoins:
            if pair not in seen_pairs:
                seen_pairs.append(pair)
        classes = [tuple(pair) for pair in seen_pairs]
    for ec in classes:
        for element in ec:
            target = f"ec:{_ec_label(ec)} nullify {element}"
            s_set, p_set = nullification_sets(aq, ec, element)
            if not p_set:
                null_spec = _null_fk_spec(aq, ec, element, s_set, target)
                if null_spec is not None:
                    out.append(null_spec)
                else:
                    skipped.append(
                        SkippedTarget(
                            "eqclass", target, "structurally-equivalent"
                        )
                    )
                continue
            table, column = _base_column(aq, element)

            def build(
                space: ProblemSpace,
                ec=ec,
                p_set=tuple(p_set),
                table=table,
                column=column,
                classes=tuple(classes),
            ) -> list[Formula]:
                conds: list[Formula] = []
                conds.extend(space.eq_class_conditions(p_set))
                conds.append(
                    space.not_exists_value(
                        table, column, space.attr_var(p_set[0])
                    )
                )
                for other_ec in classes:
                    if other_ec == ec:
                        continue
                    conds.extend(space.eq_class_conditions(other_ec))
                for info in space.aq.selections + space.aq.other_joins:
                    conds.append(space.pred_formula(info.pred))
                return conds

            relaxations = []
            if aq.group_by and groupby_distinct:
                # Primary attempt separates every slot into its own group
                # so aggregation cannot mask the join difference; fall back
                # to the bare constraints if that is inconsistent.
                base_build = build

                def with_distinct(space: ProblemSpace, base_build=base_build):
                    return base_build(space) + space.groupby_distinctness()

                relaxations = [("without group-by distinctness", build)]
                build = with_distinct

            out.append(
                DatasetSpec(
                    group="eqclass",
                    target=target,
                    purpose=(
                        f"kill join-type mutants: tuples for "
                        f"{{{','.join(str(a) for a in p_set)}}} join each other "
                        f"but no {table}.{column} tuple matches them"
                    ),
                    build=build,
                    support_columns=[(table, column)],
                    relaxations=relaxations,
                )
            )
    return out, skipped
