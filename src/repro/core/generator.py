"""Algorithm 1: the XData dataset generator.

:class:`XDataGenerator` ties the whole pipeline together::

    generateDataSet(q):
        preprocess query tree          -> repro.core.analyze
        initializeIndices()            -> repro.core.tuplespace
        generateDataSetForOriginalQuery()
        killEquivalenceClasses()       -> repro.core.kill_eqclass
        killOtherPredicates()          -> repro.core.kill_predicates
        killComparisonOperators()      -> repro.core.kill_comparison
        killAggregates()               -> repro.core.kill_aggregates

Each dataset spec is solved independently with a fresh solver; UNSAT
results are reported as skipped (equivalent) mutation groups, never as
errors.  The number of datasets is linear in query size: at most one per
equivalence-class element, one per (non-equi join predicate, relation),
three per selection conjunct, and one per aggregation operator.
"""

from __future__ import annotations

import dataclasses
import os
import time
import warnings
from dataclasses import InitVar, dataclass, field

from repro.core import (
    kill_aggregates,
    kill_comparison,
    kill_eqclass,
    kill_predicates,
)
from repro.core.analyze import AnalyzedQuery, analyze_query
from repro.core.assemble import assemble_dataset
from repro.core.dbconstraints import add_fk_support_slots, db_constraints
from repro.core.input_database import input_constraints
from repro.core.spec import DatasetSpec, SkippedTarget
from repro.core.tuplespace import ProblemSpace
from repro.engine.database import Database
from repro.errors import GenerationError, SolverLimitError
from repro.obs import Metrics, Tracer
from repro.obs.trace import NULL_TRACER
from repro.schema.catalog import Schema
from repro.solver.search import SearchConfig
from repro.solver.skeleton import compile_skeleton
from repro.solver.solver import Solver, SolveStats
from repro.solver.terms import Formula
from repro.sql.ast import Query
from repro.sql.parser import parse_query


@dataclass(frozen=True)
class Budgets:
    """Every wall-clock budget of a run, under one naming convention.

    Overlay object for :class:`GenConfig`: ``GenConfig(budgets=Budgets(
    suite_deadline_s=30.0))`` applies each non-``None`` field onto the
    matching config knob (``solve_deadline_s`` lands on the nested
    :attr:`GenConfig.solver` search config).  All values are seconds.
    """

    #: Budget for one solver search run (:attr:`SearchConfig.solve_deadline_s`).
    solve_deadline_s: float | None = None
    #: Budget for one spec's whole retry ladder.
    spec_deadline_s: float | None = None
    #: Budget for a whole ``generate()`` call.
    suite_deadline_s: float | None = None
    #: Budget for a pooled run's wait on any single worker result.
    pool_deadline_s: float | None = None


@dataclass
class GenConfig:
    """Generator configuration.

    Attributes:
        unfold: Unfold bounded quantifiers before solving (Section VI-B).
            Turning this off reproduces the paper's slow path.
        include_comparisons: Generate the comparison-operator datasets.
        include_aggregates: Generate the aggregation datasets.
        input_db: Optional input database (Section VI-A).
        input_mode: 'domain' or 'tuples' (see
            :mod:`repro.core.input_database`).
        solver: Search configuration forwarded to every solve call.
        trace_constraints: Attach each dataset's constraint set, rendered
            in CVC3 ASSERT syntax, to the result (debugging aid matching
            the paper's presentation).
    """

    unfold: bool = True
    include_comparisons: bool = True
    include_aggregates: bool = True
    input_db: Database | None = None
    input_mode: str = "domain"
    solver: SearchConfig = field(default_factory=SearchConfig)
    trace_constraints: bool = False
    #: Worker processes for dataset generation.  Every spec is an
    #: independent constraint problem; with ``workers > 1`` they are
    #: fanned out across a process pool (see :mod:`repro.core.parallel`)
    #: and merged back in spec order, so the resulting suite is identical
    #: to a sequential run.
    workers: int = 1
    #: Hot-path ablation switch: reuse of the database-constraint formula
    #: list across attempts/specs with the same tuple-space signature.
    #: Off reproduces the seed's rebuild-every-attempt behaviour
    #: (benchmarks only; generated datasets are identical either way).
    hot_path_caching: bool = True
    #: Delta-solve override (DESIGN.md §5j): ``True``/``False`` force
    #: :attr:`SearchConfig.delta_solve` on the forwarded solver config;
    #: ``None`` leaves the solver config as constructed.  Convenience
    #: plumb-through for the CLI's ``--no-delta-solve``.  Delta solving
    #: additionally requires ``unfold`` and ``hot_path_caching`` and is
    #: bypassed for attempts that assert input-database constraints.
    delta_solve: bool | None = None
    #: Extension: anti-coincidence datasets that kill wrong-attribute
    #: join-condition mutants (repro.mutation.joincond); off by default
    #: to preserve the paper's dataset counts.
    include_join_condition_datasets: bool = False
    #: Ablation switches (each disables one of the paper's design
    #: choices; see benchmarks/bench_ablation.py for their effect):
    use_equivalence_classes: bool = True  # Section IV-B / Fig. 2
    use_fk_support_slots: bool = True  # Section V-B extra tuples
    use_groupby_distinctness: bool = True  # aggregate-masking guard
    #: -- fault tolerance (DESIGN.md §5d) --------------------------------
    #: Wall-clock budget for one spec, covering its whole retry ladder
    #: (seconds; ``None`` = unbounded).  Also bounds each individual
    #: solve via :attr:`SearchConfig.deadline_s`.
    spec_deadline_s: float | None = None
    #: Wall-clock budget for the whole :meth:`XDataGenerator.generate`
    #: call; specs not started (or not finished, in a pooled run) when
    #: it expires are skipped with reason ``"budget"``.
    suite_deadline_s: float | None = None
    #: Upper bound on a pooled run's wait for any single worker result;
    #: a hung worker then degrades the run instead of hanging it.
    #: ``suite_deadline_s`` implies the same bound; this one applies
    #: even without a suite deadline.
    pool_deadline_s: float | None = None
    #: Retry ladder (§5d): after a budget trip on the primary attempt,
    #: how many times to retry it with an escalated node budget
    #: (``node_limit * retry_node_factor**i``) before dropping to the
    #: spec's relaxations.
    retries: int = 1
    retry_node_factor: int = 4
    #: Final ladder rung: retry the primary build with ``copies=1``
    #: (best-effort — specs whose builds hard-code the copy count simply
    #: fail the rung).
    retry_shrink_copies: bool = True
    #: Abort the suite on the first degraded spec (budget exhaustion or
    #: unexpected error) instead of recording a skip and continuing.
    #: UNSAT specs are never failures (they are equivalence proofs).
    fail_fast: bool = False
    #: -- observability (DESIGN.md §5e) ----------------------------------
    #: Collect a nested-span trace of the run; the span tree is attached
    #: to the suite as :attr:`TestSuite.trace`.
    trace: bool = False
    #: Aggregate counters/gauges/histograms over the run; the snapshot is
    #: attached as :attr:`TestSuite.metrics`.
    metrics: bool = False
    #: Append the JSON-lines run journal to this file: ``run_start``, one
    #: ``span`` event per span close, and ``run_end`` / ``run_abort`` —
    #: flushed per event, so crashed or deadline-killed runs leave a
    #: complete forensic record.  Pooled *suite-level* fan-out strips the
    #: path from worker configs (one writer only); the workload layer
    #: replays worker span trees into the parent's journal instead.
    journal_path: str | None = None
    #: Deprecated spelling of :attr:`pool_deadline_s` (constructor
    #: keyword only; warns).
    pool_timeout_s: InitVar[float | None] = None
    #: Optional :class:`Budgets` overlay applied onto the deadline knobs.
    budgets: InitVar[Budgets | None] = None

    def __post_init__(
        self, pool_timeout_s: float | None, budgets: Budgets | None
    ) -> None:
        # Apply only when pool_deadline_s was not itself set: replace()
        # round-trips the alias property, and the re-passed old value
        # must not clobber a new pool_deadline_s in the same call.
        if pool_timeout_s is not None and self.pool_deadline_s is None:
            warnings.warn(
                "GenConfig(pool_timeout_s=...) is deprecated; use "
                "pool_deadline_s",
                DeprecationWarning,
                stacklevel=3,
            )
            self.pool_deadline_s = pool_timeout_s
        if self.delta_solve is not None:
            self.solver = dataclasses.replace(
                self.solver, delta_solve=self.delta_solve
            )
        if budgets is not None:
            if budgets.solve_deadline_s is not None:
                self.solver = dataclasses.replace(
                    self.solver, solve_deadline_s=budgets.solve_deadline_s
                )
            if budgets.spec_deadline_s is not None:
                self.spec_deadline_s = budgets.spec_deadline_s
            if budgets.suite_deadline_s is not None:
                self.suite_deadline_s = budgets.suite_deadline_s
            if budgets.pool_deadline_s is not None:
                self.pool_deadline_s = budgets.pool_deadline_s

    @property
    def observability_on(self) -> bool:
        """True when any of trace / metrics / journal is requested."""
        return self.trace or self.metrics or self.journal_path is not None


def _pool_timeout_s_alias(self) -> float | None:
    warnings.warn(
        "GenConfig.pool_timeout_s is deprecated; read pool_deadline_s",
        DeprecationWarning,
        stacklevel=2,
    )
    return self.pool_deadline_s


# Assigned after the decorator ran so the dataclass machinery sees only
# the InitVar, not the property, as the ``pool_timeout_s`` class attribute.
GenConfig.pool_timeout_s = property(_pool_timeout_s_alias)


@dataclass
class GeneratedDataset:
    """One generated test dataset plus its provenance."""

    group: str
    target: str
    purpose: str
    db: Database
    stats: SolveStats
    relaxation: str | None = None
    used_input_db: bool = False
    constraints_cvc: str | None = None
    #: Solve attempts spent before this dataset emerged (1 = first try;
    #: > 1 means the retry ladder fired).
    attempts: int = 1

    def pretty(self) -> str:
        header = f"[{self.group}] {self.purpose}"
        if self.relaxation:
            header += f" (relaxed: {self.relaxation})"
        return f"{header}\n{self.db.pretty()}"


#: Stage keys reported in :attr:`TestSuite.stage_times`.
STAGES = ("analyze", "build", "preprocess", "search", "assemble")

#: Per-spec outcome category -> metrics counter.  Each counter's total
#: equals the matching :class:`SuiteHealth` field at the end of a run.
_SPEC_COUNTERS = {
    "completed": "xdata_specs_completed_total",
    "unsat": "xdata_specs_skipped_unsat_total",
    "budget": "xdata_specs_skipped_budget_total",
    "error": "xdata_specs_errored_total",
    "equivalent": "xdata_specs_skipped_equivalent_total",
}


@dataclass
class SpecResult:
    """Outcome of solving one :class:`DatasetSpec` (picklable)."""

    dataset: GeneratedDataset | None
    skipped: SkippedTarget | None
    solve_time: float
    stage_times: dict[str, float] = field(default_factory=dict)
    #: Total solve attempts across the retry ladder.
    attempts: int = 1
    #: -- observability (§5e); all picklable, shipped across the pool ----
    #: Closed ``attempt`` span records collected while solving (only when
    #: observability is on), grafted under the parent's ``solve`` span.
    spans: list | None = None
    #: Search nodes expanded across every attempt.
    nodes: int = 0
    #: Attempts aborted by a node/deadline budget trip.
    limit_hits: int = 0
    #: Hot-path cache traffic (domain memo, db-constraint and
    #: declaration-snapshot caches) as counter deltas.
    cache_counts: dict = field(default_factory=dict)
    #: ``time.time()`` stamp when a pool worker picked the spec up (0.0
    #: for in-process solves); with ``BatchOutcome.submitted_at`` this
    #: yields the pool queue wait.
    started_at: float = 0.0


@dataclass
class SuiteHealth:
    """Failure-semantics summary of one suite (DESIGN.md §5d).

    ``completed + skipped_equivalent + skipped_unsat + skipped_budget +
    errored`` covers every derived target; ``degraded_targets`` names
    the budget/error ones so callers can triage without scanning the
    skip list.
    """

    #: Targets that produced a dataset.
    completed: int = 0
    #: Targets proven equivalent without solving (structural proofs).
    skipped_equivalent: int = 0
    #: Targets whose constraints the solver proved UNSAT (equivalent).
    skipped_unsat: int = 0
    #: Targets abandoned after exhausting node/deadline budgets.
    skipped_budget: int = 0
    #: Targets abandoned after an unexpected exception was isolated.
    errored: int = 0
    #: Datasets that needed more than one solve attempt (ladder fired).
    retried: int = 0
    #: True when the process-pool fan-out fell back to sequential
    #: solving (worker crash, timeout, or pool creation failure).
    pool_degraded: bool = False
    #: Wall-clock seconds by outcome category ("completed", "unsat",
    #: "budget", "error").
    time_by_reason: dict[str, float] = field(default_factory=dict)
    #: ``target`` strings of the budget/error skips, in spec order.
    degraded_targets: list[str] = field(default_factory=list)
    #: Subplan-cache traffic of the suite's kill check (DESIGN.md §5g),
    #: filled by :func:`repro.api.evaluate` / the CLI from
    #: ``KillReport.cache_stats``; empty when no cached kill check ran.
    subplan_cache: dict = field(default_factory=dict)
    #: Compiled-query-skeleton traffic of the suite's delta solves
    #: (DESIGN.md §5j): hits/misses of the per-shape skeleton cache and
    #: of the shared-formula rewrite cache.  Empty when delta solving
    #: was off (or never engaged, e.g. input-database runs).
    skeleton_cache: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when nothing failed (equivalences are not failures)."""
        return (
            not self.skipped_budget
            and not self.errored
            and not self.pool_degraded
        )

    def summary(self) -> str:
        parts = [
            f"completed={self.completed}",
            f"equivalent={self.skipped_equivalent + self.skipped_unsat}",
        ]
        if self.skipped_budget:
            parts.append(f"budget={self.skipped_budget}")
        if self.errored:
            parts.append(f"errored={self.errored}")
        if self.retried:
            parts.append(f"retried={self.retried}")
        if self.pool_degraded:
            parts.append("pool-degraded")
        text = "health: " + " ".join(parts)
        if self.degraded_targets:
            text += "\n  degraded: " + ", ".join(self.degraded_targets)
        if self.subplan_cache:
            stats = self.subplan_cache
            text += (
                f"\n  subplan cache: {stats.get('hit_rate', 0.0):.0%} hit rate "
                f"({stats.get('hits', 0)} hits / {stats.get('misses', 0)} misses)"
            )
        if self.skeleton_cache:
            stats = self.skeleton_cache
            text += (
                f"\n  skeleton cache: {stats.get('hit_rate', 0.0):.0%} hit rate "
                f"({stats.get('hits', 0)} hits / {stats.get('misses', 0)} misses, "
                f"{stats.get('rewrite_hits', 0)} rewrite hits)"
            )
        return text


@dataclass
class TestSuite:
    """The full result of Algorithm 1 for one query."""

    sql: str
    analyzed: AnalyzedQuery
    datasets: list[GeneratedDataset]
    skipped: list[SkippedTarget]
    elapsed: float
    solve_time: float
    #: A1-A8 audit findings (see repro.core.assumptions); non-empty means
    #: the completeness guarantee may not cover this query.
    warnings: list = field(default_factory=list)
    #: Wall-clock per pipeline stage, keyed by :data:`STAGES`:
    #: analyze (parse + analysis + spec derivation), build (constraint
    #: construction), preprocess / search (solver-internal split), and
    #: assemble (model -> Database).  Stages running in worker processes
    #: report their in-worker time.
    stage_times: dict[str, float] = field(default_factory=dict)
    #: Failure-semantics summary: what completed, what degraded and why.
    health: SuiteHealth = field(default_factory=SuiteHealth)
    #: Root span records of the run's trace (:attr:`GenConfig.trace`),
    #: else ``None``.  Render with :func:`repro.testing.report.format_trace`.
    trace: list | None = None
    #: Metrics snapshot (:attr:`GenConfig.metrics`), else ``None``.
    #: Render with :func:`repro.obs.render_text` / ``render_json``.
    metrics: dict | None = None

    @property
    def databases(self) -> list[Database]:
        return [d.db for d in self.datasets]

    def count(self, group: str | None = None) -> int:
        if group is None:
            return len(self.datasets)
        return sum(1 for d in self.datasets if d.group == group)

    def non_original_count(self) -> int:
        """Dataset count excluding the original-query dataset.

        This matches Table I/II's "#Datasets Generated" convention, which
        "does not include the dataset generated to satisfy the original
        query".
        """
        return sum(1 for d in self.datasets if d.group != "original")

    def pretty(self) -> str:
        # Health formatting lives in SuiteHealth.summary() alone; the old
        # inline line also miscounted (it called every skip "equivalent",
        # budget/error skips included) and never adjusted its plural.
        datasets = len(self.datasets)
        skips = len(self.skipped)
        blocks = [
            f"Test suite for: {self.sql}",
            f"  {datasets} dataset{'' if datasets == 1 else 's'}, "
            f"{skips} mutation group{'' if skips == 1 else 's'} skipped\n"
            f"  {self.health.summary()}",
        ]
        for dataset in self.datasets:
            blocks.append(dataset.pretty())
        return "\n\n".join(blocks)


def _original_spec(aq: AnalyzedQuery) -> DatasetSpec:
    copies = 1
    if aq.having:
        from repro.core.kill_having import MAX_COPIES
        from repro.engine.values import sql_compare

        # Pick a tuple-set count satisfying every COUNT-style conjunct.
        # COUNT op constant needs up to MAX_COPIES + 1 copies (e.g.
        # COUNT > MAX_COPIES is first true at MAX_COPIES + 1).
        for candidate in range(1, MAX_COPIES + 2):
            if all(
                h.agg.func != "COUNT"
                or sql_compare(h.op, candidate, h.constant) is True
                for h in aq.having
            ):
                copies = candidate
                break

    def build(space: ProblemSpace) -> list[Formula]:
        # Reads space.copies (== spec.copies normally) rather than the
        # captured count, so the copies=1 degradation rung can replay
        # this build over a smaller space.
        conds: list[Formula] = []
        for copy in range(space.copies):
            for ec in space.aq.eq_classes:
                conds.extend(space.eq_class_conditions(ec, copy=copy))
            for info in space.aq.selections + space.aq.other_joins:
                conds.append(space.pred_formula(info.pred, copy=copy))
        if space.aq.having:
            from repro.core.kill_having import satisfy_all
            from repro.solver import builders

            for attr in space.aq.group_by:
                for copy in range(space.copies - 1):
                    conds.append(
                        builders.eq(
                            space.attr_var(attr, copy),
                            space.attr_var(attr, copy + 1),
                        )
                    )
            forced = satisfy_all(space, space.copies)
            if forced is not None:
                conds.extend(forced)
        return conds

    return DatasetSpec(
        group="original",
        target="original-query",
        purpose="non-empty result for the original query",
        build=build,
        copies=copies,
    )


#: Parsed-AST cache keyed by query text (hot-path mode only).  The AST is
#: immutable — every node in :mod:`repro.sql.ast` is a frozen dataclass and
#: neither analysis nor decorrelation mutates one — so a single parse can
#: serve every generator and schema variant that sees the same SQL text.
_PARSE_CACHE: dict[str, Query] = {}


#: Process-level compiled-skeleton store (DESIGN.md §5j), keyed by the
#: request fingerprint (canonical schema + query + config — the suite
#: cache's content address, under which generation is byte-identical)
#: plus the tuple-space shape signature.  The per-run skeleton cache
#: amortises compiles across the sibling groups of one ``generate()``
#: call; this store amortises them across calls — re-running the same
#: query (benchmark rounds, campaign re-visits, service sessions)
#: re-uses the compiled shared system and its warm rewrite cache
#: instead of recompiling per run.  Per process: pool workers each
#: grow their own store; skeletons are never pickled.
_SKELETON_STORE: dict[tuple, object] = {}
_SKELETON_STORE_CAP = 512

#: Process-level declaration-snapshot store, same keying and contract
#: as :data:`_SKELETON_STORE`: (request fingerprint, shape key) ->
#: :class:`~repro.core.tuplespace.SpaceSnapshot`.  Snapshots are
#: already replayed copy-on-write across the sibling specs of one run;
#: the store replays them across runs of the same request.
_DECL_STORE: dict[tuple, object] = {}


def clear_process_stores() -> None:
    """Drop every process-level compiled skeleton and declaration
    snapshot (tests, memory pressure)."""
    _SKELETON_STORE.clear()
    _DECL_STORE.clear()


def _store_put(store: dict, key: tuple, value) -> None:
    """Insert with FIFO eviction at the shared cap.  The stores exist
    for repeat-request workloads; any eviction only costs a recompile
    or re-declaration on the next visit."""
    if len(store) >= _SKELETON_STORE_CAP:
        del store[next(iter(store))]
    store[key] = value


def _request_fingerprint(schema: Schema, query_sql: str, config) -> str:
    """Content address of one generation request.

    ``query_sql`` must be the *exact* rendered SQL of the analyzed
    query, not its :func:`~repro.service.fingerprint.canonical_query`
    form: alias renamings produce identical datasets (so the service
    suite cache may merge them) but different slot *names*, and the
    skeleton/declaration stores hold slot-name-addressed state.  The
    schema render is memoized on the (construction-validated, never
    mutated) schema instance, leaving only the config render per call.
    """
    from repro.service.fingerprint import (
        canonical_config,
        canonical_schema,
        fingerprint_parts,
    )

    canon_schema = getattr(schema, "_canon_memo", None)
    if canon_schema is None:
        canon_schema = canonical_schema(schema)
        schema._canon_memo = canon_schema
    return fingerprint_parts(
        canon_schema, query_sql, canonical_config(config)
    )


def _fault_hooks_enabled() -> bool:
    """Cheap per-attempt gate for the test-only fault-injection hook.

    Mirrors :mod:`repro.testing.faults` (FAULTS_ENV / LOG_ENV) without
    importing it — the hook must cost two dict lookups when idle.
    """
    return bool(
        os.environ.get("XDATA_FAULTS") or os.environ.get("XDATA_FAULTS_LOG")
    )


def _bump(counts: dict | None, key: str, amount: int = 1) -> None:
    """Add to a cache counter, when a counts dict is threaded in."""
    if counts is not None:
        counts[key] = counts.get(key, 0) + amount


def _parse_cached(query: str) -> Query:
    parsed = _PARSE_CACHE.get(query)
    if parsed is None:
        if len(_PARSE_CACHE) >= 256:
            _PARSE_CACHE.clear()
        parsed = _PARSE_CACHE[query] = parse_query(query)
    return parsed


class XDataGenerator:
    """Generates complete mutant-killing test suites for SQL queries."""

    def __init__(self, schema: Schema, config: GenConfig | None = None):
        self.schema = schema
        self.config = config or GenConfig()

    # -- public API ---------------------------------------------------------

    def generate(self, query: str | Query) -> TestSuite:
        """Run Algorithm 1 for ``query`` and return the test suite.

        Queries with EXISTS / IN (SELECT ...) predicates are decorrelated
        into joins first (Section V-H) when that is multiplicity-safe.

        With observability on (:attr:`GenConfig.trace` / ``metrics`` /
        ``journal_path``, see DESIGN.md §5e) the suite also carries the
        span tree and the metrics snapshot, and every span close is
        journalled as it happens — a run killed mid-flight still leaves
        its events on disk.
        """
        config = self.config
        journal = None
        metrics = None
        tracer = NULL_TRACER
        if config.observability_on:
            if config.journal_path is not None:
                # Imported lazily so `python -m repro.obs.journal` can
                # run the validator without runpy's re-execution warning.
                from repro.obs import JournalWriter

                journal = JournalWriter(config.journal_path)
                journal.run_start(query if isinstance(query, str) else None)
            tracer = Tracer(
                sink=journal.span_sink if journal is not None else None
            )
            if config.metrics:
                metrics = Metrics()
        try:
            suite = self._generate(query, tracer, metrics)
        except BaseException as exc:
            if journal is not None:
                journal.run_abort(exc)
                journal.close()
            raise
        if config.trace:
            suite.trace = tracer.roots
        if metrics is not None:
            suite.metrics = metrics.snapshot()
        if journal is not None:
            journal.run_end(
                suite.elapsed, suite.health.ok,
                dataclasses.asdict(suite.health), suite.metrics,
            )
            journal.close()
        return suite

    def _generate(
        self, query: str | Query, tracer: Tracer, metrics: Metrics | None
    ) -> TestSuite:
        start = time.perf_counter()
        config = self.config
        with tracer.span("generate") as root:
            with tracer.span("parse") as record:
                if isinstance(query, str):
                    if config.hot_path_caching:
                        if metrics is not None:
                            metrics.inc(
                                "xdata_cache_parse_hits"
                                if query in _PARSE_CACHE
                                else "xdata_cache_parse_misses"
                            )
                        parsed = _parse_cached(query)
                    else:
                        parsed = parse_query(query)
                else:
                    parsed = query
                if parsed.has_subquery_predicates:
                    from repro.core.decorrelate import decorrelate

                    parsed = decorrelate(parsed, self.schema)
                    record["attrs"]["decorrelated"] = True
            with tracer.span("analyze"):
                aq = analyze_query(parsed, self.schema)
            with tracer.span("derive_specs") as record:
                specs, skipped = self._derive_specs(aq)
                record["attrs"]["specs"] = len(specs)
                record["attrs"]["structural_skips"] = len(skipped)
            analyze_time = time.perf_counter() - start
            sql = query if isinstance(query, str) else str(parsed)

            suite_deadline = (
                start + config.suite_deadline_s
                if config.suite_deadline_s is not None
                else None
            )
            results: list[SpecResult]
            pool_degraded = False
            use_pool = False
            if config.workers > 1 and len(specs) > 1:
                from repro.core.parallel import effective_workers

                use_pool = effective_workers(config.workers, len(specs)) > 1
            if use_pool:
                from repro.core.parallel import solve_specs_parallel

                pool_deadline = suite_deadline
                if config.pool_deadline_s is not None:
                    stamp = time.perf_counter() + config.pool_deadline_s
                    pool_deadline = (
                        stamp if pool_deadline is None
                        else min(pool_deadline, stamp)
                    )
                outcome = solve_specs_parallel(
                    self.schema, sql, config, len(specs),
                    deadline=pool_deadline,
                )
                pool_degraded = outcome.degraded
                if metrics is not None:
                    metrics.gauge(
                        "xdata_pool_workers",
                        effective_workers(config.workers, len(specs)),
                    )
                    metrics.gauge("xdata_pool_degraded", int(outcome.degraded))
                    resumed = set(outcome.resumed)
                    for index, result in enumerate(outcome.results):
                        if (
                            result is not None
                            and index not in resumed
                            and outcome.submitted_at
                            and result.started_at
                        ):
                            metrics.observe(
                                "xdata_pool_queue_wait_seconds",
                                max(
                                    0.0,
                                    result.started_at - outcome.submitted_at,
                                ),
                            )
                results = [
                    result
                    if result is not None
                    else SpecResult(
                        None,
                        SkippedTarget(
                            spec.group, spec.target, "budget",
                            detail="suite budget exhausted before the spec "
                            "was solved",
                        ),
                        0.0,
                        attempts=0,
                    )
                    for spec, result in zip(specs, outcome.results)
                ]
            else:
                caches: dict = {}
                if (
                    config.solver.delta_solve
                    and config.unfold
                    and config.hot_path_caching
                ):
                    # Content address of this request.  Scopes the
                    # process-level skeleton store: same scope ==
                    # identical (schema, analyzed query text, config) ==
                    # identical slot declarations and shared constraint
                    # systems, so cross-run reuse is sound by
                    # construction.  The exact post-analysis render is
                    # deliberate — see _request_fingerprint.
                    from repro.sql.printer import to_sql

                    caches["skeleton_scope"] = _request_fingerprint(
                        self.schema, to_sql(parsed), config
                    )
                results = []
                for index, spec in enumerate(specs):
                    if (
                        suite_deadline is not None
                        and time.perf_counter() > suite_deadline
                    ):
                        results.append(
                            SpecResult(
                                None,
                                SkippedTarget(
                                    spec.group, spec.target, "budget",
                                    detail="suite deadline exceeded",
                                ),
                                0.0,
                                attempts=0,
                            )
                        )
                        continue
                    results.append(
                        self._run_spec(
                            aq, spec, caches, spec_index=index,
                            suite_deadline=suite_deadline,
                        )
                    )

            datasets: list[GeneratedDataset] = []
            solve_time = 0.0
            stage_times = {name: 0.0 for name in STAGES}
            stage_times["analyze"] = analyze_time
            health = SuiteHealth(pool_degraded=pool_degraded)
            health.skipped_equivalent = len(skipped)
            if metrics is not None and skipped:
                # Structural equivalence proofs never reach the solver;
                # count them here so spec counters reconcile with health.
                metrics.inc(
                    "xdata_specs_skipped_equivalent_total", len(skipped)
                )
            time_by = health.time_by_reason
            skeleton_counts = {
                "hits": 0, "misses": 0,
                "rewrite_hits": 0, "rewrite_misses": 0,
            }
            for index, result in enumerate(results):
                spec = specs[index]
                fail_fast_message = None
                solve_time += result.solve_time
                for key in skeleton_counts:
                    skeleton_counts[key] += result.cache_counts.get(
                        f"skeleton_{key}", 0
                    )
                for name, spent in result.stage_times.items():
                    stage_times[name] = stage_times.get(name, 0.0) + spent
                if result.dataset is not None:
                    status = "completed"
                    category = "completed"
                    span_elapsed = result.solve_time
                    datasets.append(result.dataset)
                    health.completed += 1
                    if result.attempts > 1:
                        health.retried += 1
                    time_by["completed"] = (
                        time_by.get("completed", 0.0) + result.solve_time
                    )
                else:
                    skip = result.skipped
                    if skip is None:
                        continue
                    skipped.append(skip)
                    span_elapsed = skip.elapsed
                    if skip.reason == "budget":
                        health.skipped_budget += 1
                        category = "budget"
                    elif skip.reason.startswith("error:"):
                        health.errored += 1
                        category = "error"
                    elif skip.reason == "unsat":
                        health.skipped_unsat += 1
                        category = "unsat"
                    else:
                        health.skipped_equivalent += 1
                        category = "equivalent"
                    # A budget skip that never got an attempt means the
                    # suite/pool deadline killed the spec outright.
                    status = (
                        "killed-by-deadline"
                        if category == "budget" and result.attempts == 0
                        else f"skipped:{skip.reason}"
                    )
                    time_by[category] = (
                        time_by.get(category, 0.0) + skip.elapsed
                    )
                    if skip.is_degraded:
                        health.degraded_targets.append(skip.target)
                        if config.fail_fast:
                            fail_fast_message = (
                                f"fail-fast: {skip.target} degraded "
                                f"({skip.reason}"
                                + (f": {skip.detail}" if skip.detail else "")
                                + ")"
                            )
                if tracer.enabled:
                    tracer.add_record({
                        "name": "solve",
                        "start_s": 0.0,
                        "elapsed_s": round(span_elapsed, 6),
                        "status": status,
                        "attrs": {
                            "spec": index,
                            "group": spec.group,
                            "target": spec.target,
                            "attempts": result.attempts,
                            "nodes": result.nodes,
                            "limit_hits": result.limit_hits,
                            "cache": result.cache_counts,
                        },
                        "children": list(result.spans or ()),
                    })
                if metrics is not None:
                    metrics.inc("xdata_specs_total")
                    metrics.inc(_SPEC_COUNTERS[category])
                    metrics.inc("xdata_solver_nodes_total", result.nodes)
                    metrics.inc("xdata_limit_hits_total", result.limit_hits)
                    metrics.inc_all(result.cache_counts, prefix="xdata_cache_")
                    metrics.observe(
                        "xdata_solve_latency_seconds", result.solve_time
                    )
                    metrics.observe("xdata_retry_ladder_depth", result.attempts)
                if fail_fast_message is not None:
                    # Raised only after the spec's span/metrics landed, so
                    # the journal still accounts for the fatal spec.
                    raise GenerationError(fail_fast_message)
            lookups = skeleton_counts["hits"] + skeleton_counts["misses"]
            if lookups:
                health.skeleton_cache = dict(
                    skeleton_counts,
                    hit_rate=skeleton_counts["hits"] / lookups,
                )
                if metrics is not None:
                    for key, value in skeleton_counts.items():
                        metrics.inc(
                            f"xdata_skeleton_cache_{key}_total", value
                        )
            elapsed = time.perf_counter() - start
            with tracer.span("assemble") as record:
                from repro.core.assumptions import check_assumptions

                suite = TestSuite(
                    sql, aq, datasets, skipped, elapsed, solve_time,
                    warnings=check_assumptions(aq),
                    stage_times=stage_times,
                    health=health,
                )
                record["attrs"]["datasets"] = len(datasets)
                record["attrs"]["skipped"] = len(skipped)
            root["attrs"]["specs"] = len(specs)
            root["attrs"]["datasets"] = len(datasets)
            root["attrs"]["degraded"] = len(health.degraded_targets)
        return suite

    def _derive_specs(
        self, aq: AnalyzedQuery
    ) -> tuple[list[DatasetSpec], list[SkippedTarget]]:
        """Enumerate every dataset spec for ``aq``, in canonical order.

        The order is deterministic for a given (query, schema, config):
        worker processes rely on this to re-derive a spec from its index
        alone (specs hold closures, which do not pickle).
        """
        aq.pools.cache_enabled = self.config.hot_path_caching
        specs: list[DatasetSpec] = [_original_spec(aq)]
        skipped: list[SkippedTarget] = []

        ec_specs, ec_skipped = kill_eqclass.specs(
            aq,
            merged_ecs=self.config.use_equivalence_classes,
            groupby_distinct=self.config.use_groupby_distinctness,
        )
        specs.extend(ec_specs)
        skipped.extend(ec_skipped)

        pred_specs, pred_skipped = kill_predicates.specs(
            aq, groupby_distinct=self.config.use_groupby_distinctness
        )
        specs.extend(pred_specs)
        skipped.extend(pred_skipped)

        if self.config.include_comparisons:
            cmp_specs, cmp_skipped = kill_comparison.specs(aq)
            specs.extend(cmp_specs)
            skipped.extend(cmp_skipped)

        if self.config.include_aggregates:
            agg_specs, agg_skipped = kill_aggregates.specs(aq)
            specs.extend(agg_specs)
            skipped.extend(agg_skipped)

        if self.config.include_join_condition_datasets:
            from repro.core import kill_joincond

            jc_specs, jc_skipped = kill_joincond.specs(aq)
            specs.extend(jc_specs)
            skipped.extend(jc_skipped)

        if aq.having:
            from repro.core import kill_having

            hav_specs, hav_skipped = kill_having.specs(aq)
            specs.extend(hav_specs)
            skipped.extend(hav_skipped)

        if aq.null_tests:
            from repro.core import kill_nulltest

            null_specs, null_skipped = kill_nulltest.specs(aq)
            specs.extend(null_specs)
            skipped.extend(null_skipped)

        return specs, skipped

    # -- internals --------------------------------------------------------------

    def _attempt_config(
        self, node_scale: int, remaining_s: float | None
    ) -> SearchConfig:
        """The search config for one ladder attempt.

        Scales the node budget (escalation rungs) and clamps the solver
        deadline to the time left in the spec/suite budget.
        """
        base = self.config.solver
        deadline = base.solve_deadline_s
        if remaining_s is not None:
            deadline = (
                remaining_s if deadline is None else min(deadline, remaining_s)
            )
        if node_scale == 1 and deadline == base.solve_deadline_s:
            return base
        return dataclasses.replace(
            base, node_limit=base.node_limit * node_scale,
            solve_deadline_s=deadline,
        )

    def _db_constraints_for(
        self, space: ProblemSpace, db_cache: dict,
        counts: dict | None = None,
    ):
        """Database constraints, cached per tuple-space signature.

        The pk/fk formula set depends only on the slot counts per table
        and the forced-null triples — attempts, input-option retries and
        sibling specs with the same signature produce structurally
        identical formulas over the same variable names, so one list is
        built and shared.  Shared formulas also amortise their
        ``unfold_formula`` / ``formula_variables`` memos across solves.

        ``counts`` (observability, §5e) receives hit/miss deltas under
        the ``db_constraints_*`` keys.
        """
        if not self.config.hot_path_caching:
            return db_constraints(space)
        signature = (
            space.copies,
            tuple(sorted(space.sizes.items())),
            frozenset(space.forced_nulls),
        )
        cached = db_cache.get(signature)
        if cached is None:
            _bump(counts, "db_constraints_misses")
            cached = db_constraints(space)
            db_cache[signature] = cached
        else:
            _bump(counts, "db_constraints_hits")
        return cached

    def _skeleton_for(
        self, space: ProblemSpace, spec: DatasetSpec, shared_formulas,
        skel_cache: dict, counts: dict | None = None,
        scope: str | None = None,
    ):
        """Compiled query skeleton for ``spec``'s shape, cached per run.

        The key (:meth:`DatasetSpec.skeleton_signature`) captures
        everything the shared system depends on: copies + support
        columns determine the declared-variable set *and its insertion
        order* (which drives the member scans and thus domain
        ordering), and the forced-null triples select which FK
        constraints exist.  ``shared_formulas`` is a zero-argument
        callable producing the exact formula list a full compile would
        assert after the delta — called only on a miss, so cache hits
        never build the shared system at all.  Returns
        ``(skeleton, "hit" | "miss")``.

        With ``scope`` set (the request fingerprint) a run-level miss
        falls through to the process-level :data:`_SKELETON_STORE`, so
        repeat runs of the same request skip the compile entirely.
        """
        key = spec.skeleton_signature(
            space, self.config.use_fk_support_slots
        )
        skeleton = skel_cache.get(key)
        if skeleton is not None:
            _bump(counts, "skeleton_hits")
            return skeleton, "hit"
        if scope is not None:
            store_key = (scope, key)
            skeleton = _SKELETON_STORE.get(store_key)
            if skeleton is not None:
                _bump(counts, "skeleton_hits")
                skel_cache[key] = skeleton
                return skeleton, "hit"
        _bump(counts, "skeleton_misses")
        skeleton = compile_skeleton(
            shared_formulas(), space.solver._infos, space.solver.config
        )
        skel_cache[key] = skeleton
        if scope is not None:
            _store_put(_SKELETON_STORE, (scope, key), skeleton)
        return skeleton, "miss"

    def _declared_space(
        self,
        aq: AnalyzedQuery,
        spec: DatasetSpec,
        decl_cache: dict,
        search_config: SearchConfig | None = None,
        counts: dict | None = None,
        scope: str | None = None,
    ) -> ProblemSpace:
        """A fresh, fully-declared problem space for ``spec``.

        The declared state depends only on (query, copies, support-column
        sequence); with hot-path caching on, it is built once per shape
        and replayed from a snapshot for every sibling attempt and spec.
        Support columns vary per spec, so the per-``copies`` base
        declaration (occurrence slots only) is snapshotted separately and
        spec-specific support slots are declared incrementally on top —
        declaration order (occurrence slots first, then support slots)
        matches a from-scratch build, so interned codes are identical.

        ``scope`` (the request fingerprint, set on the delta-solve
        path) additionally keys the snapshots into the process-level
        :data:`_DECL_STORE`, so repeat runs replay them instead of
        re-declaring.
        """
        search_config = search_config or self.config.solver
        support = (
            tuple(spec.support_columns)
            if self.config.use_fk_support_slots
            else ()
        )
        if not self.config.hot_path_caching:
            solver = Solver(search_config)
            space = ProblemSpace(aq, solver, copies=spec.copies)
            for table, column in support:
                add_fk_support_slots(space, table, column)
            space.finalize_declarations()
            return space
        key = (spec.copies, support)
        snap = decl_cache.get(key)
        if snap is None and scope is not None:
            snap = _DECL_STORE.get((scope, key))
            if snap is not None:
                decl_cache[key] = snap
        if snap is not None:
            _bump(counts, "declaration_hits")
            return ProblemSpace.restore(aq, snap, search_config)
        _bump(counts, "declaration_misses")
        base_key = (spec.copies, ())
        base = decl_cache.get(base_key)
        if base is None and scope is not None:
            base = _DECL_STORE.get((scope, base_key))
            if base is not None:
                decl_cache[base_key] = base
        if base is None:
            solver = Solver(search_config)
            # Sibling base builds (other ``copies`` shapes) declare the
            # same schema-wide value set in the same first-occurrence
            # order, so they replay the first base's warm symbol table
            # (and its frozen universes) instead of re-interning it.
            warm = decl_cache.get("__warm_symbols__")
            if warm is not None:
                solver.symbols = warm.copy()
                solver.warm_declarations = True
            space = ProblemSpace(aq, solver, copies=spec.copies)
            space.finalize_declarations()
            base = space.snapshot()
            decl_cache[base_key] = base
            if scope is not None:
                _store_put(_DECL_STORE, (scope, base_key), base)
            if warm is None:
                decl_cache["__warm_symbols__"] = base.symbols
        space = ProblemSpace.restore(aq, base, search_config)
        if support:
            for table, column in support:
                add_fk_support_slots(space, table, column)
            space.finalize_declarations()
            snap = space.snapshot()
            decl_cache[key] = snap
            if scope is not None:
                _store_put(_DECL_STORE, (scope, key), snap)
        return space

    def _run_spec(
        self,
        aq: AnalyzedQuery,
        spec: DatasetSpec,
        caches: dict | None = None,
        spec_index: int | None = None,
        suite_deadline: float | None = None,
    ) -> SpecResult:
        """Solve one spec through the retry ladder (DESIGN.md §5d).

        No failure escapes unless ``fail_fast`` is set: budget overruns
        and unexpected exceptions become :class:`SkippedTarget` reasons
        ``"budget"`` / ``"error:<Type>"``, distinct from ``"unsat"``.
        The ladder: primary build → primary with escalated node budgets
        (only after a budget trip — UNSAT is definitive) → the spec's
        relaxations → a best-effort ``copies=1`` degradation (failures
        only, never after a clean UNSAT).
        """
        if caches is None:
            caches = {}
        db_cache = caches.setdefault("db", {})
        decl_cache = caches.setdefault("decl", {})
        # Compiled query skeletons (§5j).  Rides the same per-run cache
        # dict, so pooled runs get one per worker (skeletons hold live
        # formula objects and are never pickled across the pool).
        skel_cache = caches.setdefault("skeleton", {})
        skel_scope = caches.get("skeleton_scope")
        config = self.config
        started = time.perf_counter()
        deadline = (
            started + config.spec_deadline_s
            if config.spec_deadline_s is not None
            else None
        )
        if suite_deadline is not None:
            deadline = (
                suite_deadline if deadline is None
                else min(deadline, suite_deadline)
            )

        solve_time = 0.0
        stage = {"build": 0.0, "preprocess": 0.0, "search": 0.0, "assemble": 0.0}
        attempts = 0
        budget_trips = 0
        budget_detail = ""
        first_error: tuple[str, str] | None = None
        inject = spec_index is not None and _fault_hooks_enabled()
        # Observability (§5e): attempt spans are collected on a local
        # tracer — this method also runs inside pool workers, so the
        # records travel back with the (picklable) SpecResult and the
        # parent grafts them under its own solve span.
        local = Tracer() if config.observability_on else NULL_TRACER
        nodes_total = 0
        limit_hits = 0
        counts: dict[str, int] = {}

        def tally(space) -> SolveStats | None:
            nonlocal solve_time, nodes_total, limit_hits
            stats = space.solver.last_stats if space is not None else None
            if stats is None:
                return None
            solve_time += stats.elapsed
            stage["preprocess"] += stats.preprocess_time
            stage["search"] += stats.search_time
            nodes_total += stats.nodes
            counts["domain_hits"] = (
                counts.get("domain_hits", 0) + stats.cache_hits
            )
            counts["domain_misses"] = (
                counts.get("domain_misses", 0) + stats.cache_misses
            )
            if stats.limit_hit:
                limit_hits += 1
            return stats

        def spec_result(dataset: GeneratedDataset | None,
                        skip: SkippedTarget | None) -> SpecResult:
            return SpecResult(
                dataset,
                skip,
                solve_time,
                stage,
                attempts=attempts,
                spans=local.roots or None,
                nodes=nodes_total,
                limit_hits=limit_hits,
                cache_counts=counts,
            )

        def attempt(rung_spec, build, note, node_scale):
            """One build through the input options.

            Returns a :class:`SpecResult` on SAT, else the rung outcome
            code: ``'unsat'`` | ``'budget'`` | ``'error'``.
            """
            nonlocal attempts, budget_trips, budget_detail, first_error
            outcome = "unsat"
            for use_input in self._input_options():
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        budget_trips += 1
                        budget_detail = budget_detail or "deadline exhausted"
                        return "budget"
                attempts += 1
                with local.span(
                    "attempt",
                    rung=note if note else "primary",
                    node_scale=node_scale,
                    input_db=use_input,
                ) as arec:
                    space = None
                    try:
                        build_start = time.perf_counter()
                        space = self._declared_space(
                            aq, rung_spec, decl_cache,
                            self._attempt_config(node_scale, remaining),
                            counts=counts, scope=skel_scope,
                        )
                        solver = space.solver
                        # Delta solving (§5j) needs the shared system
                        # asserted strictly after the delta (prefix
                        # property) and owned by the skeleton; input
                        # constraints break that layout, so such
                        # attempts take the full-compile path.
                        use_delta = (
                            solver.config.delta_solve
                            and config.unfold
                            and config.hot_path_caching
                            and not use_input
                        )
                        solver.add_all(build(space))
                        self._apply_null_tests(aq, space, rung_spec)

                        # Built lazily: a warm skeleton hit (§5j)
                        # solves without ever materialising the shared
                        # formula list — the compiled skeleton already
                        # holds its preprocessed form.
                        shared: list | None = None

                        def shared_formulas() -> list:
                            nonlocal shared
                            if shared is None:
                                shared = self._db_constraints_for(
                                    space, db_cache, counts
                                )
                            return shared

                        skeleton = None
                        skel_status = None
                        if not use_delta:
                            solver.add_all(shared_formulas())
                        if use_input:
                            solver.add_all(
                                input_constraints(
                                    space, config.input_db, config.input_mode
                                )
                            )
                        build_elapsed = time.perf_counter() - build_start
                        stage["build"] += build_elapsed
                        if use_delta:
                            # Compiled outside the build window: the
                            # skeleton's unfold/normalize/union-find
                            # pass is preprocessing, attributed below.
                            skeleton, skel_status = self._skeleton_for(
                                space, rung_spec, shared_formulas,
                                skel_cache, counts, scope=skel_scope,
                            )
                        if inject:
                            from repro.testing import faults

                            faults.fire(spec_index)
                        rewrites = (
                            (skeleton.rewrite_hits, skeleton.rewrite_misses)
                            if skeleton is not None
                            else (0, 0)
                        )
                        try:
                            model = solver.solve(
                                unfold=config.unfold, base=skeleton
                            )
                        finally:
                            stats_obj = solver.last_stats
                            if stats_obj is not None:
                                stats_obj.build_time = build_elapsed
                                stats_obj.skeleton = skel_status
                                if skel_status == "miss":
                                    # Amortized attribution: the
                                    # compile is charged once, to the
                                    # solve that triggered it — sibling
                                    # hits report only their own time.
                                    stats_obj.preprocess_time += (
                                        skeleton.compile_time
                                    )
                                    stats_obj.elapsed += (
                                        skeleton.compile_time
                                    )
                            if skeleton is not None:
                                _bump(
                                    counts, "skeleton_rewrite_hits",
                                    skeleton.rewrite_hits - rewrites[0],
                                )
                                _bump(
                                    counts, "skeleton_rewrite_misses",
                                    skeleton.rewrite_misses - rewrites[1],
                                )
                    except SolverLimitError as exc:
                        stats = tally(space)
                        arec["status"] = "budget"
                        arec["attrs"]["nodes"] = stats.nodes if stats else 0
                        budget_trips += 1
                        budget_detail = budget_detail or str(exc)
                        outcome = "budget"
                        continue
                    except Exception as exc:  # failure isolation (§5d)
                        if config.fail_fast:
                            raise
                        stats = tally(space)
                        arec["status"] = f"error:{type(exc).__name__}"
                        arec["attrs"]["nodes"] = stats.nodes if stats else 0
                        if first_error is None:
                            first_error = (type(exc).__name__, str(exc))
                        if outcome != "budget":
                            outcome = "error"
                        continue
                    stats = tally(space)
                    arec["attrs"]["nodes"] = stats.nodes if stats else 0
                    if model is None:
                        arec["status"] = "unsat"
                        continue
                    arec["status"] = "sat"
                    assemble_start = time.perf_counter()
                    db = assemble_dataset(space, model)
                    stage["assemble"] += time.perf_counter() - assemble_start
                    trace = None
                    if config.trace_constraints:
                        from repro.solver.cvcformat import assertions

                        # Under delta solving the shared system lives in
                        # the skeleton, not the solver; render the same
                        # delta-then-shared list a full compile asserts.
                        formulas = solver.formulas
                        if skeleton is not None:
                            formulas += list(shared_formulas())
                        trace = assertions(formulas)
                    return spec_result(
                        GeneratedDataset(
                            group=spec.group,
                            target=spec.target,
                            purpose=spec.purpose,
                            db=db,
                            stats=stats,
                            relaxation=note,
                            used_input_db=use_input,
                            constraints_cvc=trace,
                            attempts=attempts,
                        ),
                        None,
                    )
            return outcome

        # Rung 1: the primary build.
        result = attempt(spec, spec.build, None, 1)
        # Rung 2: escalate the node budget while budget is what failed.
        if result == "budget":
            for step in range(1, config.retries + 1):
                result = attempt(
                    spec, spec.build, None, config.retry_node_factor ** step
                )
                if result != "budget":
                    break
        # Rung 3: the spec's relaxations (Algorithm 4's drop loop).
        if not isinstance(result, SpecResult):
            for note, build in spec.relaxations:
                result = attempt(spec, build, note, 1)
                if isinstance(result, SpecResult):
                    break
        # Rung 4: shrink to one tuple-set copy.  Failure recovery only:
        # a clean UNSAT is an equivalence proof and must stand.
        if (
            not isinstance(result, SpecResult)
            and config.retry_shrink_copies
            and spec.copies > 1
            and (budget_trips or first_error is not None)
        ):
            shrunk = dataclasses.replace(spec, copies=1)
            result = attempt(shrunk, spec.build, "degraded to copies=1", 1)
        if isinstance(result, SpecResult):
            return result

        if budget_trips:
            reason, detail = "budget", budget_detail
        elif first_error is not None:
            reason = f"error:{first_error[0]}"
            detail = first_error[1]
        else:
            reason, detail = "unsat", ""
        return spec_result(
            None,
            SkippedTarget(
                spec.group, spec.target, reason, detail=detail,
                elapsed=time.perf_counter() - started, attempts=attempts,
            ),
        )

    def _apply_null_tests(self, aq, space, spec) -> None:
        """Make every IS [NOT] NULL conjunct hold (flipping any the spec
        targets): absent values are forced NULL at assembly time, present
        values need nothing (the solver always assigns one)."""
        for index, info in enumerate(aq.null_tests):
            wants_null = not info.pred.negated
            if index in spec.flip_null_tests:
                wants_null = not wants_null
            if not wants_null:
                continue
            table = aq.table_of(info.attr.binding)
            for copy in range(spec.copies):
                space.force_null(
                    table, space.slot_of(info.attr.binding, copy),
                    info.attr.column,
                )

    def _input_options(self) -> list[bool]:
        """Try with input-database constraints first, then without."""
        if self.config.input_db is None:
            return [False]
        return [True, False]
