"""Algorithm 1: the XData dataset generator.

:class:`XDataGenerator` ties the whole pipeline together::

    generateDataSet(q):
        preprocess query tree          -> repro.core.analyze
        initializeIndices()            -> repro.core.tuplespace
        generateDataSetForOriginalQuery()
        killEquivalenceClasses()       -> repro.core.kill_eqclass
        killOtherPredicates()          -> repro.core.kill_predicates
        killComparisonOperators()      -> repro.core.kill_comparison
        killAggregates()               -> repro.core.kill_aggregates

Each dataset spec is solved independently with a fresh solver; UNSAT
results are reported as skipped (equivalent) mutation groups, never as
errors.  The number of datasets is linear in query size: at most one per
equivalence-class element, one per (non-equi join predicate, relation),
three per selection conjunct, and one per aggregation operator.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core import (
    kill_aggregates,
    kill_comparison,
    kill_eqclass,
    kill_predicates,
)
from repro.core.analyze import AnalyzedQuery, analyze_query
from repro.core.assemble import assemble_dataset
from repro.core.dbconstraints import add_fk_support_slots, db_constraints
from repro.core.input_database import input_constraints
from repro.core.spec import DatasetSpec, SkippedTarget
from repro.core.tuplespace import ProblemSpace
from repro.engine.database import Database
from repro.schema.catalog import Schema
from repro.solver.search import SearchConfig
from repro.solver.solver import Solver, SolveStats
from repro.solver.terms import Formula
from repro.sql.ast import Query
from repro.sql.parser import parse_query


@dataclass
class GenConfig:
    """Generator configuration.

    Attributes:
        unfold: Unfold bounded quantifiers before solving (Section VI-B).
            Turning this off reproduces the paper's slow path.
        include_comparisons: Generate the comparison-operator datasets.
        include_aggregates: Generate the aggregation datasets.
        input_db: Optional input database (Section VI-A).
        input_mode: 'domain' or 'tuples' (see
            :mod:`repro.core.input_database`).
        solver: Search configuration forwarded to every solve call.
        trace_constraints: Attach each dataset's constraint set, rendered
            in CVC3 ASSERT syntax, to the result (debugging aid matching
            the paper's presentation).
    """

    unfold: bool = True
    include_comparisons: bool = True
    include_aggregates: bool = True
    input_db: Database | None = None
    input_mode: str = "domain"
    solver: SearchConfig = field(default_factory=SearchConfig)
    trace_constraints: bool = False
    #: Extension: anti-coincidence datasets that kill wrong-attribute
    #: join-condition mutants (repro.mutation.joincond); off by default
    #: to preserve the paper's dataset counts.
    include_join_condition_datasets: bool = False
    #: Ablation switches (each disables one of the paper's design
    #: choices; see benchmarks/bench_ablation.py for their effect):
    use_equivalence_classes: bool = True  # Section IV-B / Fig. 2
    use_fk_support_slots: bool = True  # Section V-B extra tuples
    use_groupby_distinctness: bool = True  # aggregate-masking guard


@dataclass
class GeneratedDataset:
    """One generated test dataset plus its provenance."""

    group: str
    target: str
    purpose: str
    db: Database
    stats: SolveStats
    relaxation: str | None = None
    used_input_db: bool = False
    constraints_cvc: str | None = None

    def pretty(self) -> str:
        header = f"[{self.group}] {self.purpose}"
        if self.relaxation:
            header += f" (relaxed: {self.relaxation})"
        return f"{header}\n{self.db.pretty()}"


@dataclass
class TestSuite:
    """The full result of Algorithm 1 for one query."""

    sql: str
    analyzed: AnalyzedQuery
    datasets: list[GeneratedDataset]
    skipped: list[SkippedTarget]
    elapsed: float
    solve_time: float
    #: A1-A8 audit findings (see repro.core.assumptions); non-empty means
    #: the completeness guarantee may not cover this query.
    warnings: list = field(default_factory=list)

    @property
    def databases(self) -> list[Database]:
        return [d.db for d in self.datasets]

    def count(self, group: str | None = None) -> int:
        if group is None:
            return len(self.datasets)
        return sum(1 for d in self.datasets if d.group == group)

    def non_original_count(self) -> int:
        """Dataset count excluding the original-query dataset.

        This matches Table I/II's "#Datasets Generated" convention, which
        "does not include the dataset generated to satisfy the original
        query".
        """
        return sum(1 for d in self.datasets if d.group != "original")

    def pretty(self) -> str:
        blocks = [f"Test suite for: {self.sql}",
                  f"  {len(self.datasets)} datasets, "
                  f"{len(self.skipped)} equivalent mutation groups skipped"]
        for dataset in self.datasets:
            blocks.append(dataset.pretty())
        return "\n\n".join(blocks)


def _original_spec(aq: AnalyzedQuery) -> DatasetSpec:
    copies = 1
    if aq.having:
        from repro.engine.values import sql_compare

        # Pick a tuple-set count satisfying every COUNT-style conjunct.
        for candidate in (1, 2, 3, 4, 5, 6):
            if all(
                h.agg.func != "COUNT"
                or sql_compare(h.op, candidate, h.constant) is True
                for h in aq.having
            ):
                copies = candidate
                break

    def build(space: ProblemSpace) -> list[Formula]:
        conds: list[Formula] = []
        for copy in range(copies):
            for ec in space.aq.eq_classes:
                conds.extend(space.eq_class_conditions(ec, copy=copy))
            for info in space.aq.selections + space.aq.other_joins:
                conds.append(space.pred_formula(info.pred, copy=copy))
        if space.aq.having:
            from repro.core.kill_having import satisfy_all
            from repro.solver import builders

            for attr in space.aq.group_by:
                for copy in range(copies - 1):
                    conds.append(
                        builders.eq(
                            space.attr_var(attr, copy),
                            space.attr_var(attr, copy + 1),
                        )
                    )
            forced = satisfy_all(space, copies)
            if forced is not None:
                conds.extend(forced)
        return conds

    return DatasetSpec(
        group="original",
        target="original-query",
        purpose="non-empty result for the original query",
        build=build,
        copies=copies,
    )


class XDataGenerator:
    """Generates complete mutant-killing test suites for SQL queries."""

    def __init__(self, schema: Schema, config: GenConfig | None = None):
        self.schema = schema
        self.config = config or GenConfig()

    # -- public API ---------------------------------------------------------

    def generate(self, query: str | Query) -> TestSuite:
        """Run Algorithm 1 for ``query`` and return the test suite.

        Queries with EXISTS / IN (SELECT ...) predicates are decorrelated
        into joins first (Section V-H) when that is multiplicity-safe.
        """
        start = time.perf_counter()
        parsed = parse_query(query) if isinstance(query, str) else query
        if parsed.has_subquery_predicates:
            from repro.core.decorrelate import decorrelate

            parsed = decorrelate(parsed, self.schema)
        aq = analyze_query(parsed, self.schema)
        specs: list[DatasetSpec] = [_original_spec(aq)]
        skipped: list[SkippedTarget] = []

        ec_specs, ec_skipped = kill_eqclass.specs(
            aq,
            merged_ecs=self.config.use_equivalence_classes,
            groupby_distinct=self.config.use_groupby_distinctness,
        )
        specs.extend(ec_specs)
        skipped.extend(ec_skipped)

        pred_specs, pred_skipped = kill_predicates.specs(
            aq, groupby_distinct=self.config.use_groupby_distinctness
        )
        specs.extend(pred_specs)
        skipped.extend(pred_skipped)

        if self.config.include_comparisons:
            cmp_specs, cmp_skipped = kill_comparison.specs(aq)
            specs.extend(cmp_specs)
            skipped.extend(cmp_skipped)

        if self.config.include_aggregates:
            agg_specs, agg_skipped = kill_aggregates.specs(aq)
            specs.extend(agg_specs)
            skipped.extend(agg_skipped)

        if self.config.include_join_condition_datasets:
            from repro.core import kill_joincond

            jc_specs, jc_skipped = kill_joincond.specs(aq)
            specs.extend(jc_specs)
            skipped.extend(jc_skipped)

        if aq.having:
            from repro.core import kill_having

            hav_specs, hav_skipped = kill_having.specs(aq)
            specs.extend(hav_specs)
            skipped.extend(hav_skipped)

        if aq.null_tests:
            from repro.core import kill_nulltest

            null_specs, null_skipped = kill_nulltest.specs(aq)
            specs.extend(null_specs)
            skipped.extend(null_skipped)

        datasets: list[GeneratedDataset] = []
        solve_time = 0.0
        for spec in specs:
            dataset, spec_skip, spent = self._run_spec(aq, spec)
            solve_time += spent
            if dataset is not None:
                datasets.append(dataset)
            elif spec_skip is not None:
                skipped.append(spec_skip)
        elapsed = time.perf_counter() - start
        sql = query if isinstance(query, str) else str(parsed)
        from repro.core.assumptions import check_assumptions

        return TestSuite(
            sql, aq, datasets, skipped, elapsed, solve_time,
            warnings=check_assumptions(aq),
        )

    # -- internals --------------------------------------------------------------

    def _attempts(self, spec: DatasetSpec):
        yield None, spec.build
        for note, build in spec.relaxations:
            yield note, build

    def _run_spec(
        self, aq: AnalyzedQuery, spec: DatasetSpec
    ) -> tuple[GeneratedDataset | None, SkippedTarget | None, float]:
        solve_time = 0.0
        for note, build in self._attempts(spec):
            for use_input in self._input_options():
                solver = Solver(self.config.solver)
                space = ProblemSpace(aq, solver, copies=spec.copies)
                if self.config.use_fk_support_slots:
                    for table, column in spec.support_columns:
                        add_fk_support_slots(space, table, column)
                space.finalize_declarations()
                solver.add_all(build(space))
                self._apply_null_tests(aq, space, spec)
                solver.add_all(db_constraints(space))
                if use_input:
                    solver.add_all(
                        input_constraints(
                            space, self.config.input_db, self.config.input_mode
                        )
                    )
                model = solver.solve(unfold=self.config.unfold)
                stats = solver.last_stats
                solve_time += stats.elapsed
                if model is None:
                    continue
                db = assemble_dataset(space, model)
                trace = None
                if self.config.trace_constraints:
                    from repro.solver.cvcformat import assertions

                    trace = assertions(solver.formulas)
                return (
                    GeneratedDataset(
                        group=spec.group,
                        target=spec.target,
                        purpose=spec.purpose,
                        db=db,
                        stats=stats,
                        relaxation=note,
                        used_input_db=use_input,
                        constraints_cvc=trace,
                    ),
                    None,
                    solve_time,
                )
        return None, SkippedTarget(spec.group, spec.target, "unsat"), solve_time

    def _apply_null_tests(self, aq, space, spec) -> None:
        """Make every IS [NOT] NULL conjunct hold (flipping any the spec
        targets): absent values are forced NULL at assembly time, present
        values need nothing (the solver always assigns one)."""
        for index, info in enumerate(aq.null_tests):
            wants_null = not info.pred.negated
            if index in spec.flip_null_tests:
                wants_null = not wants_null
            if not wants_null:
                continue
            table = aq.table_of(info.attr.binding)
            for copy in range(spec.copies):
                space.force_null(
                    table, space.slot_of(info.attr.binding, copy),
                    info.attr.column,
                )

    def _input_options(self) -> list[bool]:
        """Try with input-database constraints first, then without."""
        if self.config.input_db is None:
            return [False]
        return [True, False]
