"""killAggregates() — Algorithm 4.

For each aggregate ``aggop(A)`` over group-by attributes ``G``, one
dataset built from **three tuple sets** (one tuple per relation each):

* **S0** — every set satisfies all join and selection conditions, and all
  three sets share the same ``G`` values (one group, three joined rows);
* **S1** — sets 0 and 1 agree on ``A`` with a non-zero value but differ in
  at least one other attribute of ``A``'s relation (so COUNT vs
  COUNT(DISTINCT), SUM vs SUM(DISTINCT), AVG vs AVG(DISTINCT) differ);
* **S2** — set 2 differs from them on ``A`` (so MIN and MAX differ);
* **S3** — no other tuple of the group-by relations carries the group's
  ``G`` values (vacuous when the space has no extra slots);
* optional extension constraints (Section V-F's closing paragraph): all
  ``A`` values ≥ 4, which puts them on one side of zero, keeps distinct
  values from summing to zero, and separates COUNT/COUNT(DISTINCT) from
  every value-based aggregate.

Following the paper, inconsistent constraint sets are *dropped* rather
than failing the dataset: the relaxation ladder tries the full set, then
without the extension, then without S1, then without S1 and S2 (the case
where the database constraints make each group a single tuple).
"""

from __future__ import annotations

from repro.core.analyze import AnalyzedQuery
from repro.core.attrs import Attr
from repro.core.spec import DatasetSpec, SkippedTarget
from repro.core.tuplespace import ProblemSpace
from repro.solver import builders
from repro.solver.terms import Formula

_COPIES = 3


def _s0(space: ProblemSpace) -> list[Formula]:
    aq = space.aq
    conds: list[Formula] = []
    for copy in range(_COPIES):
        for ec in aq.eq_classes:
            conds.extend(space.eq_class_conditions(ec, copy=copy))
        for info in aq.selections + aq.other_joins:
            conds.append(space.pred_formula(info.pred, copy=copy))
    for attr in aq.group_by:
        for copy in range(_COPIES - 1):
            conds.append(
                builders.eq(
                    space.attr_var(attr, copy), space.attr_var(attr, copy + 1)
                )
            )
    return conds


def _s1(space: ProblemSpace, attr: Attr, numeric: bool) -> list[Formula]:
    a0 = space.attr_var(attr, 0)
    a1 = space.attr_var(attr, 1)
    conds: list[Formula] = [builders.eq(a0, a1)]
    if numeric:
        conds.append(builders.ne(a0, builders.const(0)))
    table = space.aq.table_of(attr.binding)
    slot0 = space.slot_of(attr.binding, 0)
    slot1 = space.slot_of(attr.binding, 1)
    others = [
        builders.ne(space.var(table, slot0, c), space.var(table, slot1, c))
        for c in space.aq.schema.table(table).column_names
        if c != attr.column
    ]
    if others:
        conds.append(builders.disj(others))
    return conds


def _s2(space: ProblemSpace, attr: Attr) -> list[Formula]:
    return [
        builders.ne(space.attr_var(attr, 2), space.attr_var(attr, 0)),
    ]


def _s3(space: ProblemSpace) -> list[Formula]:
    aq = space.aq
    conds: list[Formula] = []
    for attr in aq.group_by:
        table = aq.table_of(attr.binding)
        set_slots = {space.slot_of(attr.binding, k) for k in range(_COPIES)}
        value = space.attr_var(attr, 0)
        instances = [
            builders.eq(space.var(table, i, attr.column), value)
            for i in space.table_slots(table)
            if i not in set_slots
        ]
        if instances:
            conds.append(
                builders.not_exists(instances, f"s3:{table}.{attr.column}")
            )
    return conds


def _extension(space: ProblemSpace, attr: Attr) -> list[Formula]:
    return [
        builders.ge(space.attr_var(attr, k), builders.const(4))
        for k in range(_COPIES)
    ]


def specs(aq: AnalyzedQuery) -> tuple[list[DatasetSpec], list[SkippedTarget]]:
    """One Algorithm-4 dataset spec per aggregate (with relaxation ladder)."""
    out: list[DatasetSpec] = []
    skipped: list[SkippedTarget] = []
    for agg_info in aq.aggregates:
        label = str(agg_info.agg)
        if agg_info.attr is None:
            skipped.append(
                SkippedTarget(
                    "aggregate", f"agg:{label}",
                    "COUNT(*) has no aggregated attribute; outside the "
                    "mutation space",
                )
            )
            continue
        attr = agg_info.attr
        numeric = not aq.attr_type(attr).is_textual

        def make(parts):
            def build(space: ProblemSpace, parts=parts, attr=attr, numeric=numeric):
                conds: list[Formula] = []
                conds.extend(_s0(space))
                if "s1" in parts:
                    conds.extend(_s1(space, attr, numeric))
                if "s2" in parts:
                    conds.extend(_s2(space, attr))
                conds.extend(_s3(space))
                if "ext" in parts and numeric:
                    conds.extend(_extension(space, attr))
                if "hav" in parts and space.aq.having:
                    from repro.core.kill_having import satisfy_all

                    forced = satisfy_all(space, _COPIES)
                    if forced is not None:
                        conds.extend(forced)
                return conds

            return build

        ladder = [
            ("without extension constraints", make({"s1", "s2", "hav"})),
            ("without S1 (A is unique per group)", make({"s2", "hav"})),
            ("without S1 and S2 (groups are single tuples)", make({"hav"})),
            ("without HAVING satisfaction", make(set())),
        ]
        out.append(
            DatasetSpec(
                group="aggregate",
                target=f"agg:{label}",
                purpose=(
                    f"kill aggregation-operator mutants of {label}: one group "
                    f"with a duplicated non-zero value and a distinct third value"
                ),
                build=make({"s1", "s2", "ext", "hav"}),
                copies=_COPIES,
                relaxations=ladder,
            )
        )
    return out, skipped
