"""Datasets for IS [NOT] NULL mutants (the A6-lifting extension).

The mutation space of a null test is its polarity flip.  Two datasets
separate the pair: the original-query dataset (conjunct satisfied) and
one *violation* dataset per null test (conjunct inverted, everything
else satisfied).  On each, exactly one of {original, flipped mutant}
returns the witness row, so the flip is always killed.
"""

from __future__ import annotations

from repro.core.analyze import AnalyzedQuery
from repro.core.spec import DatasetSpec, SkippedTarget
from repro.core.tuplespace import ProblemSpace
from repro.solver.terms import Formula


def specs(aq: AnalyzedQuery) -> tuple[list[DatasetSpec], list[SkippedTarget]]:
    """One polarity-flipping dataset spec per IS [NOT] NULL conjunct."""
    out: list[DatasetSpec] = []
    skipped: list[SkippedTarget] = []
    for index, info in enumerate(aq.null_tests):
        target = f"nulltest:{info.pred} flip"
        flipped_wants_null = info.pred.negated  # flip of the original
        if flipped_wants_null:
            table = aq.schema.table(aq.table_of(info.attr.binding))
            if not table.column(info.attr.column).nullable:
                skipped.append(
                    SkippedTarget(
                        "nulltest", target,
                        "structurally-equivalent",
                    )
                )
                continue

        def build(space: ProblemSpace) -> list[Formula]:
            conds: list[Formula] = []
            for ec in space.aq.eq_classes:
                conds.extend(space.eq_class_conditions(ec))
            for pred_info in space.aq.selections + space.aq.other_joins:
                conds.append(space.pred_formula(pred_info.pred))
            return conds

        out.append(
            DatasetSpec(
                group="nulltest",
                target=target,
                purpose=(
                    f"kill the IS NULL polarity mutant of '{info.pred}': "
                    f"dataset where the test is violated"
                ),
                build=build,
                flip_null_tests=frozenset({index}),
            )
        )
    return out, skipped
