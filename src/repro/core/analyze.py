"""Query analysis: occurrence naming, qualification, classification.

This implements the preprocessing step of Algorithm 1:

1. every base-table occurrence gets a distinct binding;
2. every column reference is fully qualified against the catalog;
3. equi-join conjuncts are folded into *equivalence classes* of attributes
   (Section IV-B, Fig. 2) and dropped from the predicate list;
4. remaining predicates are classified as selections (single occurrence)
   or other join predicates (non-equi, or expression joins);
5. NATURAL join conditions are derived from common column names;
6. aggregation structure (GROUP BY attributes, aggregated attributes) is
   extracted and validated against the paper's query class.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.attrs import Attr, Occurrence, PoolAssigner, column_type
from repro.errors import CatalogError, UnsupportedSqlError
from repro.schema.catalog import Schema
from repro.schema.types import SqlType
from repro.sql.ast import (
    Aggregate,
    BinaryOp,
    ColumnRef,
    Comparison,
    Expr,
    FromItem,
    Join,
    JoinKind,
    Literal,
    NullTest,
    Query,
    SelectItem,
    Star,
    TableRef,
    comparison_columns,
)


@dataclass(frozen=True)
class PredInfo:
    """A classified, fully qualified predicate conjunct."""

    pred: Comparison
    bindings: frozenset[str]
    source: str  # 'where' or 'on'

    def __str__(self) -> str:
        return str(self.pred)


@dataclass
class AggInfo:
    """One aggregate in the select list."""

    agg: Aggregate
    attr: Attr | None  # None for COUNT(*)


@dataclass
class HavingInfo:
    """One HAVING conjunct, normalised to ``aggregate op constant``.

    Attributes:
        pred: The qualified conjunct as written.
        agg: The aggregate side.
        attr: The aggregated attribute (None for COUNT(*)).
        op: Comparison operator with the aggregate on the left.
        constant: The integer constant on the right.
    """

    pred: Comparison
    agg: Aggregate
    attr: Attr | None
    op: str
    constant: int


@dataclass
class NullTestInfo:
    """One IS [NOT] NULL conjunct.

    Attributes:
        pred: The qualified null test.
        attr: The tested attribute.
        position: Index of the conjunct in the query's WHERE list.
    """

    pred: "NullTest"
    attr: Attr
    position: int


@dataclass
class AnalyzedQuery:
    """The canonical representation the generator and mutator work on."""

    query: Query  # fully qualified
    schema: Schema
    occurrences: dict[str, Occurrence]
    eq_classes: list[tuple[Attr, ...]]
    selections: list[PredInfo]
    other_joins: list[PredInfo]
    group_by: list[Attr]
    aggregates: list[AggInfo]
    has_outer_joins: bool
    pools: PoolAssigner
    natural_conditions: list[Comparison] = field(default_factory=list)
    #: Raw equi-join conjuncts as attribute pairs, before transitive
    #: merging — kept for the equivalence-class ablation study.
    raw_equijoins: list[tuple[Attr, Attr]] = field(default_factory=list)
    #: Constrained-aggregation conjuncts (the HAVING extension).
    having: list[HavingInfo] = field(default_factory=list)
    #: IS [NOT] NULL conjuncts (the A6-lifting extension).
    null_tests: list[NullTestInfo] = field(default_factory=list)

    @property
    def bindings(self) -> list[str]:
        return list(self.occurrences)

    def table_of(self, binding: str) -> str:
        return self.occurrences[binding].table

    def attr_type(self, attr: Attr) -> SqlType:
        return column_type(self.schema, self.table_of(attr.binding), attr.column)

    def all_join_predicates(self) -> list[PredInfo]:
        """Equivalence classes rendered as predicates, plus other joins."""
        preds = list(self.other_joins)
        for ec in self.eq_classes:
            for first, second in zip(ec, ec[1:]):
                pred = Comparison(
                    "=",
                    ColumnRef(first.binding, first.column),
                    ColumnRef(second.binding, second.column),
                )
                preds.append(
                    PredInfo(pred, frozenset({first.binding, second.binding}), "on")
                )
        return preds


class _UnionFind:
    def __init__(self):
        self._parent: dict[Attr, Attr] = {}

    def find(self, item: Attr) -> Attr:
        parent = self._parent.setdefault(item, item)
        if parent == item:
            return item
        root = self.find(parent)
        self._parent[item] = root
        return root

    def union(self, a: Attr, b: Attr) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            if rb < ra:
                ra, rb = rb, ra
            self._parent[rb] = ra

    def classes(self) -> list[tuple[Attr, ...]]:
        groups: dict[Attr, list[Attr]] = {}
        for item in self._parent:
            groups.setdefault(self.find(item), []).append(item)
        return [tuple(sorted(members)) for _, members in sorted(groups.items())
                if len(members) > 1]


def analyze_query(query: Query, schema: Schema) -> AnalyzedQuery:
    """Run the Algorithm 1 preprocessing over a parsed query."""
    if query.has_subquery_predicates:
        raise UnsupportedSqlError(
            "subquery predicates must be decorrelated first; see "
            "repro.core.decorrelate (the generator does this automatically)"
        )
    occurrences = _collect_occurrences(query, schema)
    pools = PoolAssigner(schema)
    resolver = _Resolver(occurrences, schema)

    # Gather all predicate conjuncts, qualified.  Null tests (the
    # A6-lifting extension) are split off and validated separately.
    where_preds = []
    null_tests: list[NullTestInfo] = []
    for position, pred in enumerate(query.where):
        if isinstance(pred, NullTest):
            qualified_ref = resolver.qualify_column(pred.expr)
            qualified = NullTest(qualified_ref, pred.negated)
            null_tests.append(
                NullTestInfo(
                    qualified,
                    Attr(qualified_ref.table, qualified_ref.column),
                    position,
                )
            )
        else:
            where_preds.append(resolver.qualify_pred(pred))
    on_preds: list[Comparison] = []
    natural_conds: list[Comparison] = []
    has_outer = False
    for item in query.from_items:
        item_on, item_natural, item_outer = _collect_join_conditions(
            item, resolver, schema
        )
        on_preds.extend(item_on)
        natural_conds.extend(item_natural)
        has_outer = has_outer or item_outer

    qualified_query = _qualify_query(query, resolver)

    uf = _UnionFind()
    selections: list[PredInfo] = []
    other_joins: list[PredInfo] = []
    raw_equijoins: list[tuple[Attr, Attr]] = []
    tagged = [(p, "where") for p in where_preds] + [
        (p, "on") for p in on_preds + natural_conds
    ]
    for pred, source in tagged:
        _typecheck_comparison(pred, resolver)
        bindings = frozenset(_pred_bindings(pred))
        _link_pools(pred, resolver, pools)
        if len(bindings) <= 1:
            selections.append(PredInfo(pred, bindings, source))
            continue
        if (
            pred.op == "="
            and isinstance(pred.left, ColumnRef)
            and isinstance(pred.right, ColumnRef)
        ):
            left = Attr(pred.left.table, pred.left.column)
            right = Attr(pred.right.table, pred.right.column)
            uf.union(left, right)
            raw_equijoins.append(tuple(sorted((left, right))))
            continue
        other_joins.append(PredInfo(pred, bindings, source))

    _validate_null_tests(
        null_tests, resolver, has_outer,
        selections + other_joins, uf,
    )

    group_by = [
        Attr(col.table, col.column)
        for col in (resolver.qualify_column(c) for c in query.group_by)
    ]
    aggregates = _collect_aggregates(qualified_query, resolver)
    having = _collect_having(qualified_query, resolver)
    if aggregates and query.distinct:
        raise UnsupportedSqlError("SELECT DISTINCT with aggregation is unsupported")

    return AnalyzedQuery(
        query=qualified_query,
        schema=schema,
        occurrences=occurrences,
        eq_classes=uf.classes(),
        selections=selections,
        other_joins=other_joins,
        group_by=group_by,
        aggregates=aggregates,
        has_outer_joins=has_outer,
        pools=pools,
        natural_conditions=natural_conds,
        raw_equijoins=raw_equijoins,
        having=having,
        null_tests=null_tests,
    )


# ---------------------------------------------------------------------------
# Occurrence collection
# ---------------------------------------------------------------------------


def _collect_occurrences(query: Query, schema: Schema) -> dict[str, Occurrence]:
    occurrences: dict[str, Occurrence] = {}

    def walk(item: FromItem) -> None:
        if isinstance(item, TableRef):
            binding = item.binding.lower()
            table = item.name.lower()
            if not schema.has_table(table):
                raise CatalogError(f"unknown table {table!r}")
            if binding in occurrences:
                raise CatalogError(
                    f"duplicate binding {binding!r}; alias repeated occurrences"
                )
            occurrences[binding] = Occurrence(binding, table)
        elif isinstance(item, Join):
            walk(item.left)
            walk(item.right)

    for item in query.from_items:
        walk(item)
    return occurrences


class _Resolver:
    """Qualifies column references against the occurrence set."""

    def __init__(self, occurrences: dict[str, Occurrence], schema: Schema):
        self._occurrences = occurrences
        self._schema = schema

    def table_of(self, binding: str) -> str:
        try:
            return self._occurrences[binding.lower()].table
        except KeyError:
            raise CatalogError(f"unknown table or alias {binding!r}") from None

    def attr_type(self, binding: str, column: str) -> SqlType:
        return column_type(self._schema, self.table_of(binding), column)

    def qualify_column(self, ref: ColumnRef) -> ColumnRef:
        if ref.table is not None:
            binding = ref.table.lower()
            table = self.table_of(binding)
            if not self._schema.table(table).has_column(ref.column):
                raise CatalogError(
                    f"no column {ref.column!r} in {table} (binding {binding})"
                )
            return ColumnRef(binding, ref.column.lower())
        candidates = [
            binding
            for binding, occ in self._occurrences.items()
            if self._schema.table(occ.table).has_column(ref.column)
        ]
        if not candidates:
            raise CatalogError(f"unknown column {ref.column!r}")
        if len(candidates) > 1:
            raise CatalogError(
                f"ambiguous column {ref.column!r}: matches {candidates}"
            )
        return ColumnRef(candidates[0], ref.column.lower())

    def qualify_expr(self, expr: Expr) -> Expr:
        if isinstance(expr, ColumnRef):
            return self.qualify_column(expr)
        if isinstance(expr, BinaryOp):
            return BinaryOp(
                expr.op, self.qualify_expr(expr.left), self.qualify_expr(expr.right)
            )
        if isinstance(expr, Aggregate):
            if isinstance(expr.arg, Star):
                return expr
            return Aggregate(expr.func, self.qualify_expr(expr.arg), expr.distinct)
        if isinstance(expr, Star):
            if expr.table is not None:
                self.table_of(expr.table)  # validate
                return Star(expr.table.lower())
            return expr
        return expr

    def qualify_pred(self, pred):
        if isinstance(pred, NullTest):
            return NullTest(self.qualify_column(pred.expr), pred.negated)
        return Comparison(
            pred.op, self.qualify_expr(pred.left), self.qualify_expr(pred.right)
        )


def _qualify_query(query: Query, resolver: _Resolver) -> Query:
    items = tuple(
        SelectItem(resolver.qualify_expr(item.expr), item.alias)
        for item in query.select_items
    )
    where = tuple(resolver.qualify_pred(p) for p in query.where)
    group_by = tuple(resolver.qualify_column(c) for c in query.group_by)

    def qualify_from(item: FromItem) -> FromItem:
        if isinstance(item, TableRef):
            return TableRef(item.name.lower(), item.alias.lower() if item.alias else None)
        assert isinstance(item, Join)
        return Join(
            item.kind,
            qualify_from(item.left),
            qualify_from(item.right),
            tuple(resolver.qualify_pred(p) for p in item.condition),
            item.natural,
        )

    return Query(
        select_items=items,
        from_items=tuple(qualify_from(f) for f in query.from_items),
        where=where,
        group_by=group_by,
        distinct=query.distinct,
        having=tuple(resolver.qualify_pred(p) for p in query.having),
    )


# ---------------------------------------------------------------------------
# Join-condition collection (including NATURAL derivation)
# ---------------------------------------------------------------------------


def _visible_attrs(item: FromItem, resolver: _Resolver, schema: Schema):
    """Visible (name -> representative Attr) map of a FROM subtree."""
    if isinstance(item, TableRef):
        binding = item.binding.lower()
        table = schema.table(resolver.table_of(binding))
        return {col: Attr(binding, col) for col in table.column_names}
    assert isinstance(item, Join)
    left = _visible_attrs(item.left, resolver, schema)
    right = _visible_attrs(item.right, resolver, schema)
    merged = dict(left)
    for name, attr in right.items():
        if name not in merged:
            merged[name] = attr
        elif not item.natural:
            # Keep the left representative; qualified references still work.
            pass
    return merged


def _collect_join_conditions(item: FromItem, resolver: _Resolver, schema: Schema):
    """(qualified ON conjuncts, derived NATURAL conjuncts, has_outer)."""
    on_preds: list[Comparison] = []
    natural: list[Comparison] = []
    has_outer = False

    def walk(node: FromItem):
        nonlocal has_outer
        if isinstance(node, TableRef):
            return
        assert isinstance(node, Join)
        walk(node.left)
        walk(node.right)
        if node.kind.is_outer:
            has_outer = True
        for pred in node.condition:
            on_preds.append(resolver.qualify_pred(pred))
        if node.natural:
            left_vis = _visible_attrs(node.left, resolver, schema)
            right_vis = _visible_attrs(node.right, resolver, schema)
            common = sorted(set(left_vis) & set(right_vis))
            if not common:
                raise UnsupportedSqlError(
                    "NATURAL join with no common columns is a cross product"
                )
            for name in common:
                la, ra = left_vis[name], right_vis[name]
                natural.append(
                    Comparison(
                        "=",
                        ColumnRef(la.binding, la.column),
                        ColumnRef(ra.binding, ra.column),
                    )
                )

    walk(item)
    return on_preds, natural, has_outer


# ---------------------------------------------------------------------------
# Classification helpers
# ---------------------------------------------------------------------------


def _pred_bindings(pred: Comparison) -> set[str]:
    bindings: set[str] = set()

    def walk(expr: Expr):
        if isinstance(expr, ColumnRef):
            bindings.add(expr.table)
        elif isinstance(expr, BinaryOp):
            walk(expr.left)
            walk(expr.right)

    walk(pred.left)
    walk(pred.right)
    return bindings


def _expr_kind(expr: Expr, resolver: _Resolver) -> str:
    """'num', 'str', or 'mixed' type of an expression."""
    if isinstance(expr, Literal):
        return "str" if isinstance(expr.value, str) else "num"
    if isinstance(expr, ColumnRef):
        sqltype = resolver.attr_type(expr.table, expr.column)
        return "str" if sqltype.is_textual else "num"
    if isinstance(expr, BinaryOp):
        left = _expr_kind(expr.left, resolver)
        right = _expr_kind(expr.right, resolver)
        if left == "num" and right == "num":
            return "num"
        raise UnsupportedSqlError(
            f"arithmetic over non-numeric operands in {expr}"
        )
    raise UnsupportedSqlError(f"unsupported expression in predicate: {expr}")


def _typecheck_comparison(pred: Comparison, resolver: _Resolver) -> None:
    left = _expr_kind(pred.left, resolver)
    right = _expr_kind(pred.right, resolver)
    if left != right:
        raise UnsupportedSqlError(
            f"type mismatch in comparison {pred} ({left} vs {right})"
        )
    # Order comparisons on strings are supported: the solver's symbol
    # interning is rank-preserving, so `name > 'M'` becomes an integer
    # atom whose order agrees with the engine's lexicographic compare.


def _link_pools(pred: Comparison, resolver: _Resolver, pools: PoolAssigner) -> None:
    refs = [
        expr
        for expr in (pred.left, pred.right)
        if isinstance(expr, ColumnRef)
        and resolver.attr_type(expr.table, expr.column).is_textual
    ]
    if len(refs) == 2:
        pools.link(
            (resolver.table_of(refs[0].table), refs[0].column),
            (resolver.table_of(refs[1].table), refs[1].column),
        )


def _validate_null_tests(
    null_tests: list["NullTestInfo"],
    resolver: _Resolver,
    has_outer: bool,
    other_preds: list[PredInfo],
    uf: "_UnionFind",
) -> None:
    """Enforce the IS NULL extension's supported envelope.

    Generation pushes selections to base-table scans, which is only sound
    for null tests when (a) the query has no outer joins (a null test over
    a padded column is a join-level predicate, not a scan-level one) and
    (b) the tested column carries no other constraint in the query.  A
    positive IS NULL on a NOT NULL column is a provably empty query and
    is rejected outright.
    """
    if not null_tests:
        return
    if has_outer:
        raise UnsupportedSqlError(
            "IS NULL combined with outer joins is not supported: the test "
            "would apply to padded rows, not base data"
        )
    constrained_attrs: set[Attr] = set()
    for info in other_preds:
        for ref in comparison_columns(info.pred):
            constrained_attrs.add(Attr(ref.table, ref.column))
    for attr in list(uf._parent):
        constrained_attrs.add(attr)
    for info in null_tests:
        schema_table = resolver._schema.table(resolver.table_of(info.attr.binding))
        column = schema_table.column(info.attr.column)
        if not info.pred.negated and not column.nullable:
            raise UnsupportedSqlError(
                f"{info.pred} can never hold: {info.attr} is NOT NULL"
            )
        if info.attr in constrained_attrs:
            raise UnsupportedSqlError(
                f"{info.pred}: the column also appears in another predicate "
                f"or join condition, which is outside the supported envelope"
            )


_HAVING_FLIP = {"=": "=", "<>": "<>", "<": ">", ">": "<", "<=": ">=", ">=": "<="}


def _collect_having(query: Query, resolver: _Resolver) -> list["HavingInfo"]:
    """Validate and normalise HAVING conjuncts to ``aggregate op const``.

    The supported shape for the constrained-aggregation extension: one
    side a numeric aggregate over a plain column (or COUNT(*)), the other
    an integer literal.
    """
    out: list[HavingInfo] = []
    for pred in query.having:
        if not isinstance(pred, Comparison):
            raise UnsupportedSqlError("HAVING must be a conjunction of comparisons")
        left, right, op = pred.left, pred.right, pred.op
        if isinstance(right, Aggregate) and isinstance(left, Literal):
            left, right = right, left
            op = _HAVING_FLIP[op]
        if not (isinstance(left, Aggregate) and isinstance(right, Literal)):
            raise UnsupportedSqlError(
                f"unsupported HAVING conjunct {pred}: expected "
                f"aggregate op integer-constant"
            )
        if not isinstance(right.value, int):
            raise UnsupportedSqlError(
                f"HAVING constants must be integers, got {right.value!r}"
            )
        if isinstance(left.arg, Star):
            attr = None
        elif isinstance(left.arg, ColumnRef):
            attr = Attr(left.arg.table, left.arg.column)
            if resolver.attr_type(attr.binding, attr.column).is_textual and (
                left.func in ("SUM", "AVG")
            ):
                raise UnsupportedSqlError(
                    f"{left.func} over a string attribute in HAVING"
                )
            if resolver.attr_type(attr.binding, attr.column).is_textual:
                raise UnsupportedSqlError(
                    "HAVING over string aggregates is unsupported; compare "
                    "COUNT instead"
                )
        else:
            raise UnsupportedSqlError(
                f"HAVING aggregates must be over plain columns: {pred}"
            )
        out.append(HavingInfo(pred, left, attr, op, right.value))
    return out


def _collect_aggregates(query: Query, resolver: _Resolver) -> list[AggInfo]:
    aggregates: list[AggInfo] = []

    def walk(expr: Expr):
        if isinstance(expr, Aggregate):
            if isinstance(expr.arg, Star):
                aggregates.append(AggInfo(expr, None))
            elif isinstance(expr.arg, ColumnRef):
                aggregates.append(
                    AggInfo(expr, Attr(expr.arg.table, expr.arg.column))
                )
            else:
                raise UnsupportedSqlError(
                    f"aggregates over expressions are unsupported: {expr}"
                )
        elif isinstance(expr, BinaryOp):
            walk(expr.left)
            walk(expr.right)

    for item in query.select_items:
        walk(item.expr)
    return aggregates
