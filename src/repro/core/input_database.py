"""Section VI-A: constraining generated data to an input database.

Two modes, matching the paper:

* ``'domain'`` (the experiments' default): every generated attribute value
  must appear in the corresponding column of the input database — "we
  constrain attributes to take domain values that are present in an input
  database, although we do not force entire tuples to be from the input
  database";
* ``'tuples'``: every generated tuple must equal one of the input
  database's tuples (the RI/RD scheme of Section VI-A).

Both can make a dataset's constraints unsatisfiable; the generator then
retries without them, as the paper describes.
"""

from __future__ import annotations

from repro.core.tuplespace import ProblemSpace
from repro.engine.database import Database
from repro.errors import GenerationError
from repro.solver import builders
from repro.solver.terms import Formula, Linear


def _encode(space: ProblemSpace, table: str, column: str, value) -> Linear | None:
    """Encode an input-database value as a solver constant (None for NULL)."""
    if value is None:
        return None
    schema_col = space.aq.schema.table(table).column(column)
    if schema_col.sqltype.is_textual:
        pool = space.aq.pools.pool_of(table, column)
        return builders.const(space.solver.intern(pool, str(value)))
    if not isinstance(value, int):
        raise GenerationError(
            f"input database has non-integer value {value!r} in "
            f"{table}.{column}; only integer-backed values are supported"
        )
    return builders.const(value)


def input_constraints(
    space: ProblemSpace, input_db: Database, mode: str = "domain"
) -> list[Formula]:
    """Build the Section VI-A constraints for every slot of the space."""
    if mode not in ("domain", "tuples"):
        raise ValueError(f"unknown input-database mode {mode!r}")
    out: list[Formula] = []
    for table, size in space.sizes.items():
        relation = input_db.relation(table)
        if not relation.rows:
            continue
        columns = relation.columns
        if mode == "domain":
            for column in columns:
                idx = relation.column_index(column)
                encoded = []
                seen = set()
                for row in relation.rows:
                    if row[idx] is None or row[idx] in seen:
                        continue
                    seen.add(row[idx])
                    encoded.append(_encode(space, table, column, row[idx]))
                if not encoded:
                    continue
                for slot in range(size):
                    var = space.var(table, slot, column)
                    out.append(
                        builders.exists(
                            [builders.eq(var, value) for value in encoded],
                            f"input-domain:{table}.{column}[{slot}]",
                        )
                    )
        else:
            for slot in range(size):
                choices = []
                for row in relation.rows:
                    parts = []
                    for column in columns:
                        idx = relation.column_index(column)
                        encoded = _encode(space, table, column, row[idx])
                        if encoded is None:
                            continue
                        parts.append(
                            builders.eq(space.var(table, slot, column), encoded)
                        )
                    choices.append(builders.conj(parts))
                out.append(
                    builders.exists(choices, f"input-tuple:{table}[{slot}]")
                )
    return out
