"""Process-pool fan-out for dataset generation.

Every :class:`~repro.core.spec.DatasetSpec` is an independent constraint
problem (Algorithm 1 emits one per mutation-killing target), so the spec
solves parallelise trivially — except that specs hold ``build`` closures,
which do not pickle.  The protocol here sidesteps that:

* the parent ships only ``(schema, sql, config)`` to the workers;
* a worker re-parses and re-analyzes the query, re-derives the *same*
  spec list (``XDataGenerator._derive_specs`` is deterministic for a
  given query, schema and config) and solves the spec at its assigned
  index;
* results come back as picklable :class:`~repro.core.generator.SpecResult`
  objects and are merged in spec order, so a parallel run produces a
  suite identical to a sequential one.

Workers memoize the derived state per process (keyed by a per-dispatch
token), so re-derivation costs one analysis per process, not one per
spec; the per-process database-constraint cache likewise warms up across
the specs a worker handles.

:func:`generate_suites_parallel` applies the same idea one level up for
multi-query workloads: one task per query, each worker running the full
sequential pipeline for its queries.

The process pool is created lazily and kept alive for the life of the
parent process: pool start-up (fork + pipe setup) costs tens of
milliseconds, comparable to a whole solve for small queries, so paying
it once per process instead of once per ``generate()`` call is what
makes spec-level parallelism profitable for workload-sized batches.
Pool failures (no fork support, broken workers) degrade to an in-process
sequential run — parallelism is a throughput lever, never a correctness
requirement.
"""

from __future__ import annotations

import dataclasses
import functools
import itertools
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from repro.schema.catalog import Schema


def effective_workers(
    requested: int, tasks: int, cap_to_cpus: bool = True
) -> int:
    """The pool size actually worth using for ``tasks`` tasks.

    Never more than there are tasks and, by default, never more than the
    machine has CPUs: on an oversubscribed host extra workers cannot run
    concurrently, so they contribute only scheduling churn, duplicated
    cache warm-up and pickling overhead.  ``cap_to_cpus=False`` bypasses
    the hardware cap (tests exercising the pool protocol on small
    machines).
    """
    limit = min(requested, tasks)
    if cap_to_cpus:
        limit = min(limit, os.cpu_count() or 1)
    return max(1, limit)

#: The shared executor, grown on demand, alive until :func:`shutdown_pool`
#: or interpreter exit (concurrent.futures joins workers atexit).
_POOL: ProcessPoolExecutor | None = None
_POOL_WORKERS = 0

#: Parent-side dispatch tokens; workers key their memoized state on the
#: token so successive dispatches (different schemas, configs, queries)
#: through the same long-lived pool never mix state.
_TOKENS = itertools.count(1)

#: Per-worker-process memo: token -> {"payload": ..., "derived": {...}}.
_WORKER_STATE: dict = {}
_WORKER_STATE_LIMIT = 8


def _get_pool(workers: int) -> ProcessPoolExecutor:
    global _POOL, _POOL_WORKERS
    if _POOL is None or _POOL_WORKERS < workers:
        if _POOL is not None:
            _POOL.shutdown(wait=False)
        _POOL = ProcessPoolExecutor(max_workers=workers)
        _POOL_WORKERS = workers
    return _POOL


def _discard_pool() -> None:
    global _POOL, _POOL_WORKERS
    _POOL = None
    _POOL_WORKERS = 0


def shutdown_pool() -> None:
    """Stop the shared worker pool (it restarts lazily on next use)."""
    global _POOL
    if _POOL is not None:
        _POOL.shutdown(wait=True)
    _discard_pool()


def _worker_state(token: int, payload: tuple) -> dict:
    state = _WORKER_STATE.get(token)
    if state is None:
        if len(_WORKER_STATE) >= _WORKER_STATE_LIMIT:
            _WORKER_STATE.clear()
        state = {"payload": payload, "derived": {}}
        _WORKER_STATE[token] = state
    return state


def _sequential_config(config):
    """The config a worker runs with: same semantics, no nested pools."""
    return dataclasses.replace(config, workers=1)


def _derived_spec_state(state: dict):
    """(generator, analyzed query, specs, db cache), memoized per token."""
    derived = state["derived"]
    cached = derived.get("specs")
    if cached is None:
        from repro.core.analyze import analyze_query
        from repro.core.generator import XDataGenerator
        from repro.sql.parser import parse_query

        schema, config, sql = state["payload"]
        generator = XDataGenerator(schema, config)
        parsed = parse_query(sql)
        if parsed.has_subquery_predicates:
            from repro.core.decorrelate import decorrelate

            parsed = decorrelate(parsed, schema)
        aq = analyze_query(parsed, schema)
        specs, _skipped = generator._derive_specs(aq)
        cached = (generator, aq, specs, {})
        derived["specs"] = cached
    return cached


def _solve_spec_task(token: int, payload: tuple, spec_index: int):
    state = _worker_state(token, payload)
    generator, aq, specs, caches = _derived_spec_state(state)
    return generator._run_spec(aq, specs[spec_index], caches)


def _generate_suite_task(token: int, payload: tuple, sql: str):
    state = _worker_state(token, payload)
    generator = state["derived"].get("generator")
    if generator is None:
        from repro.core.generator import XDataGenerator

        schema, config = state["payload"]
        generator = XDataGenerator(schema, config)
        state["derived"]["generator"] = generator
    return generator.generate(sql)


def _chunksize(tasks: int, workers: int) -> int:
    # Small enough to balance load, large enough to amortise IPC.
    return max(1, tasks // (workers * 4))


def solve_specs_parallel(
    schema: Schema, sql: str, config, count: int, cap_to_cpus: bool = True
):
    """Solve the ``count`` specs of ``sql`` across the shared process pool.

    Returns one :class:`SpecResult` per spec, in spec order.  Falls back
    to an in-process sequential run when the effective pool size is one
    or no pool can be created.
    """
    workers = effective_workers(config.workers, count, cap_to_cpus)
    payload = (schema, _sequential_config(config), sql)
    token = next(_TOKENS)
    task = functools.partial(_solve_spec_task, token, payload)
    if workers <= 1:
        return [task(index) for index in range(count)]
    try:
        pool = _get_pool(workers)
        return list(
            pool.map(
                task, range(count), chunksize=_chunksize(count, workers),
            )
        )
    except (OSError, BrokenProcessPool):
        _discard_pool()
        return [task(index) for index in range(count)]


def _generate_job_task(token: int, payload: tuple, job: tuple[int, str]):
    state = _worker_state(token, payload)
    schema_index, sql = job
    generators = state["derived"].setdefault("generators", {})
    generator = generators.get(schema_index)
    if generator is None:
        from repro.core.generator import XDataGenerator

        config, schemas = state["payload"]
        generator = XDataGenerator(schemas[schema_index], config)
        generators[schema_index] = generator
    return generator.generate(sql)


def generate_jobs_parallel(
    jobs: list[tuple[Schema, str]], config, workers: int,
    cap_to_cpus: bool = True,
) -> list:
    """One :class:`TestSuite` per ``(schema, sql)`` job, across the pool.

    The flat-batch entry point for workload-scale fan-out (many queries
    over many schema variants, as in a grading service): the whole batch
    is dispatched through the shared pool in a single ``map`` call, so
    pool and pickling overhead is paid per batch, not per query.  Schemas
    are deduplicated (by identity) and shipped once in the task payload;
    workers keep one generator per schema so declaration caches warm up
    across the jobs they handle.  Results arrive in job order.  Falls
    back to an in-process sequential run when no pool can be created.
    """
    schemas: list[Schema] = []
    schema_index: dict[int, int] = {}
    indexed_jobs: list[tuple[int, str]] = []
    for schema, sql in jobs:
        index = schema_index.get(id(schema))
        if index is None:
            index = schema_index[id(schema)] = len(schemas)
            schemas.append(schema)
        indexed_jobs.append((index, sql))
    pool_size = effective_workers(workers, len(jobs), cap_to_cpus)
    payload = (_sequential_config(config), tuple(schemas))
    token = next(_TOKENS)
    task = functools.partial(_generate_job_task, token, payload)
    if pool_size <= 1:
        return [task(job) for job in indexed_jobs]
    # One chunk per worker: the batch is dispatched exactly once, so the
    # payload (with its schema list) is pickled per worker, not per job.
    chunk = -(-len(indexed_jobs) // pool_size)
    try:
        pool = _get_pool(pool_size)
        return list(pool.map(task, indexed_jobs, chunksize=chunk))
    except (OSError, BrokenProcessPool):
        _discard_pool()
        return [task(job) for job in indexed_jobs]


def generate_suites_parallel(
    schema: Schema, queries: dict[str, str], config, workers: int,
    cap_to_cpus: bool = True,
) -> dict:
    """One :class:`TestSuite` per query, generated across the shared pool.

    Queries are independent generation problems; each worker runs the
    full sequential pipeline for the queries it is handed.  Results are
    keyed and ordered like ``queries``.  Falls back to an in-process
    sequential run when the effective pool size is one or no pool can be
    created.
    """
    names = list(queries)
    sqls = [queries[name] for name in names]
    pool_size = effective_workers(workers, len(sqls), cap_to_cpus)
    payload = (schema, _sequential_config(config))
    token = next(_TOKENS)
    task = functools.partial(_generate_suite_task, token, payload)
    if pool_size <= 1:
        suites = [task(sql) for sql in sqls]
        return dict(zip(names, suites))
    try:
        pool = _get_pool(pool_size)
        suites = list(
            pool.map(
                task, sqls, chunksize=_chunksize(len(sqls), pool_size),
            )
        )
    except (OSError, BrokenProcessPool):
        _discard_pool()
        suites = [task(sql) for sql in sqls]
    return dict(zip(names, suites))
