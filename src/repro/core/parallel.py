"""Process-pool fan-out for dataset generation.

Every :class:`~repro.core.spec.DatasetSpec` is an independent constraint
problem (Algorithm 1 emits one per mutation-killing target), so the spec
solves parallelise trivially — except that specs hold ``build`` closures,
which do not pickle.  The protocol here sidesteps that:

* the parent ships only ``(schema, sql, config)`` to the workers;
* a worker re-parses and re-analyzes the query, re-derives the *same*
  spec list (``XDataGenerator._derive_specs`` is deterministic for a
  given query, schema and config) and solves the spec at its assigned
  index;
* results come back as picklable :class:`~repro.core.generator.SpecResult`
  objects and are merged in spec order, so a parallel run produces a
  suite identical to a sequential one.

Workers memoize the derived state per process (keyed by a per-dispatch
token), so re-derivation costs one analysis per process, not one per
spec; the per-process database-constraint cache likewise warms up across
the specs a worker handles.  The same holds for the compiled query
skeletons of the delta-solve pipeline (DESIGN.md §5j): skeletons hold
formula graphs with cyclic memo fields and are deliberately *never*
pickled — each worker compiles (or pulls from its own process-level
``_SKELETON_STORE``/``_DECL_STORE``) the skeletons for the specs it is
assigned, and the stores warm up per worker exactly like the
database-constraint cache.

:func:`generate_suites_parallel` applies the same idea one level up for
multi-query workloads: one task per query, each worker running the full
sequential pipeline for its queries.

The process pool is created lazily and kept alive for the life of the
parent process: pool start-up (fork + pipe setup) costs tens of
milliseconds, comparable to a whole solve for small queries, so paying
it once per process instead of once per ``generate()`` call is what
makes spec-level parallelism profitable for workload-sized batches.

Failure isolation (DESIGN.md §5d).  Each item is submitted as its own
future, so one poisoned task cannot take a whole ``map`` batch down
with it:

* task-level exceptions are captured *inside* the worker into picklable
  results (an error :class:`SkippedTarget` for specs, a
  :class:`FailedSuite` for whole queries) unless ``config.fail_fast``;
* a worker crash (or pool-creation failure) breaks only the futures
  without results; the batch emits a
  :class:`~repro.errors.PoolDegradedWarning`, marks itself degraded and
  resumes **only the unfinished indices** sequentially in the parent —
  completed results are never re-solved;
* an optional deadline bounds every wait, so a hung worker degrades the
  run instead of hanging it (the hung process is abandoned with the
  discarded pool; specs still unfinished when the deadline passes come
  back as ``None`` for the caller to budget-skip).

Degradation is loud but lossless — parallelism is a throughput lever,
never a correctness requirement.
"""

from __future__ import annotations

import dataclasses
import functools
import itertools
import os
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro.errors import PoolDegradedWarning
from repro.schema.catalog import Schema


def effective_workers(
    requested: int, tasks: int, cap_to_cpus: bool = True
) -> int:
    """The pool size actually worth using for ``tasks`` tasks.

    Never more than there are tasks and, by default, never more than the
    machine has CPUs: on an oversubscribed host extra workers cannot run
    concurrently, so they contribute only scheduling churn, duplicated
    cache warm-up and pickling overhead.  ``cap_to_cpus=False`` bypasses
    the hardware cap (tests exercising the pool protocol on small
    machines).
    """
    limit = min(requested, tasks)
    if cap_to_cpus:
        limit = min(limit, os.cpu_count() or 1)
    return max(1, limit)

#: The shared executor, grown on demand, alive until :func:`shutdown_pool`
#: or interpreter exit (concurrent.futures joins workers atexit).
_POOL: ProcessPoolExecutor | None = None
_POOL_WORKERS = 0

#: Parent-side dispatch tokens; workers key their memoized state on the
#: token so successive dispatches (different schemas, configs, queries)
#: through the same long-lived pool never mix state.
_TOKENS = itertools.count(1)

#: Per-worker-process memo: token -> {"payload": ..., "derived": {...}}.
_WORKER_STATE: dict = {}
_WORKER_STATE_LIMIT = 8


def _get_pool(workers: int) -> ProcessPoolExecutor:
    global _POOL, _POOL_WORKERS
    if _POOL is None or _POOL_WORKERS < workers:
        if _POOL is not None:
            _POOL.shutdown(wait=False)
        _POOL = ProcessPoolExecutor(max_workers=workers)
        _POOL_WORKERS = workers
    return _POOL


def _discard_pool(cancel: bool = False) -> None:
    global _POOL, _POOL_WORKERS
    if _POOL is not None and cancel:
        _POOL.shutdown(wait=False, cancel_futures=True)
    _POOL = None
    _POOL_WORKERS = 0


def shutdown_pool() -> None:
    """Stop the shared worker pool (it restarts lazily on next use)."""
    global _POOL
    if _POOL is not None:
        _POOL.shutdown(wait=True)
    _discard_pool()


class SupervisedPool:
    """A process pool whose workers can be hard-killed and respawned.

    The campaign driver (``repro.campaign``) needs something the shared
    batch pool deliberately does not offer: a *watchdog* path that kills
    a stuck worker outright (``SIGKILL``, not cooperative cancellation)
    and keeps scheduling on a fresh pool, because a hung case must cost
    one deadline, never the campaign.  The executor is created lazily on
    first :meth:`submit` and transparently recreated after :meth:`kill`,
    so callers treat it as an immortal submit surface.

    Unlike the module-level shared pool, a ``SupervisedPool`` is owned
    by one scheduler; killing it cannot disturb concurrent
    ``generate()`` fan-outs.
    """

    def __init__(self, workers: int):
        self.workers = max(1, workers)
        self._executor: ProcessPoolExecutor | None = None
        #: Pools killed by the watchdog so far (telemetry).
        self.kills = 0

    def _ensure(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        return self._executor

    def submit(self, fn, *args):
        """Submit ``fn(*args)``; recreates the pool if it was killed."""
        return self._ensure().submit(fn, *args)

    def kill(self) -> None:
        """SIGKILL every worker process and discard the executor.

        In-flight futures fail with :class:`BrokenProcessPool` (or stay
        cancelled); the caller is expected to requeue the tasks it still
        cares about.  The next :meth:`submit` starts a fresh pool.
        """
        executor = self._executor
        self._executor = None
        if executor is None:
            return
        self.kills += 1
        for process in list(getattr(executor, "_processes", {}).values()):
            try:
                process.kill()
            except Exception:
                pass  # already dead
        executor.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        """Orderly shutdown (waits for running tasks)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "SupervisedPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _warn_degraded(detail: str) -> None:
    warnings.warn(
        f"process-pool fan-out degraded to sequential execution: {detail}",
        PoolDegradedWarning,
        stacklevel=3,
    )


def _worker_state(token: int, payload: tuple) -> dict:
    state = _WORKER_STATE.get(token)
    if state is None:
        if len(_WORKER_STATE) >= _WORKER_STATE_LIMIT:
            _WORKER_STATE.clear()
        state = {"payload": payload, "derived": {}}
        _WORKER_STATE[token] = state
    return state


def _sequential_config(config, strip_journal: bool = False):
    """The config a worker runs with: same semantics, no nested pools.

    ``strip_journal`` is set by the *suite-level* entry points, whose
    workers run whole ``generate()`` calls: concurrent appends to one
    journal file would interleave runs, so the path is removed and
    tracing forced on instead — the parent (see
    ``repro.testing.workload``) replays the shipped span trees into its
    own journal.  Spec-level fan-out keeps the path: workers never open
    it (``_run_spec`` only collects spans), it merely flags
    observability as on.
    """
    changes: dict = {"workers": 1}
    if strip_journal and getattr(config, "journal_path", None) is not None:
        changes["journal_path"] = None
        changes["trace"] = True
    return dataclasses.replace(config, **changes)


@dataclass
class BatchOutcome:
    """One batched dispatch: per-item results plus degradation telemetry.

    ``results[i]`` is ``None`` only when the batch deadline expired
    before item ``i`` was solved anywhere.  ``resumed`` lists the
    indices re-run sequentially in the parent after a pool failure —
    by construction disjoint from the indices whose pooled results
    arrived, which are never re-solved.
    """

    results: list
    degraded: bool = False
    resumed: list[int] = field(default_factory=list)
    #: ``time.time()`` stamp taken when the batch's futures were
    #: submitted (0.0 for in-process batches); against each result's
    #: ``started_at`` it yields the pool queue wait (§5e metrics).
    submitted_at: float = 0.0


@dataclass
class FailedSuite:
    """Picklable per-query failure marker (suite-level fan-out).

    Returned in place of a :class:`TestSuite` when a worker's
    ``generate()`` raised and ``config.fail_fast`` was off; the workload
    layer turns it into a per-query error entry.
    """

    sql: str
    error_type: str
    message: str

    @property
    def error(self) -> str:
        return f"{self.error_type}: {self.message}"


def _derived_spec_state(state: dict):
    """(generator, analyzed query, specs, db cache), memoized per token."""
    derived = state["derived"]
    cached = derived.get("specs")
    if cached is None:
        from repro.core.analyze import analyze_query
        from repro.core.generator import XDataGenerator
        from repro.sql.parser import parse_query

        schema, config, sql = state["payload"]
        generator = XDataGenerator(schema, config)
        parsed = parse_query(sql)
        if parsed.has_subquery_predicates:
            from repro.core.decorrelate import decorrelate

            parsed = decorrelate(parsed, schema)
        aq = analyze_query(parsed, schema)
        specs, _skipped = generator._derive_specs(aq)
        cached = (generator, aq, specs, {})
        derived["specs"] = cached
    return cached


def _solve_spec_task(token: int, payload: tuple, spec_index: int):
    """Worker-side spec solve; never lets an exception poison the batch.

    ``_run_spec`` already isolates solve-time failures; this guard
    covers everything outside it (re-parse, re-analysis, spec
    derivation), which would otherwise surface as a future exception
    and be indistinguishable from a pool failure.
    """
    from repro.core.generator import SpecResult
    from repro.core.spec import SkippedTarget

    started = time.time()
    state = _worker_state(token, payload)
    try:
        generator, aq, specs, caches = _derived_spec_state(state)
        result = generator._run_spec(
            aq, specs[spec_index], caches, spec_index=spec_index
        )
        result.started_at = started
        return result
    except Exception as exc:
        if state["payload"][1].fail_fast:
            raise
        return SpecResult(
            None,
            SkippedTarget(
                "pipeline",
                f"spec[{spec_index}]",
                f"error:{type(exc).__name__}",
                detail=str(exc),
            ),
            0.0,
            attempts=0,
            started_at=started,
        )


def _generate_suite_task(token: int, payload: tuple, sql: str):
    state = _worker_state(token, payload)
    generator = state["derived"].get("generator")
    if generator is None:
        from repro.core.generator import XDataGenerator

        schema, config = state["payload"]
        generator = XDataGenerator(schema, config)
        state["derived"]["generator"] = generator
    try:
        return generator.generate(sql)
    except Exception as exc:
        if generator.config.fail_fast:
            raise
        return FailedSuite(sql, type(exc).__name__, str(exc))


def _run_batch(
    task, args: list, pool_size: int, deadline: float | None = None
) -> BatchOutcome:
    """Run ``task(arg)`` for every arg, pooled, with failure isolation.

    Each item is its own future: a crash or timeout loses only the
    unfinished items, which are resumed sequentially in the parent
    (unless the deadline has passed — those stay ``None``).
    """
    count = len(args)
    outcome = BatchOutcome(results=[None] * count)

    def expired() -> bool:
        return deadline is not None and time.perf_counter() > deadline

    if pool_size <= 1:
        for index, arg in enumerate(args):
            if expired():
                outcome.degraded = True
                break
            outcome.results[index] = task(arg)
        return outcome

    futures = None
    try:
        pool = _get_pool(pool_size)
        outcome.submitted_at = time.time()
        futures = [pool.submit(task, arg) for arg in args]
    except (OSError, BrokenProcessPool) as exc:
        _warn_degraded(f"could not dispatch to the pool ({exc!r})")
        _discard_pool()

    broken = futures is None
    timed_out = False
    if futures is not None:
        for index, future in enumerate(futures):
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.perf_counter())
            try:
                outcome.results[index] = future.result(timeout=remaining)
            except _FuturesTimeout:
                if not timed_out:
                    _warn_degraded(
                        "batch deadline expired while waiting on a worker; "
                        "abandoning the pool"
                    )
                timed_out = True
                # Keep scanning with zero timeout: later futures that
                # already finished still surface their results.
            except (OSError, BrokenProcessPool) as exc:
                if not broken:
                    _warn_degraded(f"worker pool broke mid-batch ({exc!r})")
                broken = True
                # Keep scanning: futures completed before the break
                # still hold results and must not be re-solved.
        if timed_out or broken:
            _discard_pool(cancel=True)

    if broken or timed_out:
        outcome.degraded = True
        for index, arg in enumerate(args):
            if outcome.results[index] is not None or expired():
                continue
            outcome.results[index] = task(arg)
            outcome.resumed.append(index)
    return outcome


def solve_specs_parallel(
    schema: Schema,
    sql: str,
    config,
    count: int,
    cap_to_cpus: bool = True,
    deadline: float | None = None,
) -> BatchOutcome:
    """Solve the ``count`` specs of ``sql`` across the shared process pool.

    Returns a :class:`BatchOutcome` whose ``results`` hold one
    :class:`SpecResult` per spec, in spec order (``None`` for specs the
    ``deadline`` — an absolute ``time.perf_counter()`` stamp — cut off).
    Falls back to an in-process sequential run when the effective pool
    size is one or no pool can be created.
    """
    workers = effective_workers(config.workers, count, cap_to_cpus)
    payload = (schema, _sequential_config(config), sql)
    token = next(_TOKENS)
    task = functools.partial(_solve_spec_task, token, payload)
    return _run_batch(task, list(range(count)), workers, deadline)


def _generate_job_task(token: int, payload: tuple, job: tuple[int, str]):
    state = _worker_state(token, payload)
    schema_index, sql = job
    generators = state["derived"].setdefault("generators", {})
    generator = generators.get(schema_index)
    if generator is None:
        from repro.core.generator import XDataGenerator

        config, schemas = state["payload"]
        generator = XDataGenerator(schemas[schema_index], config)
        generators[schema_index] = generator
    try:
        return generator.generate(sql)
    except Exception as exc:
        if generator.config.fail_fast:
            raise
        return FailedSuite(sql, type(exc).__name__, str(exc))


def _flag_degraded_suites(results: list) -> None:
    """Stamp pool degradation on every real suite of a degraded batch."""
    for suite in results:
        if suite is not None and not isinstance(suite, FailedSuite):
            suite.health.pool_degraded = True


def generate_jobs_parallel(
    jobs: list[tuple[Schema, str]], config, workers: int,
    cap_to_cpus: bool = True,
) -> list:
    """One result per ``(schema, sql)`` job, across the shared pool.

    The flat-batch entry point for workload-scale fan-out (many queries
    over many schema variants, as in a grading service).  Schemas are
    deduplicated (by identity) and shipped once in the task payload;
    workers keep one generator per schema so declaration caches warm up
    across the jobs they handle.  Results arrive in job order; a
    failing query yields a :class:`FailedSuite` (with
    ``config.fail_fast`` it raises instead), and pool failures degrade
    to a sequential resume of the unfinished jobs with a
    :class:`PoolDegradedWarning` and ``health.pool_degraded`` set on
    the batch's suites.
    """
    schemas: list[Schema] = []
    schema_index: dict[int, int] = {}
    indexed_jobs: list[tuple[int, str]] = []
    for schema, sql in jobs:
        index = schema_index.get(id(schema))
        if index is None:
            index = schema_index[id(schema)] = len(schemas)
            schemas.append(schema)
        indexed_jobs.append((index, sql))
    pool_size = effective_workers(workers, len(jobs), cap_to_cpus)
    payload = (_sequential_config(config, strip_journal=True), tuple(schemas))
    token = next(_TOKENS)
    task = functools.partial(_generate_job_task, token, payload)
    outcome = _run_batch(task, indexed_jobs, pool_size)
    if outcome.degraded:
        _flag_degraded_suites(outcome.results)
    return outcome.results


def generate_suites_parallel(
    schema: Schema, queries: dict[str, str], config, workers: int,
    cap_to_cpus: bool = True,
) -> dict:
    """One result per query, generated across the shared pool.

    Queries are independent generation problems; each worker runs the
    full sequential pipeline for the queries it is handed.  Results are
    keyed and ordered like ``queries``; a failing query maps to a
    :class:`FailedSuite` instead of poisoning the batch (with
    ``config.fail_fast`` it raises).  Falls back — loudly, see
    :class:`PoolDegradedWarning` — to an in-process sequential run when
    the pool breaks, resuming only the queries without results.
    """
    names = list(queries)
    sqls = [queries[name] for name in names]
    pool_size = effective_workers(workers, len(sqls), cap_to_cpus)
    payload = (schema, _sequential_config(config, strip_journal=True))
    token = next(_TOKENS)
    task = functools.partial(_generate_suite_task, token, payload)
    outcome = _run_batch(task, sqls, pool_size)
    if outcome.degraded:
        _flag_degraded_suites(outcome.results)
    return dict(zip(names, outcome.results))
