"""Tuple-slot allocation and SQL-to-constraint translation.

This is the implementation of the paper's variable scheme (Section V-A):
each occurrence of a relation maps to an index in a per-base-relation
array of constraint tuples; ``cvcMap(rel.attr)`` becomes
``table[index].column``, one solver variable per attribute.  The space can
grow — extra slots are added to satisfy foreign keys when a referenced
attribute is nullified (Section V-B), and the aggregation procedure
allocates three slots per occurrence (Algorithm 4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analyze import AnalyzedQuery
from repro.core.attrs import Attr
from repro.errors import GenerationError, UnsupportedSqlError
from repro.solver import builders
from repro.solver.solver import Solver
from repro.solver.terms import Formula, Linear
from repro.sql.ast import BinaryOp, ColumnRef, Comparison, Expr, Literal


def slot_var_name(table: str, index: int, column: str) -> str:
    """Canonical solver-variable name for one attribute of one slot."""
    return f"{table}[{index}].{column}"


def _rotate(values: tuple, index: int) -> tuple:
    """Rotate a preference tuple by ``index`` positions."""
    if len(values) < 2:
        return values
    shift = index % len(values)
    return values[shift:] + values[:shift]


@dataclass
class SlotInfo:
    """Provenance of one tuple slot."""

    table: str
    index: int
    reason: str  # 'occurrence:<binding>', 'fk-support', 'agg-set:<k>'


class ProblemSpace:
    """Solver variables + slots for one dataset-generation problem.

    Args:
        aq: The analyzed query.
        solver: A fresh :class:`Solver` owned by this problem.
        copies: Number of slots per occurrence (1 normally, 3 for the
            aggregation datasets).  Copy ``k`` of binding ``b`` is
            addressed with ``binding_var(b, col, copy=k)``.
    """

    def __init__(self, aq: AnalyzedQuery, solver: Solver, copies: int = 1):
        self.aq = aq
        self.solver = solver
        self.copies = copies
        self.sizes: dict[str, int] = {}
        self.slots: list[SlotInfo] = []
        #: (table, slot index, column) triples forced to NULL at assembly
        #: time — the Section V-H nullable-foreign-key alternative.
        self.forced_nulls: set[tuple[str, int, str]] = set()
        # binding -> list of slot indices, one per copy
        self._binding_slots: dict[str, list[int]] = {}
        for binding, occ in aq.occurrences.items():
            indices = []
            for copy in range(copies):
                indices.append(self._new_slot(occ.table, f"occurrence:{binding}#{copy}"))
            self._binding_slots[binding] = indices

    # -- slots ---------------------------------------------------------------

    def _new_slot(self, table: str, reason: str) -> int:
        index = self.sizes.get(table, 0)
        self.sizes[table] = index + 1
        self.slots.append(SlotInfo(table, index, reason))
        return index

    def add_support_slot(self, table: str) -> int:
        """Add an extra slot (Section V-B foreign-key support tuple)."""
        return self._new_slot(table, "fk-support")

    def slot_of(self, binding: str, copy: int = 0) -> int:
        return self._binding_slots[binding][copy]

    def table_slots(self, table: str) -> range:
        """All current slot indices of a base table."""
        return range(self.sizes.get(table, 0))

    def in_query(self, table: str) -> bool:
        return self.sizes.get(table, 0) > 0

    # -- variables ------------------------------------------------------------

    def var(self, table: str, index: int, column: str) -> Linear:
        """The solver variable for ``table[index].column`` (declared lazily).

        Preferred values are rotated by the slot index so distinct tuples
        of the same relation lean towards distinct attribute values —
        generated rows stay mutually distinguishable under projection,
        and the datasets read like real data rather than repeated rows.
        """
        name = slot_var_name(table, index, column)
        if self.solver.has_var(name):
            return Linear.of_var(name)
        schema_col = self.aq.schema.table(table).column(column)
        if schema_col.sqltype.is_textual:
            pool = self.aq.pools.pool_of(table, column)
            own = tuple(str(v) for v in schema_col.domain)
            pooled = self.aq.pools.preferred_values(table, column)
            preferred = own + tuple(v for v in pooled if v not in set(own))
            return self.solver.str_var(name, pool, _rotate(preferred, index))
        preferred_ints = tuple(
            int(v) for v in schema_col.domain if isinstance(v, int)
        )
        return self.solver.int_var(name, _rotate(preferred_ints, index))

    def attr_var(self, attr: Attr, copy: int = 0) -> Linear:
        """Variable for an occurrence-level attribute at its current slot."""
        table = self.aq.table_of(attr.binding)
        return self.var(table, self.slot_of(attr.binding, copy), attr.column)

    def finalize_declarations(self) -> None:
        """Declare every attribute of every slot so models decode full rows."""
        for slot in self.slots:
            for column in self.aq.schema.table(slot.table).column_names:
                self.var(slot.table, slot.index, column)

    # -- translation -----------------------------------------------------------

    def _attr_of_ref(self, ref: ColumnRef) -> Attr:
        if ref.table is None:
            raise GenerationError(f"unqualified column {ref.column!r} reached the generator")
        return Attr(ref.table, ref.column)

    def _expr_type(self, expr: Expr) -> str:
        if isinstance(expr, Literal):
            return "str" if isinstance(expr.value, str) else "num"
        if isinstance(expr, ColumnRef):
            attr = self._attr_of_ref(expr)
            return "str" if self.aq.attr_type(attr).is_textual else "num"
        if isinstance(expr, BinaryOp):
            return "num"
        raise UnsupportedSqlError(f"unsupported expression {expr}")

    def _numeric_linear(
        self, expr: Expr, overrides: dict[str, int] | None, copy: int
    ) -> Linear:
        """Translate a numeric expression to a Linear.

        ``overrides`` remaps bindings to explicit slot indices (used by the
        NOT EXISTS instantiation, which sweeps one binding's relation over
        its whole array).
        """
        if isinstance(expr, Literal):
            if isinstance(expr.value, float):
                if not expr.value.is_integer():
                    raise UnsupportedSqlError(
                        f"non-integer literal {expr.value} in generation constraints"
                    )
                return Linear.of_const(int(expr.value))
            if isinstance(expr.value, str):
                raise UnsupportedSqlError("string literal in numeric context")
            return Linear.of_const(int(expr.value))
        if isinstance(expr, ColumnRef):
            attr = self._attr_of_ref(expr)
            table = self.aq.table_of(attr.binding)
            if overrides and attr.binding in overrides:
                index = overrides[attr.binding]
            else:
                index = self.slot_of(attr.binding, copy)
            return self.var(table, index, attr.column)
        if isinstance(expr, BinaryOp):
            left = self._numeric_linear(expr.left, overrides, copy)
            right = self._numeric_linear(expr.right, overrides, copy)
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                if not left.coeffs:
                    return right.scale(left.const)
                if not right.coeffs:
                    return left.scale(right.const)
                raise UnsupportedSqlError(
                    "products of attributes are not linear; unsupported"
                )
            raise UnsupportedSqlError(
                f"operator {expr.op!r} is unsupported in generation constraints"
            )
        raise UnsupportedSqlError(f"unsupported expression {expr}")

    def _string_operand(
        self, expr: Expr, pool: str, overrides: dict[str, int] | None, copy: int
    ) -> Linear:
        if isinstance(expr, Literal) and isinstance(expr.value, str):
            return Linear.of_const(self.solver.intern(pool, expr.value))
        if isinstance(expr, ColumnRef):
            attr = self._attr_of_ref(expr)
            table = self.aq.table_of(attr.binding)
            if overrides and attr.binding in overrides:
                index = overrides[attr.binding]
            else:
                index = self.slot_of(attr.binding, copy)
            return self.var(table, index, attr.column)
        raise UnsupportedSqlError(f"unsupported string operand {expr}")

    def _string_pool_of(self, pred: Comparison) -> str:
        for side in (pred.left, pred.right):
            if isinstance(side, ColumnRef):
                attr = self._attr_of_ref(side)
                if self.aq.attr_type(attr).is_textual:
                    return self.aq.pools.pool_of(
                        self.aq.table_of(attr.binding), attr.column
                    )
        raise UnsupportedSqlError(f"no column operand in string comparison {pred}")

    def pred_formula(
        self,
        pred: Comparison,
        overrides: dict[str, int] | None = None,
        copy: int = 0,
        op: str | None = None,
    ) -> Formula:
        """Translate a (qualified) SQL comparison into a solver formula.

        Args:
            pred: The comparison.
            overrides: Binding -> explicit slot index remapping.
            copy: Which per-occurrence copy to address (aggregation sets).
            op: Override the comparison operator (comparison-mutation
                datasets replace a conjunct's operator with =, < or >).
        """
        operator = op or pred.op
        left_kind = self._expr_type(pred.left)
        right_kind = self._expr_type(pred.right)
        if "str" in (left_kind, right_kind):
            # Rank-preserving interning makes order operators meaningful.
            pool = self._string_pool_of(pred)
            left = self._string_operand(pred.left, pool, overrides, copy)
            right = self._string_operand(pred.right, pool, overrides, copy)
            return builders.compare(operator, left, right)
        left = self._numeric_linear(pred.left, overrides, copy)
        right = self._numeric_linear(pred.right, overrides, copy)
        return builders.compare(operator, left, right)

    # -- standard constraint groups -------------------------------------------------

    def eq_class_conditions(self, ec: tuple[Attr, ...], copy: int = 0) -> list[Formula]:
        """generateEqConds(P): chain equalities across class members."""
        conds: list[Formula] = []
        for first, second in zip(ec, ec[1:]):
            conds.append(
                builders.eq(self.attr_var(first, copy), self.attr_var(second, copy))
            )
        return conds

    def not_exists_value(self, table: str, column: str, value: Linear) -> Formula:
        """``NOT EXISTS i : table[i].column = value`` over the whole array."""
        instances = [
            builders.eq(self.var(table, i, column), value)
            for i in self.table_slots(table)
        ]
        return builders.not_exists(instances, f"nullify:{table}.{column}")

    def force_null(self, table: str, index: int, column: str) -> None:
        """Force ``table[index].column`` to NULL in the assembled dataset.

        The solver has no NULL value; the assembler overrides whatever the
        model assigned.  Foreign-key constraints over forced-null columns
        are skipped (a NULL foreign key satisfies the constraint), which
        :func:`repro.core.dbconstraints.foreign_key_constraints` honours.
        """
        self.forced_nulls.add((table, index, column.lower()))

    def groupby_distinctness(self) -> list[Formula]:
        """Pairwise-distinct group-by values across slots of each relation.

        For queries with aggregation at the root, a join-difference at a
        node is only visible in the result when the dangling tuple falls
        into its *own* group; otherwise another tuple with the same
        group-by values masks it.  These constraints force every slot of a
        group-by relation into a distinct group.  They can conflict with
        equivalence classes or the chase, so callers attach them with a
        relaxation fallback.
        """
        conds: list[Formula] = []
        for attr in self.aq.group_by:
            table = self.aq.table_of(attr.binding)
            slots = list(self.table_slots(table))
            for i, slot_a in enumerate(slots):
                for slot_b in slots[i + 1:]:
                    conds.append(
                        builders.ne(
                            self.var(table, slot_a, attr.column),
                            self.var(table, slot_b, attr.column),
                        )
                    )
        return conds

    def not_exists_pred(self, pred: Comparison, binding: str, copy: int = 0) -> Formula:
        """genNotExists(p, r): no tuple of r's relation satisfies p.

        The swept binding's attributes are instantiated at every slot of
        its base relation; all other bindings stay at their current slots.
        """
        table = self.aq.table_of(binding)
        instances = []
        for index in self.table_slots(table):
            instances.append(
                self.pred_formula(pred, overrides={binding: index}, copy=copy)
            )
        return builders.not_exists(instances, f"nullify:{binding} on {pred}")
