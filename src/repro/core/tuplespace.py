"""Tuple-slot allocation and SQL-to-constraint translation.

This is the implementation of the paper's variable scheme (Section V-A):
each occurrence of a relation maps to an index in a per-base-relation
array of constraint tuples; ``cvcMap(rel.attr)`` becomes
``table[index].column``, one solver variable per attribute.  The space can
grow — extra slots are added to satisfy foreign keys when a referenced
attribute is nullified (Section V-B), and the aggregation procedure
allocates three slots per occurrence (Algorithm 4).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass

from repro.core.analyze import AnalyzedQuery
from repro.core.attrs import Attr
from repro.errors import GenerationError, UnsupportedSqlError
from repro.solver import builders
from repro.solver.solver import Solver
from repro.solver.terms import Formula, Linear
from repro.sql.ast import BinaryOp, ColumnRef, Comparison, Expr, Literal


def slot_var_name(table: str, index: int, column: str) -> str:
    """Canonical solver-variable name for one attribute of one slot.

    Interned: the same name is built anew in every solve, spec and run,
    then used as a dict key in the solver's hottest loops (union-find,
    assignments, watch lists).  Interning makes equal names *identical*
    objects process-wide, so those lookups compare by pointer — which
    also lets compiled skeletons (§5j) be reused across runs without
    cross-run string comparisons.
    """
    return sys.intern(f"{table}[{index}].{column}")


def _rotate(values: tuple, index: int) -> tuple:
    """Rotate a preference tuple by ``index`` positions."""
    if len(values) < 2:
        return values
    shift = index % len(values)
    return values[shift:] + values[:shift]


@dataclass
class SlotInfo:
    """Provenance of one tuple slot."""

    table: str
    index: int
    reason: str  # 'occurrence:<binding>', 'fk-support', 'agg-set:<k>'


@dataclass
class SpaceSnapshot:
    """Declared state of a :class:`ProblemSpace` (see ``snapshot``).

    ``symbols`` holds the snapshot owner's table; every restore copies it
    so replayed spaces intern independently from the template and from
    each other.
    """

    copies: int
    sizes: dict[str, int]
    slots: list[SlotInfo]
    binding_slots: dict[str, list[int]]
    infos: dict
    symbols: object


class ProblemSpace:
    """Solver variables + slots for one dataset-generation problem.

    Args:
        aq: The analyzed query.
        solver: A fresh :class:`Solver` owned by this problem.
        copies: Number of slots per occurrence (1 normally, 3 for the
            aggregation datasets).  Copy ``k`` of binding ``b`` is
            addressed with ``binding_var(b, col, copy=k)``.
    """

    def __init__(self, aq: AnalyzedQuery, solver: Solver, copies: int = 1):
        self.aq = aq
        self.solver = solver
        self.copies = copies
        self.sizes: dict[str, int] = {}
        self.slots: list[SlotInfo] = []
        #: (table, slot index, column) triples forced to NULL at assembly
        #: time — the Section V-H nullable-foreign-key alternative.
        self.forced_nulls: set[tuple[str, int, str]] = set()
        # binding -> list of slot indices, one per copy
        self._binding_slots: dict[str, list[int]] = {}
        # Slots already covered by finalize_declarations (incremental:
        # restored spaces only declare slots added after the snapshot).
        self._declared_slots = 0
        for binding, occ in aq.occurrences.items():
            indices = []
            for copy in range(copies):
                indices.append(self._new_slot(occ.table, f"occurrence:{binding}#{copy}"))
            self._binding_slots[binding] = indices

    # -- slots ---------------------------------------------------------------

    def _new_slot(self, table: str, reason: str) -> int:
        index = self.sizes.get(table, 0)
        self.sizes[table] = index + 1
        self.slots.append(SlotInfo(table, index, reason))
        return index

    def add_support_slot(self, table: str) -> int:
        """Add an extra slot (Section V-B foreign-key support tuple)."""
        return self._new_slot(table, "fk-support")

    def slot_of(self, binding: str, copy: int = 0) -> int:
        return self._binding_slots[binding][copy]

    def table_slots(self, table: str) -> range:
        """All current slot indices of a base table."""
        return range(self.sizes.get(table, 0))

    def in_query(self, table: str) -> bool:
        return self.sizes.get(table, 0) > 0

    # -- variables ------------------------------------------------------------

    def var(self, table: str, index: int, column: str) -> Linear:
        """The solver variable for ``table[index].column`` (declared lazily).

        Preferred values are rotated by the slot index so distinct tuples
        of the same relation lean towards distinct attribute values —
        generated rows stay mutually distinguishable under projection,
        and the datasets read like real data rather than repeated rows.
        """
        name = slot_var_name(table, index, column)
        solver = self.solver
        if solver.has_var(name):
            return Linear.of_var(name)
        pools = self.aq.pools
        cache = pools._decl_cache if pools.cache_enabled else None
        if cache is not None and solver.warm_declarations:
            # Warm-table replay: the declared info (with its interned
            # preferred codes) is valid verbatim in any solver whose
            # table descends from the first declaration build.
            info = pools._info_cache.get(name)
            if info is not None:
                if solver._infos_shared:
                    solver._infos = dict(solver._infos)
                    solver._infos_shared = False
                solver._infos[name] = info
                return Linear.of_var(name)
        prepared = cache.get(name) if cache is not None else None
        if prepared is None:
            schema_col = self.aq.schema.table(table).column(column)
            if schema_col.sqltype.is_textual:
                pool = pools.pool_of(table, column)
                own = tuple(str(v) for v in schema_col.domain)
                pooled = pools.preferred_values(table, column)
                preferred = own + tuple(v for v in pooled if v not in set(own))
                prepared = ("str", pool, _rotate(preferred, index))
            else:
                preferred_ints = tuple(
                    int(v) for v in schema_col.domain if isinstance(v, int)
                )
                prepared = ("int", None, _rotate(preferred_ints, index))
            if cache is not None:
                cache[name] = prepared
        kind, pool, preferred = prepared
        if kind == "str":
            result = solver.str_var(name, pool, preferred)
        else:
            result = solver.int_var(name, preferred)
        if cache is not None:
            pools._info_cache[name] = solver._infos[name]
        return result

    def attr_var(self, attr: Attr, copy: int = 0) -> Linear:
        """Variable for an occurrence-level attribute at its current slot."""
        table = self.aq.table_of(attr.binding)
        return self.var(table, self.slot_of(attr.binding, copy), attr.column)

    def finalize_declarations(self) -> None:
        """Declare every attribute of every slot so models decode full rows.

        Incremental: slots declared by a previous call (or already present
        in a restored snapshot) are skipped, so adding support slots to a
        restored space only declares the new slots' variables.
        """
        for slot in self.slots[self._declared_slots:]:
            for column in self.aq.schema.table(slot.table).column_names:
                self.var(slot.table, slot.index, column)
        self._declared_slots = len(self.slots)

    # -- declaration snapshots ------------------------------------------------

    def _share_infos(self):
        self.solver._infos_shared = True
        return self.solver._infos

    def snapshot(self) -> "SpaceSnapshot":
        """Capture the fully-declared state for replay.

        Valid immediately after :meth:`finalize_declarations` (before any
        spec-specific constraints or forced nulls).  The declared
        variables and interned symbols of a problem space depend only on
        (query, schema, copies, support-slot sequence), so sibling specs
        with the same shape replay the snapshot instead of re-declaring.
        """
        # Pre-pay the per-solve fresh-value interning and universe sort
        # for every restored sibling (pool growth invalidates per pool).
        # Freezing the live table (not the copy) lets sibling snapshots
        # of the same generator skip the freeze entirely: nothing new is
        # interned between base builds, so the early-out fires.
        self.solver.symbols.freeze_universes(self.solver.config.fresh_str_values)
        symbols = self.solver.symbols.copy()
        return SpaceSnapshot(
            copies=self.copies,
            sizes=dict(self.sizes),
            slots=list(self.slots),
            binding_slots={k: list(v) for k, v in self._binding_slots.items()},
            # Shared copy-on-write: the snapshotting solver materialises
            # its own dict if it ever declares another variable.
            infos=self._share_infos(),
            # Copied now: the snapshotting space keeps interning (build
            # literals, search witnesses) into its own table afterwards.
            symbols=symbols,
        )

    @staticmethod
    def restore(
        aq: AnalyzedQuery, snap: "SpaceSnapshot", solver_config=None
    ) -> "ProblemSpace":
        """A fresh, independent (space, solver) pair from a snapshot."""
        solver = Solver.from_declarations(
            solver_config, snap.infos, snap.symbols.copy()
        )
        space = ProblemSpace.__new__(ProblemSpace)
        space.aq = aq
        space.solver = solver
        space.copies = snap.copies
        space.sizes = dict(snap.sizes)
        space.slots = list(snap.slots)
        space.forced_nulls = set()
        space._binding_slots = {k: list(v) for k, v in snap.binding_slots.items()}
        space._declared_slots = len(snap.slots)
        return space

    # -- translation -----------------------------------------------------------

    def _attr_of_ref(self, ref: ColumnRef) -> Attr:
        if ref.table is None:
            raise GenerationError(f"unqualified column {ref.column!r} reached the generator")
        return Attr(ref.table, ref.column)

    def _expr_type(self, expr: Expr) -> str:
        if isinstance(expr, Literal):
            return "str" if isinstance(expr.value, str) else "num"
        if isinstance(expr, ColumnRef):
            attr = self._attr_of_ref(expr)
            return "str" if self.aq.attr_type(attr).is_textual else "num"
        if isinstance(expr, BinaryOp):
            return "num"
        raise UnsupportedSqlError(f"unsupported expression {expr}")

    def _numeric_linear(
        self, expr: Expr, overrides: dict[str, int] | None, copy: int
    ) -> Linear:
        """Translate a numeric expression to a Linear.

        ``overrides`` remaps bindings to explicit slot indices (used by the
        NOT EXISTS instantiation, which sweeps one binding's relation over
        its whole array).
        """
        if isinstance(expr, Literal):
            if isinstance(expr.value, float):
                if not expr.value.is_integer():
                    raise UnsupportedSqlError(
                        f"non-integer literal {expr.value} in generation constraints"
                    )
                return Linear.of_const(int(expr.value))
            if isinstance(expr.value, str):
                raise UnsupportedSqlError("string literal in numeric context")
            return Linear.of_const(int(expr.value))
        if isinstance(expr, ColumnRef):
            attr = self._attr_of_ref(expr)
            table = self.aq.table_of(attr.binding)
            if overrides and attr.binding in overrides:
                index = overrides[attr.binding]
            else:
                index = self.slot_of(attr.binding, copy)
            return self.var(table, index, attr.column)
        if isinstance(expr, BinaryOp):
            left = self._numeric_linear(expr.left, overrides, copy)
            right = self._numeric_linear(expr.right, overrides, copy)
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                if not left.coeffs:
                    return right.scale(left.const)
                if not right.coeffs:
                    return left.scale(right.const)
                raise UnsupportedSqlError(
                    "products of attributes are not linear; unsupported"
                )
            raise UnsupportedSqlError(
                f"operator {expr.op!r} is unsupported in generation constraints"
            )
        raise UnsupportedSqlError(f"unsupported expression {expr}")

    def _string_operand(
        self, expr: Expr, pool: str, overrides: dict[str, int] | None, copy: int
    ) -> Linear:
        if isinstance(expr, Literal) and isinstance(expr.value, str):
            return Linear.of_const(self.solver.intern(pool, expr.value))
        if isinstance(expr, ColumnRef):
            attr = self._attr_of_ref(expr)
            table = self.aq.table_of(attr.binding)
            if overrides and attr.binding in overrides:
                index = overrides[attr.binding]
            else:
                index = self.slot_of(attr.binding, copy)
            return self.var(table, index, attr.column)
        raise UnsupportedSqlError(f"unsupported string operand {expr}")

    def _string_pool_of(self, pred: Comparison) -> str:
        for side in (pred.left, pred.right):
            if isinstance(side, ColumnRef):
                attr = self._attr_of_ref(side)
                if self.aq.attr_type(attr).is_textual:
                    return self.aq.pools.pool_of(
                        self.aq.table_of(attr.binding), attr.column
                    )
        raise UnsupportedSqlError(f"no column operand in string comparison {pred}")

    def pred_formula(
        self,
        pred: Comparison,
        overrides: dict[str, int] | None = None,
        copy: int = 0,
        op: str | None = None,
    ) -> Formula:
        """Translate a (qualified) SQL comparison into a solver formula.

        Args:
            pred: The comparison.
            overrides: Binding -> explicit slot index remapping.
            copy: Which per-occurrence copy to address (aggregation sets).
            op: Override the comparison operator (comparison-mutation
                datasets replace a conjunct's operator with =, < or >).
        """
        operator = op or pred.op
        left_kind = self._expr_type(pred.left)
        right_kind = self._expr_type(pred.right)
        if "str" in (left_kind, right_kind):
            # Rank-preserving interning makes order operators meaningful.
            pool = self._string_pool_of(pred)
            left = self._string_operand(pred.left, pool, overrides, copy)
            right = self._string_operand(pred.right, pool, overrides, copy)
            return builders.compare(operator, left, right)
        left = self._numeric_linear(pred.left, overrides, copy)
        right = self._numeric_linear(pred.right, overrides, copy)
        return builders.compare(operator, left, right)

    # -- standard constraint groups -------------------------------------------------

    def eq_class_conditions(self, ec: tuple[Attr, ...], copy: int = 0) -> list[Formula]:
        """generateEqConds(P): chain equalities across class members."""
        conds: list[Formula] = []
        for first, second in zip(ec, ec[1:]):
            conds.append(
                builders.eq(self.attr_var(first, copy), self.attr_var(second, copy))
            )
        return conds

    def not_exists_value(self, table: str, column: str, value: Linear) -> Formula:
        """``NOT EXISTS i : table[i].column = value`` over the whole array."""
        instances = [
            builders.eq(self.var(table, i, column), value)
            for i in self.table_slots(table)
        ]
        return builders.not_exists(instances, f"nullify:{table}.{column}")

    def force_null(self, table: str, index: int, column: str) -> None:
        """Force ``table[index].column`` to NULL in the assembled dataset.

        The solver has no NULL value; the assembler overrides whatever the
        model assigned.  Foreign-key constraints over forced-null columns
        are skipped (a NULL foreign key satisfies the constraint), which
        :func:`repro.core.dbconstraints.foreign_key_constraints` honours.
        """
        self.forced_nulls.add((table, index, column.lower()))

    def groupby_distinctness(self) -> list[Formula]:
        """Pairwise-distinct group-by values across slots of each relation.

        For queries with aggregation at the root, a join-difference at a
        node is only visible in the result when the dangling tuple falls
        into its *own* group; otherwise another tuple with the same
        group-by values masks it.  These constraints force every slot of a
        group-by relation into a distinct group.  They can conflict with
        equivalence classes or the chase, so callers attach them with a
        relaxation fallback.
        """
        conds: list[Formula] = []
        for attr in self.aq.group_by:
            table = self.aq.table_of(attr.binding)
            slots = list(self.table_slots(table))
            for i, slot_a in enumerate(slots):
                for slot_b in slots[i + 1:]:
                    conds.append(
                        builders.ne(
                            self.var(table, slot_a, attr.column),
                            self.var(table, slot_b, attr.column),
                        )
                    )
        return conds

    def not_exists_pred(self, pred: Comparison, binding: str, copy: int = 0) -> Formula:
        """genNotExists(p, r): no tuple of r's relation satisfies p.

        The swept binding's attributes are instantiated at every slot of
        its base relation; all other bindings stay at their current slots.
        """
        table = self.aq.table_of(binding)
        instances = []
        for index in self.table_slots(table):
            instances.append(
                self.pred_formula(pred, overrides={binding: index}, copy=copy)
            )
        return builders.not_exists(instances, f"nullify:{binding} on {pred}")
