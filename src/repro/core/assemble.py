"""Dataset assembly: solver model -> legal database instance.

Decodes every tuple slot of the problem space into rows, eliminates exact
duplicate rows (the chase constraints make slots that share a primary key
identical, which the paper's assembly also collapses), and transitively
synthesises rows for referenced relations *outside* the query so that the
emitted instance satisfies every foreign key (Section V-B's closing
paragraph).  Every assembled dataset is integrity-checked; a violation
here is a generator bug, not a user error.
"""

from __future__ import annotations

from repro.core.tuplespace import ProblemSpace, slot_var_name
from repro.engine.database import Database
from repro.engine.integrity import find_violations
from repro.errors import GenerationError
from repro.schema.catalog import Table
from repro.solver.model import Model


def _default_value(table: Table, column: str):
    schema_col = table.column(column)
    if schema_col.domain:
        return schema_col.domain[0]
    if schema_col.sqltype.is_textual:
        return f"{column}~fk"
    return 0


def assemble_dataset(space: ProblemSpace, model: Model) -> Database:
    """Decode ``model`` into a validated :class:`Database`."""
    schema = space.aq.schema
    db = Database(schema)
    forced = space.forced_nulls
    assignment = model.assignment
    infos = model.infos
    decode = model.symbols.decode
    for table, size in space.sizes.items():
        columns = schema.table(table).column_names
        seen: set[tuple] = set()
        for index in range(size):
            values = []
            for col in columns:
                if forced and (table, index, col) in forced:
                    values.append(None)
                    continue
                name = slot_var_name(table, index, col)
                code = assignment[name]
                info = infos.get(name)
                values.append(
                    decode(code)
                    if info is not None and info.kind == "str"
                    else code
                )
            row = tuple(values)
            if row not in seen:
                seen.add(row)
                db.insert(table, row)
    _close_foreign_keys(db, space)
    violations = find_violations(db)
    if violations:
        raise GenerationError(
            f"assembled dataset violates integrity: {violations[0]}"
        )
    return db


def _close_foreign_keys(db: Database, space: ProblemSpace) -> None:
    """Synthesise rows in out-of-query tables until all FKs are satisfied."""
    schema = db.schema
    changed = True
    guard = 0
    while changed:
        changed = False
        guard += 1
        if guard > 100:
            raise GenerationError("foreign-key closure did not converge")
        for table in schema.tables:
            relation = db.relation(table.name)
            if not relation.rows:
                continue
            for fk in table.foreign_keys:
                target_table = schema.table(fk.ref_table)
                target = db.relation(fk.ref_table)
                dst_idx = [target.column_index(c) for c in fk.ref_columns]
                existing = {
                    tuple(row[i] for i in dst_idx) for row in target.rows
                }
                src_idx = [relation.column_index(c) for c in fk.columns]
                for row in list(relation.rows):
                    key = tuple(row[i] for i in src_idx)
                    if any(v is None for v in key) or key in existing:
                        continue
                    if space.in_query(fk.ref_table):
                        raise GenerationError(
                            f"dangling foreign key {fk.table}->{fk.ref_table} "
                            f"{key!r} inside the query's tuple space"
                        )
                    db.insert(fk.ref_table, _synth_row(target_table, fk, key))
                    existing.add(key)
                    changed = True


def _synth_row(target_table: Table, fk, key: tuple) -> tuple:
    forced = dict(zip(fk.ref_columns, key))
    return tuple(
        forced.get(col, _default_value(target_table, col))
        for col in target_table.column_names
    )
