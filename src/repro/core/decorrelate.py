"""Subquery decorrelation (Section V-H).

The paper: "Simple subqueries which can be decorrelated into joins can be
handled by decorrelating the query and then applying our algorithms to
generate datasets."  This module rewrites two shapes of subquery
predicate into joins:

* ``outer_expr IN (SELECT col FROM t WHERE ...)``
* ``EXISTS (SELECT ... FROM t WHERE t.c = outer.c AND ...)``

The rewrite pulls ``t`` into the outer FROM clause (under a fresh alias
if needed) and conjoins the membership/correlation conditions.  A
semijoin equals a plain join **only when each outer row matches at most
one subquery row**; we therefore require the matched/correlated columns
of ``t`` to cover a primary key, or the outer query to be SELECT
DISTINCT, and raise :class:`~repro.errors.UnsupportedSqlError` otherwise
rather than silently changing multiplicities.

Restrictions (the paper's "simple" subqueries): one relation in the
subquery's FROM, no aggregation or grouping, no nesting, and conjunct
predicates only — everything else raises with a pointed message.
"""

from __future__ import annotations

from repro.errors import UnsupportedSqlError
from repro.schema.catalog import Schema
from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    Comparison,
    Exists,
    Expr,
    InSubquery,
    Query,
    TableRef,
    query_table_refs,
)


def decorrelate(query: Query, schema: Schema) -> Query:
    """Rewrite all subquery predicates of ``query`` into joins.

    Returns the query unchanged when it has no subquery predicates.
    """
    if not query.has_subquery_predicates:
        return query
    from_items = list(query.from_items)
    where: list = []
    used_bindings = {
        ref.binding.lower() for ref in query_table_refs(query)
    }
    counter = 0
    for pred in query.where:
        if isinstance(pred, (Exists, InSubquery)):
            counter += 1
            new_item, new_conjuncts = _rewrite_subquery(
                pred, query, schema, used_bindings, counter
            )
            from_items.append(new_item)
            used_bindings.add(new_item.binding.lower())
            where.extend(new_conjuncts)
        else:
            where.append(pred)
    return Query(
        select_items=query.select_items,
        from_items=tuple(from_items),
        where=tuple(where),
        group_by=query.group_by,
        distinct=query.distinct,
    )


def _subquery_table(sub: Query) -> TableRef:
    if len(sub.from_items) != 1 or not isinstance(sub.from_items[0], TableRef):
        raise UnsupportedSqlError(
            "only subqueries over a single base table can be decorrelated"
        )
    if sub.group_by or sub.has_aggregates:
        raise UnsupportedSqlError(
            "aggregating subqueries cannot be decorrelated into joins"
        )
    if sub.has_subquery_predicates:
        raise UnsupportedSqlError("nested subqueries are not supported")
    return sub.from_items[0]


def _rewrite_expr(expr: Expr, old_binding: str, new_binding: str, columns) -> Expr:
    """Re-qualify subquery column references under the fresh alias.

    Unqualified references resolve to the subquery's table when it has
    the column (SQL's innermost-scope rule); anything else is left for
    the outer query's resolution (a correlation reference).
    """
    if isinstance(expr, ColumnRef):
        if expr.table is not None:
            if expr.table.lower() == old_binding:
                return ColumnRef(new_binding, expr.column)
            return expr
        if expr.column.lower() in columns:
            return ColumnRef(new_binding, expr.column)
        return expr
    if isinstance(expr, BinaryOp):
        return BinaryOp(
            expr.op,
            _rewrite_expr(expr.left, old_binding, new_binding, columns),
            _rewrite_expr(expr.right, old_binding, new_binding, columns),
        )
    return expr


def _rewrite_subquery(pred, outer: Query, schema: Schema, used, counter):
    sub = pred.query if isinstance(pred, Exists) else pred.query
    table_ref = _subquery_table(sub)
    table = schema.table(table_ref.name)
    columns = set(table.column_names)
    old_binding = table_ref.binding.lower()

    new_binding = old_binding
    while new_binding in used:
        new_binding = f"{old_binding}_sq{counter}"
        counter += 1
    new_item = TableRef(table_ref.name.lower(), new_binding)

    conjuncts: list[Comparison] = []
    for inner_pred in sub.where:
        if not isinstance(inner_pred, Comparison):
            raise UnsupportedSqlError("nested subqueries are not supported")
        conjuncts.append(
            Comparison(
                inner_pred.op,
                _rewrite_expr(inner_pred.left, old_binding, new_binding, columns),
                _rewrite_expr(inner_pred.right, old_binding, new_binding, columns),
            )
        )

    matched_columns: set[str] = set()
    if isinstance(pred, InSubquery):
        if len(sub.select_items) != 1:
            raise UnsupportedSqlError(
                "IN subqueries must select exactly one column"
            )
        target = sub.select_items[0].expr
        if not isinstance(target, ColumnRef):
            raise UnsupportedSqlError(
                "IN subqueries must select a plain column"
            )
        inner_col = _rewrite_expr(target, old_binding, new_binding, columns)
        if not (
            isinstance(inner_col, ColumnRef)
            and inner_col.table == new_binding
        ):
            raise UnsupportedSqlError(
                "the IN subquery's select column must come from its table"
            )
        conjuncts.append(Comparison("=", pred.expr, inner_col))
        matched_columns.add(inner_col.column.lower())

    # Columns of the subquery table pinned by equality to the outer query
    # (or to constants) also bound the match multiplicity.
    for conj in conjuncts:
        if conj.op != "=":
            continue
        for side, other in ((conj.left, conj.right), (conj.right, conj.left)):
            if (
                isinstance(side, ColumnRef)
                and side.table == new_binding
                and not _mentions_binding(other, new_binding)
            ):
                matched_columns.add(side.column.lower())

    if not outer.distinct and not set(table.primary_key) <= matched_columns:
        raise UnsupportedSqlError(
            f"decorrelating this subquery over {table.name!r} could change "
            f"result multiplicities: the matched columns "
            f"{sorted(matched_columns)} do not cover the primary key "
            f"{list(table.primary_key)}; use SELECT DISTINCT or match a key"
        )
    return new_item, conjuncts


def _mentions_binding(expr: Expr, binding: str) -> bool:
    if isinstance(expr, ColumnRef):
        return expr.table == binding
    if isinstance(expr, BinaryOp):
        return _mentions_binding(expr.left, binding) or _mentions_binding(
            expr.right, binding
        )
    return False
