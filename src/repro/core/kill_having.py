"""Constrained aggregation: datasets for HAVING-clause mutants.

This implements the paper's named future work ("we are currently
extending our techniques to handle the having clause") for HAVING
conjuncts of the form ``aggregate(A) op constant``.

Per conjunct, three datasets force the aggregate's value to be *equal
to*, *below* and *above* the constant (the Section V-E three-dataset
scheme lifted to aggregate results), which kills every comparison-
operator mutant of the conjunct and gives the suite HAVING-visible and
HAVING-filtered groups.  Aggregate results are linear in the tuple
attributes for SUM/AVG, bound-style for MIN/MAX, and purely cardinality-
based for COUNT — for COUNT the *number of tuple copies* is chosen per
case instead of constraining values.

Per aggregate occurring in HAVING, one additional Algorithm-4-style
dataset (duplicated non-zero value + distinct third value) is generated
with the whole HAVING clause forced TRUE, killing aggregate-operator
mutants inside HAVING where feasible.

No completeness claim is made for constrained aggregation — matching the
paper, which explicitly leaves it open; the integration tests measure
what the datasets achieve.
"""

from __future__ import annotations

from repro.core.analyze import AnalyzedQuery, HavingInfo
from repro.core.spec import DatasetSpec, SkippedTarget
from repro.core.tuplespace import ProblemSpace
from repro.solver import builders
from repro.solver.terms import Formula, Linear

#: Largest tuple-set count we will allocate to satisfy a COUNT constraint.
MAX_COPIES = 6

_CASES = ("=", "<", ">")


def _count_copies(op: str, constant: int) -> int | None:
    """Copies that make ``COUNT(...) op constant`` true, or None."""
    if op == "=":
        wanted = constant
    elif op == "<":
        wanted = constant - 1
    else:
        wanted = constant + 1
    if wanted < 1 or wanted > MAX_COPIES:
        return None
    return wanted


def _holds(op: str, left: int, right: int) -> bool:
    return {"=": left == right, "<": left < right, ">": left > right}[op]


def _agg_vars(space: ProblemSpace, info: HavingInfo, copies: int) -> list[Linear]:
    assert info.attr is not None
    return [space.attr_var(info.attr, copy) for copy in range(copies)]


def force_having(
    space: ProblemSpace,
    info: HavingInfo,
    op: str,
    copies: int,
) -> list[Formula] | None:
    """Constraints making ``info.agg op info.constant`` true on the group.

    Returns None when infeasible for this copy count (only COUNT-style
    constraints depend on cardinality alone).
    """
    func = info.agg.func
    constant = builders.const(info.constant)
    if func == "COUNT":
        if not _holds(op, copies, info.constant):
            return None
        conds: list[Formula] = []
        if info.agg.distinct and info.attr is not None:
            values = _agg_vars(space, info, copies)
            for i, first in enumerate(values):
                for second in values[i + 1:]:
                    conds.append(builders.ne(first, second))
        return conds
    values = _agg_vars(space, info, copies)
    if func in ("SUM", "AVG"):
        conds = []
        if info.agg.distinct:
            for i, first in enumerate(values):
                for second in values[i + 1:]:
                    conds.append(builders.ne(first, second))
        total = values[0]
        for value in values[1:]:
            total = total + value
        target = (
            builders.const(info.constant * copies)
            if func == "AVG"
            else constant
        )
        conds.append(builders.compare(op, total, target))
        return conds
    if func in ("MIN", "MAX"):
        bound = builders.ge if func == "MIN" else builders.le
        strict_out = builders.lt if func == "MIN" else builders.gt
        conds = []
        if op == "=":
            # Some value hits the constant exactly; witnesses are chosen
            # existentially so several conjuncts' witnesses never collide
            # on a fixed tuple index.
            conds.append(
                builders.exists(
                    [builders.eq(value, constant) for value in values],
                    f"having-witness:{func}=",
                )
            )
            for value in values:
                conds.append(bound(value, constant))
        elif (op == "<") == (func == "MIN"):
            # One witness value past the constant decides the extremum
            # (MIN < c needs one value below c; MAX > c one above).
            conds.append(
                builders.exists(
                    [strict_out(value, constant) for value in values],
                    f"having-witness:{func}{op}",
                )
            )
        else:
            # Every value must be on the far side (MIN > c, MAX < c).
            far = builders.gt if op == ">" else builders.lt
            for value in values:
                conds.append(far(value, constant))
        return conds
    raise AssertionError(f"unexpected aggregate {func}")


def _pick_copies(
    target: HavingInfo, case_op: str, others: list[HavingInfo]
) -> int | None:
    """A copy count satisfying the target case and every other conjunct."""
    preferred: list[int] = []
    if target.agg.func == "COUNT":
        wanted = _count_copies(case_op, target.constant)
        if wanted is None:
            return None
        preferred = [wanted]
    else:
        preferred = [2, 1, 3, 4, 5, 6]
    from repro.engine.values import sql_compare

    for copies in preferred:
        ok = True
        for other in others:
            if other.agg.func == "COUNT" and (
                sql_compare(other.op, copies, other.constant) is not True
            ):
                ok = False
                break
        if ok:
            return copies
    return None


def _base_constraints(space: ProblemSpace, copies: int) -> list[Formula]:
    aq = space.aq
    conds: list[Formula] = []
    for copy in range(copies):
        for ec in aq.eq_classes:
            conds.extend(space.eq_class_conditions(ec, copy=copy))
        for info in aq.selections + aq.other_joins:
            conds.append(space.pred_formula(info.pred, copy=copy))
    for attr in aq.group_by:
        for copy in range(copies - 1):
            conds.append(
                builders.eq(
                    space.attr_var(attr, copy), space.attr_var(attr, copy + 1)
                )
            )
    return conds


def satisfy_all(space: ProblemSpace, copies: int) -> list[Formula] | None:
    """Constraints making every HAVING conjunct true (None if impossible)."""
    conds: list[Formula] = []
    for info in space.aq.having:
        op = info.op
        if op in _CASES:
            forced = force_having(space, info, op, copies)
        else:
            # <=, >= and <> are implied by one of the three basic cases.
            fallback = {"<=": "=", ">=": "=", "<>": "<"}[op]
            forced = force_having(space, info, fallback, copies)
        if forced is None:
            return None
        conds.extend(forced)
    return conds


def specs(aq: AnalyzedQuery) -> tuple[list[DatasetSpec], list[SkippedTarget]]:
    """Three aggregate-forcing dataset specs per HAVING conjunct."""
    out: list[DatasetSpec] = []
    skipped: list[SkippedTarget] = []
    for index, info in enumerate(aq.having):
        others = [h for i, h in enumerate(aq.having) if i != index]
        for case_op in _CASES:
            target = f"having:{info.pred} force {case_op}"
            copies = _pick_copies(info, case_op, others)
            if copies is None:
                skipped.append(
                    SkippedTarget("having", target, "structurally-equivalent")
                )
                continue

            def build(
                space: ProblemSpace,
                info=info,
                case_op=case_op,
                copies=copies,
                others=tuple(others),
            ) -> list[Formula]:
                conds = _base_constraints(space, copies)
                contradiction = builders.eq(builders.const(0), builders.const(1))
                forced = force_having(space, info, case_op, copies)
                if forced is None:
                    # _pick_copies resolved COUNT feasibility; reaching
                    # here means an inconsistent combination -> UNSAT.
                    return conds + [contradiction]
                conds.extend(forced)
                for other in others:
                    other_op = (
                        other.op
                        if other.op in _CASES
                        else {"<=": "=", ">=": "=", "<>": "<"}[other.op]
                    )
                    other_forced = force_having(space, other, other_op, copies)
                    if other_forced is None:
                        conds.append(contradiction)
                    else:
                        conds.extend(other_forced)
                return conds

            out.append(
                DatasetSpec(
                    group="having",
                    target=target,
                    purpose=(
                        f"kill HAVING comparison mutants of '{info.pred}': "
                        f"group whose {info.agg} is {case_op} {info.constant}"
                    ),
                    build=build,
                    copies=copies,
                )
            )
    return out, skipped
