"""genDBConstraints(): primary-key, foreign-key and domain constraints.

Implements Section V-B:

* **Primary keys** become functional-dependency ("chase") constraints: if
  two slots agree on the key they agree on every attribute.  The paper
  deliberately does *not* force key values distinct, so the solver may
  collapse two slots into one tuple; exact duplicates are eliminated at
  assembly time.
* **Foreign keys** become bounded FORALL/EXISTS constraints: every
  referencing slot's key must equal some referenced slot's key.  Foreign
  keys into relations with no slots (not in the query) are closed at
  assembly time instead.
* **Domains** are handled through the solver's preferred-value machinery
  at variable-declaration time (see :class:`ProblemSpace`).
"""

from __future__ import annotations

from repro.core.tuplespace import ProblemSpace
from repro.solver import builders
from repro.solver.terms import Formula


def primary_key_constraints(space: ProblemSpace) -> list[Formula]:
    """FD-chase constraints for every multi-slot table with a primary key."""
    out: list[Formula] = []
    schema = space.aq.schema
    for table, size in space.sizes.items():
        if size < 2:
            continue
        schema_table = schema.table(table)
        if not schema_table.primary_key:
            continue
        key_cols = list(schema_table.primary_key)
        other_cols = [
            c for c in schema_table.column_names if c not in set(key_cols)
        ]
        instances = []
        for i in range(size):
            for j in range(i + 1, size):
                key_equal = builders.conj(
                    [
                        builders.eq(space.var(table, i, c), space.var(table, j, c))
                        for c in key_cols
                    ]
                )
                rest_equal = builders.conj(
                    [
                        builders.eq(space.var(table, i, c), space.var(table, j, c))
                        for c in other_cols
                    ]
                )
                instances.append(builders.implies(key_equal, rest_equal))
        if instances:
            out.append(builders.forall(instances, f"pk:{table}"))
    return out


def foreign_key_constraints(space: ProblemSpace) -> list[Formula]:
    """FORALL-EXISTS subset constraints for in-query foreign keys."""
    out: list[Formula] = []
    schema = space.aq.schema
    for fk in schema.foreign_keys():
        if not space.in_query(fk.table) or not space.in_query(fk.ref_table):
            continue
        for i in space.table_slots(fk.table):
            if any(
                (fk.table, i, col) in space.forced_nulls for col in fk.columns
            ):
                # A NULL foreign key satisfies the constraint (Sec V-H).
                continue
            choices = []
            for j in space.table_slots(fk.ref_table):
                choices.append(
                    builders.conj(
                        [
                            builders.eq(
                                space.var(fk.table, i, col),
                                space.var(fk.ref_table, j, ref_col),
                            )
                            for col, ref_col in fk.column_pairs()
                        ]
                    )
                )
            out.append(
                builders.exists(
                    choices, f"fk:{fk.table}[{i}]->{fk.ref_table}"
                )
            )
    return out


def db_constraints(space: ProblemSpace) -> list[Formula]:
    """All database constraints for the current tuple space."""
    return primary_key_constraints(space) + foreign_key_constraints(space)


def add_fk_support_slots(space: ProblemSpace, table: str, column: str) -> None:
    """Ensure referenced tables can absorb a dangling value chain.

    When a dataset nullifies ``table.column`` (or forces it away from the
    joined value), slots of ``table`` still carry *some* value in that
    column; if the column is a foreign key into an in-query table, that
    table needs a spare tuple to hold the off-value key — and so on down
    the foreign-key chain (Section V-B's extra-tuple construction).
    """
    schema = space.aq.schema
    seen: set[tuple[str, str]] = set()
    frontier = [(table, column)]
    while frontier:
        src_table, src_col = frontier.pop()
        if (src_table, src_col) in seen:
            continue
        seen.add((src_table, src_col))
        for fk in schema.foreign_keys():
            if fk.table != src_table or src_col not in fk.columns:
                continue
            if not space.in_query(fk.ref_table):
                continue
            space.add_support_slot(fk.ref_table)
            position = fk.columns.index(src_col)
            frontier.append((fk.ref_table, fk.ref_columns[position]))
