"""Join-order space: all join trees equivalent to the given query.

Section II defines join-type mutations over *every* relational-algebra
tree derivable from the FROM clause, with attribute equivalence classes
supplying derived join conditions (Fig. 2: ``A.x = B.x AND B.x = C.x``
admits the tree ``(A join C) join B`` because ``A.x = C.x`` is implied).

For inner-join queries we enumerate every unordered binary tree whose
internal nodes join *connected* sub-sets of the join graph (no cross
products are introduced), assign each node the equivalence-class and
residual join conditions that first become applicable there, and push
selections to the leaves (equivalent for inner joins, and the placement
the paper mutates under).

Queries containing outer joins are not freely reorderable; for those the
space is the written join tree only (mutated node by node), matching the
paper's experimental treatment.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.core.analyze import AnalyzedQuery
from repro.engine.plan import (
    AggregateNode,
    JoinNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SelectNode,
)
from repro.errors import GenerationError
from repro.sql.ast import ColumnRef, Comparison, JoinKind


# ---------------------------------------------------------------------------
# Shape trees
# ---------------------------------------------------------------------------


class Shape:
    """Marker base for join-tree shapes (bindings only, no join types)."""

    __slots__ = ()


@dataclass(frozen=True)
class LeafShape(Shape):
    binding: str

    @property
    def bindings(self) -> frozenset[str]:
        return frozenset({self.binding})


@dataclass(frozen=True)
class NodeShape(Shape):
    left: Shape
    right: Shape

    @property
    def bindings(self) -> frozenset[str]:
        return self.left.bindings | self.right.bindings


def shape_nodes(shape: Shape) -> list[NodeShape]:
    """All internal nodes of a shape, outermost first."""
    if isinstance(shape, LeafShape):
        return []
    assert isinstance(shape, NodeShape)
    return [shape] + shape_nodes(shape.left) + shape_nodes(shape.right)


# ---------------------------------------------------------------------------
# Join graph + enumeration
# ---------------------------------------------------------------------------


class JoinGraph:
    """Connectivity structure over query bindings."""

    def __init__(self, aq: AnalyzedQuery):
        self.aq = aq
        self.nodes = list(aq.bindings)
        self._adjacent: dict[str, set[str]] = {b: set() for b in self.nodes}
        groups: list[frozenset[str]] = []
        for ec in aq.eq_classes:
            groups.append(frozenset(attr.binding for attr in ec))
        for pred in aq.other_joins:
            groups.append(pred.bindings)
        for group in groups:
            for a, b in itertools.combinations(sorted(group), 2):
                self._adjacent[a].add(b)
                self._adjacent[b].add(a)

    def connected(self, subset: frozenset[str]) -> bool:
        if not subset:
            return False
        seen = {next(iter(subset))}
        frontier = list(seen)
        while frontier:
            node = frontier.pop()
            for other in self._adjacent[node]:
                if other in subset and other not in seen:
                    seen.add(other)
                    frontier.append(other)
        return seen == subset

    def joinable(self, left: frozenset[str], right: frozenset[str]) -> bool:
        """True when a join condition is available across the two sides."""
        union = left | right
        for ec in self.aq.eq_classes:
            members = {attr.binding for attr in ec}
            if members & left and members & right:
                return True
        for pred in self.aq.other_joins:
            if (
                pred.bindings <= union
                and pred.bindings & left
                and pred.bindings & right
            ):
                return True
        return False


def enumerate_shapes(aq: AnalyzedQuery, cap: int = 20000) -> list[Shape]:
    """All unordered join-tree shapes over the query's join graph.

    Raises:
        GenerationError: If the shape count exceeds ``cap`` (documented
            guard; the benchmark queries stay far below it).
    """
    graph = JoinGraph(aq)
    order = sorted(graph.nodes)
    memo: dict[frozenset[str], list[Shape]] = {}

    def trees(subset: frozenset[str]) -> list[Shape]:
        if subset in memo:
            return memo[subset]
        members = sorted(subset)
        if len(members) == 1:
            memo[subset] = [LeafShape(members[0])]
            return memo[subset]
        result: list[Shape] = []
        anchor = members[0]
        rest = members[1:]
        # Every unordered split: the anchor stays on the left side.
        for size in range(0, len(rest)):
            for combo in itertools.combinations(rest, size):
                left = frozenset({anchor, *combo})
                right = subset - left
                if not right:
                    continue
                if not graph.connected(left) or not graph.connected(right):
                    continue
                if not graph.joinable(left, right):
                    continue
                for lt in trees(left):
                    for rt in trees(right):
                        result.append(NodeShape(lt, rt))
                        if len(result) > cap:
                            raise GenerationError(
                                f"join-order space exceeds cap of {cap} trees"
                            )
        memo[subset] = result
        return result

    return trees(frozenset(order))


# ---------------------------------------------------------------------------
# Conditions per node
# ---------------------------------------------------------------------------


def node_conditions(aq: AnalyzedQuery, node: NodeShape) -> list[Comparison]:
    """Join conditions first applicable at ``node``.

    For each equivalence class straddling the node, one representative
    equality; every deeper straddle got its own equality lower down, so
    the conjunction over the whole tree implies the full class.
    """
    left = node.left.bindings
    right = node.right.bindings
    union = left | right
    conditions: list[Comparison] = []
    for ec in aq.eq_classes:
        left_members = sorted(a for a in ec if a.binding in left)
        right_members = sorted(a for a in ec if a.binding in right)
        if left_members and right_members:
            la, ra = left_members[0], right_members[0]
            conditions.append(
                Comparison(
                    "=",
                    ColumnRef(la.binding, la.column),
                    ColumnRef(ra.binding, ra.column),
                )
            )
    for pred in aq.other_joins:
        if (
            pred.bindings <= union
            and pred.bindings & left
            and pred.bindings & right
        ):
            conditions.append(pred.pred)
    return conditions


# ---------------------------------------------------------------------------
# Shape -> plan
# ---------------------------------------------------------------------------


def shape_to_plan(
    aq: AnalyzedQuery,
    shape: Shape,
    kinds: dict[NodeShape, JoinKind] | None = None,
) -> PlanNode:
    """Compile a shape into an executable plan.

    ``kinds`` overrides individual nodes' join types (default INNER) —
    this is how join-type mutants are materialised.  Selections are pushed
    to the leaves; the select list / aggregation of the analyzed query
    goes on top.
    """
    kinds = kinds or {}

    def build(node: Shape) -> PlanNode:
        if isinstance(node, LeafShape):
            occurrence = aq.occurrences[node.binding]
            plan: PlanNode = ScanNode(occurrence.table, node.binding)
            selections = [
                info.pred
                for info in aq.selections
                if info.bindings == frozenset({node.binding})
            ]
            selections.extend(
                info.pred
                for info in aq.null_tests
                if info.attr.binding == node.binding
            )
            if selections:
                plan = SelectNode(plan, tuple(selections))
            return plan
        assert isinstance(node, NodeShape)
        kind = kinds.get(node, JoinKind.INNER)
        return JoinNode(
            kind, build(node.left), build(node.right),
            tuple(node_conditions(aq, node)),
        )

    plan = build(shape)
    query = aq.query
    if aq.group_by or aq.aggregates or query.having:
        return AggregateNode(
            plan,
            tuple(query.group_by),
            tuple(query.select_items),
            tuple(query.having),
        )
    return ProjectNode(plan, tuple(query.select_items), query.distinct)
