"""Dataset specifications: one targeted mutation group each.

Every kill-* procedure emits :class:`DatasetSpec` objects; the generator
runs them through a common pipeline (allocate slots -> add support slots
-> emit constraints -> solve -> assemble).  A spec whose constraints are
unsatisfiable corresponds to an *equivalent* mutation group (the paper's
Section V-B observation) and is reported, not errored.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.tuplespace import ProblemSpace
from repro.solver.terms import Formula


@dataclass
class DatasetSpec:
    """A recipe for one dataset.

    Attributes:
        group: Which procedure produced it ('original', 'eqclass',
            'predicate', 'comparison', 'aggregate').
        target: Machine-readable description of the targeted mutation
            group (e.g. ``ec:{i.id,t.id} nullify t.id``).
        purpose: Human-readable sentence for test-suite reports.
        copies: Tuple-set copies per occurrence (3 for aggregation).
        support_columns: (table, column) pairs whose FK chains need spare
            referenced tuples (Section V-B).
        build: Called with the finalized :class:`ProblemSpace`; returns
            the job-specific constraint formulas.
        relaxations: Optional fallback builders, tried in order when the
            primary constraint set is UNSAT (Algorithm 4's
            drop-inconsistent-sets loop).  Each entry is (note, build).
    """

    group: str
    target: str
    purpose: str
    build: Callable[[ProblemSpace], list[Formula]]
    copies: int = 1
    support_columns: list[tuple[str, str]] = field(default_factory=list)
    #: Indices into the analyzed query's null_tests whose polarity this
    #: dataset deliberately inverts (the IS NULL violation datasets).
    flip_null_tests: frozenset[int] = frozenset()
    relaxations: list[tuple[str, Callable[[ProblemSpace], list[Formula]]]] = field(
        default_factory=list
    )

    def skeleton_signature(
        self, space: ProblemSpace, use_fk_support_slots: bool = True
    ) -> tuple:
        """Cache key of the compiled query skeleton this spec solves under.

        Two specs share a skeleton (DESIGN.md §5j) exactly when their
        shared constraint systems coincide: the copy count and support
        columns determine the declared slot set *and its declaration
        order*, and the forced-null triples select which foreign-key
        constraints the shared system contains.  ``space`` must be the
        finalized problem space of the attempt (its ``forced_nulls``
        are only complete after the build closures and null tests ran).
        """
        support = (
            tuple(self.support_columns) if use_fk_support_slots else ()
        )
        return (space.copies, support, frozenset(space.forced_nulls))


@dataclass
class SkippedTarget:
    """A mutation group for which no dataset exists.

    The ``reason`` taxonomy (see DESIGN.md §5d):

    * ``'unsat'`` — the solver proved the constraints inconsistent (e.g.
      a foreign key conflicting with a NOT EXISTS); the mutation group
      is equivalent.  Not a failure.
    * ``'budget'`` — every attempt on the retry ladder exhausted a node
      or wall-clock budget; the group *may* be killable with more
      effort.  A degradation, not an equivalence proof.
    * ``'error:<TypeName>'`` — an unexpected exception escaped an
      attempt; the pipeline isolated it instead of aborting the suite.
    * anything else (e.g. ``'structurally-equivalent'`` or a free-text
      explanation) — the deriving procedure proved the group equivalent
      or out of scope without calling the solver.

    Attributes:
        detail: Human-readable elaboration of ``reason`` (the budget
            that tripped, the error message, ...).
        elapsed: Wall-clock seconds spent on this target before giving
            up (0 for targets skipped without solving).
        attempts: Solve attempts made before giving up (0 for targets
            skipped without solving).
    """

    group: str
    target: str
    reason: str
    detail: str = ""
    elapsed: float = 0.0
    attempts: int = 0

    @property
    def is_degraded(self) -> bool:
        """True when the skip reflects a failure, not an equivalence."""
        return self.reason == "budget" or self.reason.startswith("error:")
