"""Dataset specifications: one targeted mutation group each.

Every kill-* procedure emits :class:`DatasetSpec` objects; the generator
runs them through a common pipeline (allocate slots -> add support slots
-> emit constraints -> solve -> assemble).  A spec whose constraints are
unsatisfiable corresponds to an *equivalent* mutation group (the paper's
Section V-B observation) and is reported, not errored.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.tuplespace import ProblemSpace
from repro.solver.terms import Formula


@dataclass
class DatasetSpec:
    """A recipe for one dataset.

    Attributes:
        group: Which procedure produced it ('original', 'eqclass',
            'predicate', 'comparison', 'aggregate').
        target: Machine-readable description of the targeted mutation
            group (e.g. ``ec:{i.id,t.id} nullify t.id``).
        purpose: Human-readable sentence for test-suite reports.
        copies: Tuple-set copies per occurrence (3 for aggregation).
        support_columns: (table, column) pairs whose FK chains need spare
            referenced tuples (Section V-B).
        build: Called with the finalized :class:`ProblemSpace`; returns
            the job-specific constraint formulas.
        relaxations: Optional fallback builders, tried in order when the
            primary constraint set is UNSAT (Algorithm 4's
            drop-inconsistent-sets loop).  Each entry is (note, build).
    """

    group: str
    target: str
    purpose: str
    build: Callable[[ProblemSpace], list[Formula]]
    copies: int = 1
    support_columns: list[tuple[str, str]] = field(default_factory=list)
    #: Indices into the analyzed query's null_tests whose polarity this
    #: dataset deliberately inverts (the IS NULL violation datasets).
    flip_null_tests: frozenset[int] = frozenset()
    relaxations: list[tuple[str, Callable[[ProblemSpace], list[Formula]]]] = field(
        default_factory=list
    )


@dataclass
class SkippedTarget:
    """A mutation group for which no dataset exists.

    ``reason='structurally-equivalent'`` means the procedure proved the
    group equivalent without calling the solver (Algorithm 2's empty-P
    case); ``reason='unsat'`` means the solver found the constraints
    inconsistent (e.g. a foreign key conflicting with a NOT EXISTS).
    """

    group: str
    target: str
    reason: str
