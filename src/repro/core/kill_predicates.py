"""killOtherPredicates() — Algorithm 3.

For every non-equijoin join predicate ``p`` (e.g. ``B.x = C.x + 10``) and
every relation ``r`` participating in it, generate a dataset in which no
tuple of ``r``'s relation satisfies ``p`` against the other relations'
tuples (genNotExists), while every equivalence class and every other
predicate is satisfied so the difference reaches the root.

Selection conjuncts are handled by :mod:`repro.core.kill_comparison`,
whose "violated" datasets play Algorithm 3's role for selections while
keeping the total at three datasets per conjunct as Table II reports.
"""

from __future__ import annotations

from repro.core.analyze import AnalyzedQuery
from repro.core.spec import DatasetSpec, SkippedTarget
from repro.core.tuplespace import ProblemSpace
from repro.sql.ast import ColumnRef, Comparison, comparison_columns
from repro.solver.terms import Formula


def _pred_columns_of_binding(pred: Comparison, binding: str) -> list[str]:
    return [
        ref.column
        for ref in comparison_columns(pred)
        if isinstance(ref, ColumnRef) and ref.table == binding
    ]


def specs(
    aq: AnalyzedQuery, groupby_distinct: bool = True
) -> tuple[list[DatasetSpec], list[SkippedTarget]]:
    out: list[DatasetSpec] = []
    for info in aq.other_joins:
        for binding in sorted(info.bindings):
            target = f"pred:{info.pred} nullify {binding}"
            table = aq.table_of(binding)
            support = [
                (table, column)
                for column in _pred_columns_of_binding(info.pred, binding)
            ]

            def build(
                space: ProblemSpace, pred=info.pred, binding=binding
            ) -> list[Formula]:
                conds: list[Formula] = [space.not_exists_pred(pred, binding)]
                for ec in space.aq.eq_classes:
                    conds.extend(space.eq_class_conditions(ec))
                for other in space.aq.selections + space.aq.other_joins:
                    if other.pred == pred:
                        continue
                    conds.append(space.pred_formula(other.pred))
                return conds

            relaxations = []
            if aq.group_by and groupby_distinct:
                base_build = build

                def with_distinct(space: ProblemSpace, base_build=base_build):
                    return base_build(space) + space.groupby_distinctness()

                relaxations = [("without group-by distinctness", build)]
                build = with_distinct

            out.append(
                DatasetSpec(
                    group="predicate",
                    target=target,
                    purpose=(
                        f"kill join-type mutants on {info.pred}: no tuple of "
                        f"{binding} satisfies the condition against the others"
                    ),
                    build=build,
                    support_columns=support,
                    relaxations=relaxations,
                )
            )
    return out, []
