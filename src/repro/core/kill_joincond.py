"""Anti-coincidence datasets for join-condition mutants (extension).

A wrong-attribute mutant (``t.sec_id = c.course_id`` instead of
``t.course_id = c.course_id``) survives exactly when, on every dataset,
the wrong column *coincidentally* carries the joining value.  The staple
datasets plus value rotation usually prevent that, but not provably; this
extension generates, per equi-join conjunct, one dataset in which the
original query is satisfied while **every type-compatible sibling column
refuses the joining value**, so each wrong-attribute mutant produces an
empty (different) result.

Missing-conjunct mutants need no extra datasets: every equivalence-class
nullification dataset already has tuples that fail one conjunct while
satisfying the rest, which a dropped conjunct turns back into result rows
(asserted in tests/test_joincond.py).
"""

from __future__ import annotations

from repro.core.analyze import AnalyzedQuery
from repro.core.spec import DatasetSpec, SkippedTarget
from repro.core.tuplespace import ProblemSpace
from repro.mutation.joincond import _compatible_columns, _equijoin_positions
from repro.solver import builders
from repro.solver.terms import Formula
from repro.sql.ast import ColumnRef


def specs(aq: AnalyzedQuery) -> tuple[list[DatasetSpec], list[SkippedTarget]]:
    """One anti-coincidence dataset spec per equi-join conjunct."""
    out: list[DatasetSpec] = []
    for position in _equijoin_positions(aq):
        pred = aq.query.where[position]
        alternatives: list[tuple[ColumnRef, str]] = []
        for side in ("left", "right"):
            ref: ColumnRef = getattr(pred, side)
            for other in _compatible_columns(aq, ref.table, ref.column):
                alternatives.append((ref, other))
        if not alternatives:
            continue

        def build(
            space: ProblemSpace,
            pred=pred,
            alternatives=tuple(alternatives),
        ) -> list[Formula]:
            conds: list[Formula] = []
            for ec in space.aq.eq_classes:
                conds.extend(space.eq_class_conditions(ec))
            for info in space.aq.selections + space.aq.other_joins:
                conds.append(space.pred_formula(info.pred))
            # The joining value of this conjunct, at the left operand.
            left: ColumnRef = pred.left
            join_value = space.var(
                space.aq.table_of(left.table),
                space.slot_of(left.table),
                left.column,
            )
            anti = []
            for ref, other_column in alternatives:
                table = space.aq.table_of(ref.table)
                var = space.var(table, space.slot_of(ref.table), other_column)
                anti.append(builders.ne(var, join_value))
            return conds + anti

        # If the sibling constraints conflict (e.g. a sibling is chained
        # to the join value by another condition), fall back to dropping
        # them pairwise is overkill — dropping all yields the plain
        # original dataset, which is redundant; report as skipped instead.
        out.append(
            DatasetSpec(
                group="joincond",
                target=f"joincond:{pred} anti-coincidence",
                purpose=(
                    f"kill wrong-attribute mutants of '{pred}': sibling "
                    f"columns refuse the joining value"
                ),
                build=build,
            )
        )
    return out, []
