"""killComparisonOperators() — Section V-E.

Three datasets per selection conjunct suffice to kill every comparison
operator mutant: one where the operands are *equal*, one where the left
operand is *less*, one where it is *greater*.  The truth vectors of the
six operators over these three datasets are pairwise distinct::

        =: (T,F,F)   <: (F,T,F)   >: (F,F,T)
       <=: (T,T,F)  >=: (T,F,T)  <>: (F,T,T)

so any operator mutation flips the query result on at least one dataset.
All other predicates, equivalence classes and database constraints are
kept satisfied so the flip is visible at the root.  The two "violated"
datasets double as Algorithm 3's no-tuple-satisfies-the-selection
datasets, which Example 2 needs for join mutants under foreign keys.

String-typed conjuncts use the same three cases: the solver's
rank-preserving symbol interning makes lexicographic order constraints
(``name < 'M'``) directly solvable.
"""

from __future__ import annotations

from repro.core.analyze import AnalyzedQuery, PredInfo
from repro.core.spec import DatasetSpec, SkippedTarget
from repro.core.tuplespace import ProblemSpace
from repro.sql.ast import ColumnRef, Literal, comparison_columns
from repro.solver.terms import Formula

#: Forced relations per dataset, in generation order.
NUMERIC_CASES = ("=", "<", ">")
STRING_CASES = NUMERIC_CASES


def _is_string_conjunct(aq: AnalyzedQuery, info: PredInfo) -> bool:
    for side in (info.pred.left, info.pred.right):
        if isinstance(side, ColumnRef):
            from repro.core.attrs import Attr

            if aq.attr_type(Attr(side.table, side.column)).is_textual:
                return True
        if isinstance(side, Literal) and isinstance(side.value, str):
            return True
    return False


def specs(aq: AnalyzedQuery) -> tuple[list[DatasetSpec], list[SkippedTarget]]:
    """Three dataset specs per selection conjunct (two for the degenerate cases)."""
    out: list[DatasetSpec] = []
    for info in aq.selections:
        cases = STRING_CASES if _is_string_conjunct(aq, info) else NUMERIC_CASES
        # The "violated" cases may force a foreign-key column away from the
        # referenced tuple's value (Example 2); give the chain spare tuples.
        support = [
            (aq.table_of(ref.table), ref.column)
            for ref in comparison_columns(info.pred)
        ]
        for case_op in cases:

            def build(space: ProblemSpace, pred=info.pred, case_op=case_op) -> list[Formula]:
                conds: list[Formula] = [space.pred_formula(pred, op=case_op)]
                for ec in space.aq.eq_classes:
                    conds.extend(space.eq_class_conditions(ec))
                for other in space.aq.selections + space.aq.other_joins:
                    if other.pred == pred:
                        continue
                    conds.append(space.pred_formula(other.pred))
                return conds

            out.append(
                DatasetSpec(
                    group="comparison",
                    target=f"cmp:{info.pred} force {case_op}",
                    purpose=(
                        f"kill comparison-operator mutants of '{info.pred}': "
                        f"dataset where the operands satisfy '{case_op}'"
                    ),
                    build=build,
                    support_columns=list(support),
                )
            )
    return out, []
