"""Exception hierarchy for the XData reproduction.

Every error raised by the library derives from :class:`XDataError`, so
callers can catch one type at an API boundary.  Substrate-specific errors
(SQL parsing, schema validation, engine execution, constraint solving)
carry enough context to be actionable without a debugger.
"""

from __future__ import annotations


class XDataError(Exception):
    """Base class for all errors raised by this library."""


class SqlError(XDataError):
    """Base class for errors in the SQL substrate."""


class LexError(SqlError):
    """Raised when the lexer encounters an unrecognised character sequence.

    Attributes:
        text: The full input text being tokenised.
        position: Byte offset of the offending character.
    """

    def __init__(self, message: str, text: str = "", position: int = 0):
        super().__init__(message)
        self.text = text
        self.position = position


class ParseError(SqlError):
    """Raised when the parser cannot derive a query from the token stream.

    Attributes:
        token: The token at which parsing failed (may be ``None`` at EOF).
    """

    def __init__(self, message: str, token=None):
        super().__init__(message)
        self.token = token


class UnsupportedSqlError(SqlError):
    """Raised for syntactically valid SQL outside the supported class.

    The paper's query class (assumptions A1-A8) excludes nested subqueries,
    HAVING, IS NULL tests, and non-conjunctive predicates; such inputs are
    rejected explicitly rather than silently mis-handled.
    """


class SchemaError(XDataError):
    """Raised for malformed or inconsistent schema definitions."""


class CatalogError(SchemaError):
    """Raised when a query references tables/columns absent from the schema."""


class EngineError(XDataError):
    """Base class for relational-engine errors."""


class IntegrityError(EngineError):
    """Raised when a database instance violates PK/FK/domain constraints.

    Attributes:
        violations: Human-readable descriptions of every violation found.
    """

    def __init__(self, message: str, violations=None):
        super().__init__(message)
        self.violations = list(violations or [])


class ExecutionError(EngineError):
    """Raised when query execution fails (type mismatch, missing column)."""


class SolverError(XDataError):
    """Base class for constraint-solver errors."""


class UnsatisfiableError(SolverError):
    """Raised by APIs that require a model when the constraints are UNSAT.

    An unsatisfiable constraint set is *not* an error inside the generator
    (it signals an equivalent mutation group, per the paper); this exception
    only surfaces from convenience entry points that promise a model.
    """


class SolverLimitError(SolverError):
    """Raised when the solver exceeds its configured search budget.

    Carries the budget structurally (not just in the message) so callers
    can report effort and distinguish budget kinds:

    Attributes:
        kind: Which budget tripped — ``"nodes"`` (node limit),
            ``"deadline"`` (wall-clock deadline), or ``"restarts"``
            (lazy-instantiation restart cap).
        nodes: Search nodes explored before the trip.
        limit: The configured limit for ``kind`` (node count, seconds,
            or restart count); ``None`` when unknown.
        elapsed: Wall-clock seconds spent before the trip.
    """

    def __init__(
        self,
        message: str,
        kind: str = "nodes",
        nodes: int = 0,
        limit=None,
        elapsed: float = 0.0,
    ):
        super().__init__(message)
        self.kind = kind
        self.nodes = nodes
        self.limit = limit
        self.elapsed = elapsed


class GenerationError(XDataError):
    """Raised when dataset generation fails for reasons other than UNSAT."""


class PoolDegradedWarning(RuntimeWarning):
    """Emitted when the process-pool fan-out degrades to a sequential run.

    Degradation preserves results (parallelism is a throughput lever,
    never a correctness requirement) but callers monitoring throughput —
    or tests asserting that the pool actually ran — need the signal.
    """
