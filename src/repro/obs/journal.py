"""The JSON-lines run journal (DESIGN.md §5e).

A journal is the forensic record of one or more ``generate()`` runs:
one JSON object per line, flushed as it is written, so a crashed or
deadline-killed run leaves every event up to the failure on disk.

Event schema (``schema`` names the journal format version):

* ``{"event": "run_start", "v": 1, "ts": <unix>, "sql": <str|null>}``
  — opens a run.
* ``{"event": "span", "name": ..., "path": "generate/solve/attempt",
  "status": ..., "elapsed_s": ..., "start_s": ..., "attrs": {...}}``
  — one per span *close*, children before parents; ``path`` is the
  ``/``-joined span names from the root.  Every derived spec appears as
  a ``solve`` span whose status is ``completed``, ``skipped:<reason>``
  or ``killed-by-deadline`` (the suite budget expired before the spec
  was ever attempted).
* ``{"event": "run_end", "ts": ..., "elapsed_s": ..., "ok": <bool>,
  "health": {...}, "metrics": {...}}`` — closes a run normally.
* ``{"event": "run_abort", "ts": ..., "error": "<Type>: <message>"}``
  — closes a run that raised (``fail_fast`` aborts land here).

The differential fuzzing campaign (DESIGN.md §5i) appends its own event
family into the same format: ``campaign_start`` / ``campaign_round`` /
``campaign_bug`` / ``campaign_checkpoint`` / ``campaign_end``.  A
``campaign_start`` implicitly closes any open campaign, because a
SIGKILLed campaign leaves no ``campaign_end`` and the resumed run
appends to the same journal.

The journal is append-only: successive runs (a workload's per-query
``generate()`` calls) concatenate into one file.  :func:`validate_journal`
checks both line-level well-formedness and run-level structure, and
``python -m repro.obs.journal PATH`` runs it from the command line (the
CI smoke step's checker).
"""

from __future__ import annotations

import json
import time

__all__ = ["JournalWriter", "validate_journal", "JournalError"]

#: Journal format version, stamped on every ``run_start`` event.
SCHEMA_VERSION = 1

#: Event kinds and the keys each requires (beyond ``event`` itself).
_REQUIRED_KEYS = {
    "run_start": ("v", "ts", "sql"),
    "span": ("name", "path", "status", "elapsed_s", "attrs"),
    "run_end": ("ts", "elapsed_s", "ok", "health"),
    "run_abort": ("ts", "error"),
    # -- campaign events (DESIGN.md §5i) -------------------------------
    "campaign_start": ("v", "ts", "seed", "cases", "resumed"),
    "campaign_round": ("round", "cases", "bugs", "executions"),
    "campaign_bug": ("fingerprint", "oracle", "context"),
    "campaign_checkpoint": ("round", "next_case"),
    "campaign_end": ("ts", "cases", "bugs", "ok"),
}

#: Campaign event kinds that must appear inside an open campaign.
_CAMPAIGN_KINDS = frozenset(
    k for k in _REQUIRED_KEYS if k.startswith("campaign_")
)


class JournalError(ValueError):
    """Raised by :func:`validate_journal` for a malformed journal."""


class JournalWriter:
    """Appends journal events to a JSON-lines file, flushing per event."""

    def __init__(self, path: str):
        self.path = path
        self._handle = open(path, "a", encoding="utf-8")

    def event(self, kind: str, **payload) -> None:
        record = {"event": kind, **payload}
        self._handle.write(json.dumps(record, default=str) + "\n")
        self._handle.flush()

    def run_start(self, sql: str | None) -> None:
        self.event("run_start", v=SCHEMA_VERSION, ts=time.time(), sql=sql)

    def span_sink(self, record: dict, path: str) -> None:
        """A :class:`~repro.obs.trace.Tracer` sink: one event per close.

        Children are not inlined — each span in the tree emits its own
        event, linked by ``path``.
        """
        self.event(
            "span",
            name=record["name"],
            path=path,
            status=record["status"],
            elapsed_s=record["elapsed_s"],
            start_s=record.get("start_s", 0.0),
            attrs=record["attrs"],
        )

    def run_end(self, elapsed_s: float, ok: bool, health: dict,
                metrics: dict | None = None) -> None:
        self.event(
            "run_end", ts=time.time(), elapsed_s=round(elapsed_s, 6),
            ok=ok, health=health, metrics=metrics or {},
        )

    def run_abort(self, error: BaseException) -> None:
        self.event(
            "run_abort", ts=time.time(),
            error=f"{type(error).__name__}: {error}",
        )

    # -- campaign events (appended by repro.campaign.driver) -----------

    def campaign_start(self, seed: int, cases: int, resumed: bool,
                       **extra) -> None:
        self.event(
            "campaign_start", v=SCHEMA_VERSION, ts=time.time(),
            seed=seed, cases=cases, resumed=resumed, **extra,
        )

    def campaign_round(self, round: int, cases: int, bugs: int,
                       executions: int, **extra) -> None:
        self.event(
            "campaign_round", round=round, cases=cases, bugs=bugs,
            executions=executions, **extra,
        )

    def campaign_bug(self, fingerprint: str, oracle: str, context: str,
                     **extra) -> None:
        self.event(
            "campaign_bug", fingerprint=fingerprint, oracle=oracle,
            context=context, **extra,
        )

    def campaign_checkpoint(self, round: int, next_case: int,
                            **extra) -> None:
        self.event(
            "campaign_checkpoint", round=round, next_case=next_case, **extra
        )

    def campaign_end(self, cases: int, bugs: int, ok: bool,
                     **extra) -> None:
        self.event(
            "campaign_end", ts=time.time(), cases=cases, bugs=bugs,
            ok=ok, **extra,
        )

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()


def validate_journal(source, require_complete: bool = True) -> list[dict]:
    """Parse and structurally validate a journal; return its events.

    Args:
        source: A file path, or an iterable of JSON-lines strings.
        require_complete: Also require run-level balance — every
            ``run_start`` matched by a ``run_end`` or ``run_abort``
            before end of file.  Pass ``False`` when inspecting the
            journal of a run that crashed outright (the whole point of
            the journal is that its prefix is still valid).

    Raises:
        JournalError: On the first malformed line or structural
            violation, naming the line number.
    """
    if isinstance(source, str):
        with open(source, encoding="utf-8") as handle:
            lines = handle.readlines()
    else:
        lines = list(source)

    events: list[dict] = []
    open_run = False
    open_campaign = False
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            raise JournalError(f"line {number}: not valid JSON ({exc})")
        if not isinstance(event, dict):
            raise JournalError(f"line {number}: event is not an object")
        kind = event.get("event")
        if kind not in _REQUIRED_KEYS:
            raise JournalError(f"line {number}: unknown event kind {kind!r}")
        missing = [key for key in _REQUIRED_KEYS[kind] if key not in event]
        if missing:
            raise JournalError(
                f"line {number}: {kind} event missing keys {missing}"
            )
        if kind in _CAMPAIGN_KINDS:
            # ``campaign_start`` implicitly closes an open campaign: a
            # SIGKILL leaves no ``campaign_end``, and the resumed run
            # appends its own ``campaign_start`` to the same journal.
            if kind == "campaign_start":
                open_campaign = True
            elif not open_campaign:
                raise JournalError(
                    f"line {number}: {kind} event outside any campaign"
                )
            elif kind == "campaign_end":
                open_campaign = False
        elif kind == "run_start":
            if open_run:
                raise JournalError(
                    f"line {number}: run_start inside an open run"
                )
            open_run = True
        elif not open_run:
            raise JournalError(
                f"line {number}: {kind} event outside any run"
            )
        elif kind in ("run_end", "run_abort"):
            open_run = False
        if kind == "span":
            if not isinstance(event["attrs"], dict):
                raise JournalError(f"line {number}: span attrs not an object")
            if not isinstance(event["elapsed_s"], (int, float)) or (
                event["elapsed_s"] < 0
            ):
                raise JournalError(
                    f"line {number}: span elapsed_s not a non-negative number"
                )
        events.append(event)

    if not events:
        raise JournalError("journal contains no events")
    if require_complete and open_run:
        raise JournalError("journal ends inside an open run (no run_end)")
    if require_complete and open_campaign:
        raise JournalError(
            "journal ends inside an open campaign (no campaign_end)"
        )
    return events


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.obs.journal PATH`` — validate a journal file."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.obs.journal",
        description="Validate a JSON-lines run journal.",
    )
    parser.add_argument("path", help="journal file to validate")
    parser.add_argument(
        "--allow-incomplete",
        action="store_true",
        help="accept a journal whose last run has no run_end "
        "(crash forensics)",
    )
    args = parser.parse_args(argv)
    try:
        events = validate_journal(
            args.path, require_complete=not args.allow_incomplete
        )
    except (OSError, JournalError) as exc:
        print(f"invalid journal: {exc}")
        return 1
    kinds: dict[str, int] = {}
    for event in events:
        kinds[event["event"]] = kinds.get(event["event"], 0) + 1
    solves = [
        e for e in events
        if e["event"] == "span" and e["name"] == "solve"
    ]
    statuses: dict[str, int] = {}
    for event in solves:
        statuses[event["status"]] = statuses.get(event["status"], 0) + 1
    summary = ", ".join(f"{k}={v}" for k, v in sorted(kinds.items()))
    print(f"valid journal: {len(events)} events ({summary})")
    if statuses:
        detail = ", ".join(f"{k}={v}" for k, v in sorted(statuses.items()))
        print(f"solve spans: {detail}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
