"""Observability: tracing, metrics, and the JSON-lines run journal.

See DESIGN.md §5e.  Everything here is zero-dependency and optional —
the pipeline runs identically (and the hooks cost nothing) when
``GenConfig.trace`` / ``metrics`` / ``journal_path`` are left off.
"""

from .metrics import HISTOGRAM_BOUNDS, Metrics, render_json, render_text
from .trace import NULL_TRACER, Tracer, span_path_events, walk_spans

_JOURNAL_NAMES = ("JournalError", "JournalWriter", "validate_journal")


def __getattr__(name):
    # Lazy so ``python -m repro.obs.journal`` doesn't re-execute a
    # module this package already imported (runpy's RuntimeWarning).
    if name in _JOURNAL_NAMES:
        from repro.obs import journal

        return getattr(journal, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Tracer",
    "NULL_TRACER",
    "span_path_events",
    "walk_spans",
    "Metrics",
    "HISTOGRAM_BOUNDS",
    "render_text",
    "render_json",
    "JournalWriter",
    "JournalError",
    "validate_journal",
]
