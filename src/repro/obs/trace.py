"""Nested-span tracing for the generation pipeline (DESIGN.md §5e).

A :class:`Tracer` records a tree of *spans* — named, timed segments of
work carrying structured attributes.  The generation pipeline opens one
root ``generate`` span per query with children for every stage
(``parse`` → ``analyze`` → ``derive_specs`` → per-spec ``solve`` with
one ``attempt`` child per retry-ladder rung → ``assemble``).

Spans are plain dicts from birth::

    {"name": str, "start_s": float, "elapsed_s": float,
     "status": str, "attrs": dict, "children": [span, ...]}

so they pickle across the process pool unchanged (workers collect their
attempt spans locally and ship the records back inside each
``SpecResult``; the parent grafts them into its own tree with
:meth:`Tracer.add_record`) and serialise to the JSON-lines run journal
without a conversion layer.

Disabled tracing is free by construction: :data:`NULL_TRACER` hands out
a shared no-op context manager whose record swallows every mutation, so
instrumented code needs no ``if enabled`` guards and the per-call cost
is one attribute check — the tier-1 timings are unaffected (the
acceptance benchmark bounds the overhead at 2%).
"""

from __future__ import annotations

import time

__all__ = ["Tracer", "NULL_TRACER", "span_path_events", "walk_spans"]


class _NoopAttrs(dict):
    """A mapping that silently drops every write (shared singleton)."""

    def __setitem__(self, key, value):  # pragma: no cover - trivial
        pass

    def update(self, *args, **kwargs):
        pass


_NOOP_ATTRS = _NoopAttrs()


class _NoopRecord(dict):
    """Stand-in span record handed out by a disabled tracer."""

    def __getitem__(self, key):
        return _NOOP_ATTRS if key == "attrs" else None

    def __setitem__(self, key, value):
        pass


_NOOP_RECORD = _NoopRecord()


class _NoopSpan:
    """Context manager that does nothing (shared singleton)."""

    __slots__ = ()

    def __enter__(self):
        return _NOOP_RECORD

    def __exit__(self, exc_type, exc, tb):
        return False


_NOOP_SPAN = _NoopSpan()


class _SpanContext:
    """One live span: created by :meth:`Tracer.span`, closed on exit."""

    __slots__ = ("_tracer", "_record", "_t0")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self._record = {
            "name": name,
            "start_s": 0.0,
            "elapsed_s": 0.0,
            "status": "ok",
            "attrs": attrs,
            "children": [],
        }
        self._t0 = 0.0

    def __enter__(self) -> dict:
        tracer = self._tracer
        self._t0 = time.perf_counter()
        record = self._record
        record["start_s"] = round(self._t0 - tracer._t0, 6)
        parent = tracer._stack[-1] if tracer._stack else None
        (parent["children"] if parent else tracer.roots).append(record)
        tracer._stack.append(record)
        return record

    def __exit__(self, exc_type, exc, tb) -> bool:
        record = self._record
        record["elapsed_s"] = round(time.perf_counter() - self._t0, 6)
        if exc_type is not None and record["status"] == "ok":
            record["status"] = f"error:{exc_type.__name__}"
        tracer = self._tracer
        if tracer._stack and tracer._stack[-1] is record:
            tracer._stack.pop()
        if tracer._sink is not None:
            path = "/".join(
                [r["name"] for r in tracer._stack] + [record["name"]]
            )
            tracer._sink(record, path)
        return False


class Tracer:
    """Collects a tree of span records; optionally streams span closes.

    Args:
        enabled: With ``False`` every :meth:`span` call returns a shared
            no-op context manager and :meth:`add_record` drops its input
            — the null object used at every instrumentation site when
            observability is off.
        sink: Optional ``sink(record, path)`` callable invoked once per
            span *close* (children close before parents), where ``path``
            is the ``/``-joined span names from the root.  The run
            journal plugs in here.
    """

    __slots__ = ("enabled", "roots", "_stack", "_sink", "_t0")

    def __init__(self, enabled: bool = True, sink=None):
        self.enabled = enabled
        self.roots: list[dict] = []
        self._stack: list[dict] = []
        self._sink = sink
        self._t0 = time.perf_counter()

    def span(self, name: str, **attrs):
        """Open a child span of the current span (a context manager).

        The ``with`` target is the span's record dict; callers may set
        ``record["status"]`` or update ``record["attrs"]`` while the
        span is live.
        """
        if not self.enabled:
            return _NOOP_SPAN
        return _SpanContext(self, name, attrs)

    def annotate(self, **attrs) -> None:
        """Merge attributes into the innermost live span, if any."""
        if self.enabled and self._stack:
            self._stack[-1]["attrs"].update(attrs)

    def add_record(self, record: dict) -> None:
        """Graft a prebuilt span record under the current span.

        Used for spans that closed in another process (worker attempt
        spans shipped back inside ``SpecResult``) or that are
        synthesised after the fact (specs a deadline killed before they
        ever ran).  The sink — if any — receives the whole subtree in
        close order (children before parents).
        """
        if not self.enabled:
            return
        parent = self._stack[-1] if self._stack else None
        (parent["children"] if parent else self.roots).append(record)
        if self._sink is not None:
            base = "/".join(r["name"] for r in self._stack)
            for rec, path in span_path_events(record, base):
                self._sink(rec, path)


#: The shared disabled tracer: instrumentation sites use it unguarded.
NULL_TRACER = Tracer(enabled=False)


def span_path_events(record: dict, base: str = ""):
    """Yield ``(record, path)`` for a span tree in close order.

    Children precede their parent, mirroring the order a live tracer's
    sink would have observed, so replaying worker spans into the journal
    produces the same event sequence as an in-process run.
    """
    path = f"{base}/{record['name']}" if base else record["name"]
    for child in record.get("children", ()):
        yield from span_path_events(child, path)
    yield record, path


def walk_spans(records):
    """Depth-first pre-order iterator over ``(record, depth)`` pairs."""
    stack = [(record, 0) for record in reversed(list(records))]
    while stack:
        record, depth = stack.pop()
        yield record, depth
        for child in reversed(record.get("children", ())):
            stack.append((child, depth + 1))
