"""A zero-dependency metrics registry (DESIGN.md §5e).

Three instrument kinds, all process-local and lock-free (the pipeline
aggregates worker-side numbers by shipping them back with each result,
never by sharing a registry across processes):

* **counters** — monotonically increasing totals (solver nodes, cache
  hits and misses, spec outcomes; the kill check's subplan cache
  reports ``xdata_subplan_cache_{hits,misses,bytes}_total``, folded in
  by :func:`repro.api.evaluate` after the batch completes);
* **gauges** — last-written values (pool width, degradation flags);
* **histograms** — running count/sum/min/max plus fixed
  less-than-or-equal buckets, for latencies (solve latency, pool queue
  wait) and small discrete distributions (retry-ladder depth).

A registry renders to a Prometheus-style text exposition
(:func:`render_text`) or JSON (:func:`render_json`), and round-trips
through a plain-dict :meth:`Metrics.snapshot` that pickles across the
process pool and serialises into the run journal's ``run_end`` event.
"""

from __future__ import annotations

import json

__all__ = ["Metrics", "HISTOGRAM_BOUNDS", "render_text", "render_json"]

#: Upper bounds (``le``) of the histogram buckets, in seconds for the
#: latency metrics; the final implicit bucket is ``+Inf``.  The spread
#: covers sub-millisecond cache-hit solves up to deadline-scale stalls.
HISTOGRAM_BOUNDS = (0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10.0)


class _Histogram:
    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self.buckets = [0] * (len(HISTOGRAM_BOUNDS) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for index, bound in enumerate(HISTOGRAM_BOUNDS):
            if value <= bound:
                self.buckets[index] += 1
                return
        self.buckets[-1] += 1

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": round(self.total, 6),
            "min": self.min,
            "max": self.max,
            "buckets": dict(
                zip([str(b) for b in HISTOGRAM_BOUNDS] + ["+Inf"],
                    self.buckets)
            ),
        }


class Metrics:
    """A registry of counters, gauges and histograms.

    All mutators are safe to call unconditionally — the generator keeps
    a single ``metrics`` reference that is ``None`` when disabled, so
    the off-path cost is one ``is not None`` check per call site.
    """

    __slots__ = ("counters", "gauges", "_histograms")

    def __init__(self):
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self._histograms: dict[str, _Histogram] = {}

    def inc(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = _Histogram()
        hist.observe(value)

    def inc_all(self, counts: dict, prefix: str = "") -> None:
        """Add a mapping of counter deltas (worker-side cache counts)."""
        for name, value in counts.items():
            self.inc(prefix + name, value)

    def snapshot(self) -> dict:
        """A picklable/JSON-able view of every instrument."""
        return {
            "counters": {
                name: self.counters[name] for name in sorted(self.counters)
            },
            "gauges": {
                name: self.gauges[name] for name in sorted(self.gauges)
            },
            "histograms": {
                name: self._histograms[name].to_dict()
                for name in sorted(self._histograms)
            },
        }


def render_text(snapshot: dict | None) -> str:
    """Prometheus-style text exposition of a metrics snapshot."""
    if not snapshot:
        return "(no metrics recorded — enable GenConfig.metrics)"
    lines: list[str] = []
    for name, value in snapshot.get("counters", {}).items():
        lines.append(f"{name} {value}")
    for name, value in snapshot.get("gauges", {}).items():
        lines.append(f"{name} {value}")
    for name, hist in snapshot.get("histograms", {}).items():
        lines.append(f"{name}_count {hist['count']}")
        lines.append(f"{name}_sum {hist['sum']}")
        running = 0
        for bound, count in hist["buckets"].items():
            # Cumulative per le-bound, matching Prometheus semantics
            # (the stored buckets are per-bin counts).
            running += count
            lines.append(f'{name}_bucket{{le="{bound}"}} {running}')
    return "\n".join(lines)


def render_json(snapshot: dict | None) -> str:
    """JSON exposition of a metrics snapshot."""
    return json.dumps(snapshot or {}, indent=2, sort_keys=True)
