"""XData: constraint-based test-data generation for killing SQL mutants.

A from-scratch Python reproduction of *"Generating Test Data for Killing
SQL Mutants: A Constraint-based Approach"* (Shah, Sudarshan et al., IIT
Bombay; the extended version of the ICDE 2010 short paper "X-Data").

Typical use — the :mod:`repro.api` facade (DESIGN.md §5e)::

    import repro

    run = repro.generate(open("schema.sql").read(),
                         "SELECT * FROM r, s WHERE r.a = s.a")
    for dataset in run.datasets:
        print(dataset.pretty())

    scored = repro.evaluate(schema, sql)
    print(f"killed {scored.killed} of {scored.total} mutants")

The building blocks (``XDataGenerator``, ``enumerate_mutants``,
``evaluate_suite``, ...) stay exported for callers that need finer
control over each pipeline stage.
"""

from repro.baseline import ShortPaperGenerator
from repro.core import (
    AnalyzedQuery,
    Budgets,
    GenConfig,
    GeneratedDataset,
    SuiteHealth,
    TestSuite,
    XDataGenerator,
    analyze_query,
)
from repro.engine import Database, execute_plan, execute_query
from repro.errors import XDataError
from repro.mutation import Mutant, MutationSpace, enumerate_mutants
from repro.schema import Column, ForeignKey, Schema, SqlType, Table, parse_ddl
from repro.sql import parse_query, to_sql
from repro.core.assumptions import check_assumptions
from repro.core.decorrelate import decorrelate
from repro.engine.export import from_csv_map, to_csv_map, to_insert_script
from repro.testing import (
    classify_survivors,
    evaluate_suite,
    format_kill_report,
    format_suite,
    format_trace,
    minimize_suite,
    random_database,
)

# The facade (last: it builds on everything above).  Its
# generate_workload shadows repro.testing's — same signature, but it
# also accepts raw DDL text for the schema.
from repro import api
from repro.api import (
    EvalOptions,
    Evaluation,
    Run,
    Session,
    evaluate,
    fingerprint,
    generate,
    generate_workload,
)

__version__ = "1.0.0"

__all__ = [
    "api",
    "generate",
    "generate_workload",
    "evaluate",
    "fingerprint",
    "Run",
    "Evaluation",
    "EvalOptions",
    "Session",
    "Budgets",
    "SuiteHealth",
    "XDataGenerator",
    "GenConfig",
    "TestSuite",
    "GeneratedDataset",
    "AnalyzedQuery",
    "analyze_query",
    "parse_query",
    "to_sql",
    "parse_ddl",
    "Schema",
    "Table",
    "Column",
    "ForeignKey",
    "SqlType",
    "Database",
    "execute_query",
    "execute_plan",
    "enumerate_mutants",
    "MutationSpace",
    "Mutant",
    "evaluate_suite",
    "classify_survivors",
    "random_database",
    "format_kill_report",
    "format_suite",
    "format_trace",
    "ShortPaperGenerator",
    "XDataError",
    "minimize_suite",
    "check_assumptions",
    "decorrelate",
    "to_insert_script",
    "to_csv_map",
    "from_csv_map",
    "__version__",
]
