"""XData: constraint-based test-data generation for killing SQL mutants.

A from-scratch Python reproduction of *"Generating Test Data for Killing
SQL Mutants: A Constraint-based Approach"* (Shah, Sudarshan et al., IIT
Bombay; the extended version of the ICDE 2010 short paper "X-Data").

Typical use::

    from repro import XDataGenerator, parse_ddl, enumerate_mutants, evaluate_suite

    schema = parse_ddl(open("schema.sql").read())
    generator = XDataGenerator(schema)
    suite = generator.generate("SELECT * FROM r, s WHERE r.a = s.a")
    for dataset in suite.datasets:
        print(dataset.pretty())

    space = enumerate_mutants(suite.analyzed)
    report = evaluate_suite(space, suite.databases)
    print(f"killed {report.killed} of {report.total} mutants")
"""

from repro.baseline import ShortPaperGenerator
from repro.core import (
    AnalyzedQuery,
    GenConfig,
    GeneratedDataset,
    TestSuite,
    XDataGenerator,
    analyze_query,
)
from repro.engine import Database, execute_plan, execute_query
from repro.errors import XDataError
from repro.mutation import Mutant, MutationSpace, enumerate_mutants
from repro.schema import Column, ForeignKey, Schema, SqlType, Table, parse_ddl
from repro.sql import parse_query, to_sql
from repro.core.assumptions import check_assumptions
from repro.core.decorrelate import decorrelate
from repro.engine.export import from_csv_map, to_csv_map, to_insert_script
from repro.testing import (
    classify_survivors,
    evaluate_suite,
    format_kill_report,
    format_suite,
    generate_workload,
    minimize_suite,
    random_database,
)

__version__ = "1.0.0"

__all__ = [
    "XDataGenerator",
    "GenConfig",
    "TestSuite",
    "GeneratedDataset",
    "AnalyzedQuery",
    "analyze_query",
    "parse_query",
    "to_sql",
    "parse_ddl",
    "Schema",
    "Table",
    "Column",
    "ForeignKey",
    "SqlType",
    "Database",
    "execute_query",
    "execute_plan",
    "enumerate_mutants",
    "MutationSpace",
    "Mutant",
    "evaluate_suite",
    "classify_survivors",
    "random_database",
    "format_kill_report",
    "format_suite",
    "ShortPaperGenerator",
    "XDataError",
    "minimize_suite",
    "generate_workload",
    "check_assumptions",
    "decorrelate",
    "to_insert_script",
    "to_csv_map",
    "from_csv_map",
    "__version__",
]
