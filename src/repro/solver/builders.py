"""Convenience constructors for the constraint language.

All comparison builders take :class:`Linear` operands and normalise to the
canonical atom forms (``=``, ``<>``, ``<``, ``<=`` against zero).
"""

from __future__ import annotations

from repro.solver.terms import (
    FALSE,
    TRUE,
    Atom,
    BoolConst,
    Conj,
    Disj,
    Formula,
    Linear,
    Neg,
    Quantified,
)


def var(name: str) -> Linear:
    return Linear.of_var(name)


def const(value: int) -> Linear:
    return Linear.of_const(value)


def eq(a: Linear, b: Linear) -> Atom:
    return Atom("=", a - b)


def ne(a: Linear, b: Linear) -> Atom:
    return Atom("<>", a - b)


def lt(a: Linear, b: Linear) -> Atom:
    return Atom("<", a - b)


def le(a: Linear, b: Linear) -> Atom:
    return Atom("<=", a - b)


def gt(a: Linear, b: Linear) -> Atom:
    return Atom("<", b - a)


def ge(a: Linear, b: Linear) -> Atom:
    return Atom("<=", b - a)


#: SQL comparison operator -> builder.
COMPARE = {"=": eq, "<>": ne, "<": lt, "<=": le, ">": gt, ">=": ge}


def compare(op: str, a: Linear, b: Linear) -> Atom:
    """Build the atom for SQL comparison ``a op b``."""
    return COMPARE[op](a, b)


def conj(parts) -> Formula:
    """Conjunction, simplifying constants and flattening."""
    flat: list[Formula] = []
    for part in parts:
        if isinstance(part, BoolConst):
            if not part.value:
                return FALSE
            continue
        if isinstance(part, Conj):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return Conj(tuple(flat))


def conjuncts(formula: Formula) -> list[Formula]:
    """Flatten a formula into its top-level conjuncts.

    The inverse view of :func:`conj` (which already flattens nested
    ``Conj`` nodes on construction, so one level of unwrapping
    suffices); ``TRUE`` flattens to no conjuncts.  The skeleton and
    property tests use this to compare constraint systems modulo
    conjunction grouping.
    """
    if isinstance(formula, Conj):
        return list(formula.parts)
    if isinstance(formula, BoolConst) and formula.value:
        return []
    return [formula]


def disj(parts) -> Formula:
    """Disjunction, simplifying constants and flattening."""
    flat: list[Formula] = []
    for part in parts:
        if isinstance(part, BoolConst):
            if part.value:
                return TRUE
            continue
        if isinstance(part, Disj):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return Disj(tuple(flat))


def neg(part: Formula) -> Formula:
    """Negation, pushed into atoms and constants immediately."""
    if isinstance(part, Atom):
        return part.negate()
    if isinstance(part, BoolConst):
        return FALSE if part.value else TRUE
    if isinstance(part, Neg):
        return part.part
    return Neg(part)


def implies(antecedent: Formula, consequent: Formula) -> Formula:
    return disj([neg(antecedent), consequent])


def forall(instances, label: str = "") -> Formula:
    """Bounded FORALL over pre-expanded instances."""
    instances = tuple(instances)
    if not instances:
        return TRUE
    return Quantified("forall", instances, label)


def exists(instances, label: str = "") -> Formula:
    """Bounded EXISTS over pre-expanded instances."""
    instances = tuple(instances)
    if not instances:
        return FALSE
    return Quantified("exists", instances, label)


def not_exists(instances, label: str = "") -> Formula:
    """Bounded NOT EXISTS: a FORALL of negated instances.

    This is the nullification constraint shape of Algorithms 2 and 3
    (``ASSERT NOT EXISTS (i : R_INT) : ...``).
    """
    instances = tuple(instances)
    if not instances:
        return TRUE
    return Quantified("forall", tuple(neg(i) for i in instances), label)
