"""The :class:`Solver` facade.

Owns variable declarations, the string symbol table and the asserted
formula set; dispatches to :class:`~repro.solver.search.GroundSearch`
with or without quantifier unfolding (Section VI-B).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import UnsatisfiableError
from repro.solver.model import Model, SymbolTable
from repro.solver.search import GroundSearch, SearchConfig
from repro.solver.terms import (
    Conj,
    Disj,
    Formula,
    Linear,
    Neg,
    Quantified,
    VarInfo,
)


@dataclass
class SolveStats:
    """Statistics from the last :meth:`Solver.solve` call."""

    satisfiable: bool
    nodes: int
    elapsed: float
    classes: int
    constraints: int
    unfolded: bool
    iterations: int = 1
    #: Stage split of ``elapsed`` (see :class:`SearchOutcome`): constraint
    #: preprocessing (unit propagation, rewriting, domain construction)
    #: vs. the backtracking search.  Summed over restarts in lazy mode.
    preprocess_time: float = 0.0
    search_time: float = 0.0
    #: Solver effort bookkeeping: the configured budgets and whether one
    #: tripped.  ``limit_hit`` is ``None`` on a completed solve, else the
    #: :attr:`SolverLimitError.kind` that aborted it (``"nodes"``,
    #: ``"deadline"`` or ``"restarts"``) — stats are recorded *before*
    #: the error propagates, so callers that catch it still see the
    #: effort spent.
    node_limit: int = 0
    deadline_s: float | None = None
    limit_hit: str | None = None
    #: Domain-aggregate memo traffic (see ``SearchOutcome``); summed over
    #: restarts in lazy mode.
    cache_hits: int = 0
    cache_misses: int = 0
    #: Wall-clock seconds the caller spent building/asserting this
    #: solve's formulas (set by the generator; amortized per-group
    #: share under delta solving — the skeleton compile is counted once
    #: per query shape, on the miss, not per group member).
    build_time: float = 0.0
    #: Delta-solve provenance: ``"hit"``/``"miss"`` when this solve ran
    #: against a compiled query skeleton (DESIGN.md §5j), ``None`` on
    #: the full-compile path.
    skeleton: str | None = None


def unfold_formula(formula: Formula, cache: bool = True) -> Formula:
    """Recursively expand every bounded quantifier into ground form.

    With ``cache=True`` quantifier-free formulas are returned as-is (they
    unfold to an equal structure anyway), and the expansion of quantified
    ones is memoized on the node — formulas shared across solver
    instances, like the cached database-constraint sets, unfold once
    instead of once per solve.  ``cache=False`` rebuilds the full tree
    every call (hot-path ablation; see SearchConfig.hot_path).
    """
    if cache:
        if not _contains_quantifier(formula):
            return formula
        cached = formula.__dict__.get("_unfolded")
        if cached is not None:
            return cached
    if isinstance(formula, Quantified):
        expanded = tuple(unfold_formula(p, cache) for p in formula.instances)
        result: Formula = (
            Conj(expanded) if formula.kind == "forall" else Disj(expanded)
        )
    elif isinstance(formula, Conj):
        result = Conj(tuple(unfold_formula(p, cache) for p in formula.parts))
    elif isinstance(formula, Disj):
        result = Disj(tuple(unfold_formula(p, cache) for p in formula.parts))
    elif isinstance(formula, Neg):
        result = Neg(unfold_formula(formula.part, cache))
    else:  # Atom / BoolConst — nothing to expand.
        return formula
    if cache:
        object.__setattr__(formula, "_unfolded", result)
    return result


def _contains_quantifier(formula: Formula) -> bool:
    cached = formula.__dict__.get("_has_q")
    if cached is not None:
        return cached
    if isinstance(formula, Quantified):
        result = True
    elif isinstance(formula, (Conj, Disj)):
        result = any(_contains_quantifier(p) for p in formula.parts)
    elif isinstance(formula, Neg):
        result = _contains_quantifier(formula.part)
    else:
        result = False
    object.__setattr__(formula, "_has_q", result)
    return result


def _instance_count(formula: Formula) -> int:
    if isinstance(formula, Quantified):
        return sum(_instance_count(p) for p in formula.instances) + len(
            formula.instances
        )
    if isinstance(formula, (Conj, Disj)):
        return sum(_instance_count(p) for p in formula.parts)
    if isinstance(formula, Neg):
        return _instance_count(formula.part)
    return 0


def _violated_parts(formula: Formula, assignment: dict[str, int]) -> list[Formula]:
    """Instances to assert after a failed quantifier check.

    For a violated FORALL, the specific false instances are learned (the
    classic conflict-instantiation step).  Violated EXISTS constraints and
    anything nested get their full unfolding asserted — the solver cannot
    know *which* disjunct to satisfy.
    """
    from repro.solver.search import eval_formula

    if isinstance(formula, Quantified) and formula.kind == "forall":
        learned = []
        for instance in formula.instances:
            if eval_formula(instance, assignment) is not True:
                if _contains_quantifier(instance):
                    learned.append(unfold_formula(instance))
                else:
                    learned.append(instance)
        return learned or [unfold_formula(formula)]
    return [unfold_formula(formula)]


class Solver:
    """Collects variables and constraints; produces models.

    Example::

        solver = Solver()
        x = solver.int_var("r[0].a")
        y = solver.int_var("r[0].b", preferred=(5,))
        solver.add(builders.eq(x, y + builders.const(10)))
        model = solver.solve()
        assert model.raw("r[0].a") == model.raw("r[0].b") + 10
    """

    def __init__(self, config: SearchConfig | None = None):
        self.config = config or SearchConfig()
        self.symbols = SymbolTable(fast=self.config.hot_path)
        self._infos: dict[str, VarInfo] = {}
        self._infos_shared = False
        self._formulas: list[Formula] = []
        self.last_stats: SolveStats | None = None
        #: True when this solver's symbol table descends (by copy) from a
        #: table that already interned the query's declaration values —
        #: declared VarInfos may then be replayed without re-interning
        #: (their codes are valid in any descendant table).
        self.warm_declarations = False

    @classmethod
    def from_declarations(
        cls,
        config: SearchConfig | None,
        infos: dict[str, VarInfo],
        symbols: SymbolTable,
    ) -> "Solver":
        """A fresh solver pre-seeded with declared variables.

        ``infos`` is copied; ``symbols`` is adopted as-is (pass an
        independent copy).  Used to replay a declaration snapshot instead
        of re-declaring and re-interning the same variables per spec.
        """
        solver = cls(config)
        # Copy-on-write: most replayed solvers never declare another
        # variable, so the snapshot's info dict is shared until one does.
        solver._infos = infos
        solver._infos_shared = True
        solver.symbols = symbols
        solver.warm_declarations = True
        return solver

    # -- variable declaration ------------------------------------------------

    def int_var(self, name: str, preferred: tuple[int, ...] = ()) -> Linear:
        """Declare (or re-reference) an integer variable."""
        if name not in self._infos:
            if self._infos_shared:
                self._infos = dict(self._infos)
                self._infos_shared = False
            self._infos[name] = VarInfo(name, "int", None, tuple(preferred))
        return Linear.of_var(name)

    def str_var(
        self, name: str, pool: str, preferred_values: tuple[str, ...] = ()
    ) -> Linear:
        """Declare a string variable interned against ``pool``."""
        if name not in self._infos:
            preferred = tuple(
                self.symbols.intern(pool, value) for value in preferred_values
            )
            if self._infos_shared:
                self._infos = dict(self._infos)
                self._infos_shared = False
            self._infos[name] = VarInfo(name, "str", pool, preferred)
        return Linear.of_var(name)

    def has_var(self, name: str) -> bool:
        return name in self._infos

    def info(self, name: str) -> VarInfo:
        return self._infos[name]

    def intern(self, pool: str, value: str) -> int:
        """Intern a string constant for use in constraints."""
        return self.symbols.intern(pool, value)

    # -- constraints ---------------------------------------------------------------

    def add(self, formula: Formula) -> None:
        """Assert a formula (conjunction with everything already added)."""
        self._formulas.append(formula)

    def add_all(self, formulas) -> None:
        for formula in formulas:
            self.add(formula)

    @property
    def formulas(self) -> list[Formula]:
        return list(self._formulas)

    # -- solving ---------------------------------------------------------------------

    def solve(self, unfold: bool = True, base=None) -> Model | None:
        """Search for a model; returns ``None`` when unsatisfiable.

        Args:
            unfold: If True (the paper's optimised mode, Section VI-B)
                every bounded quantifier is expanded into ground
                conjunctions or disjunctions before preprocessing, so
                equalities inside quantifiers participate in union-find
                collapsing and value suggestion.  If False, quantified
                constraints are handled the way quantifier-instantiating
                solvers of the CVC3 era did: solve the ground part, check
                the quantified constraints against the candidate model,
                assert the violated instances, and restart — reproducing
                the paper's slow "without unfolding" configuration.
            base: Optional compiled query skeleton
                (:class:`repro.solver.skeleton.CompiledSkeleton`).  When
                given, the asserted formulas are treated as a *delta* on
                top of the skeleton's preprocessed shared system —
                byte-identical to asserting the shared formulas after
                the delta and solving from scratch.  Only meaningful
                with ``unfold=True``.
        """
        from repro.errors import SolverLimitError

        try:
            return self._solve(unfold, base)
        except SolverLimitError as exc:
            # Record the effort spent before the budget tripped so a
            # caller that catches the overrun still gets statistics.
            self.last_stats = SolveStats(
                satisfiable=False,
                nodes=exc.nodes,
                elapsed=exc.elapsed,
                classes=0,
                constraints=len(self._formulas),
                unfolded=unfold,
                node_limit=self.config.node_limit,
                deadline_s=self.config.solve_deadline_s,
                limit_hit=exc.kind,
            )
            raise

    def _solve(self, unfold: bool, base=None) -> Model | None:
        if unfold:
            memo = self.config.hot_path
            formulas = [unfold_formula(f, cache=memo) for f in self._formulas]
            # GroundSearch never mutates the info dict; the defensive
            # copy is only kept on the ablation path (seed behaviour).
            infos = self._infos if memo else dict(self._infos)
            outcome = GroundSearch(
                formulas, infos, self.symbols, self.config, base=base
            ).run()
            self.last_stats = SolveStats(
                satisfiable=outcome.model is not None,
                nodes=outcome.nodes,
                elapsed=outcome.elapsed,
                classes=outcome.classes,
                constraints=outcome.constraints,
                unfolded=True,
                preprocess_time=outcome.preprocess_elapsed,
                search_time=outcome.search_elapsed,
                node_limit=self.config.node_limit,
                deadline_s=self.config.solve_deadline_s,
                cache_hits=outcome.cache_hits,
                cache_misses=outcome.cache_misses,
            )
            return outcome.model
        return self._solve_lazy()

    def _solve_lazy(self) -> Model | None:
        """Lazy quantifier instantiation with restarts (slow path).

        Runs the per-restart ground search without equality-suggestion
        value ordering — the search-level counterpart of the solver not
        seeing through quantifiers.  If a restart overruns the node
        budget, it is retried once with suggestions enabled so the slow
        mode always terminates (its time is reported either way).
        """
        import dataclasses

        from repro.errors import SolverLimitError
        from repro.solver.search import eval_formula

        ground: list[Formula] = []
        quantified: list[Formula] = []
        for formula in self._formulas:
            if _contains_quantifier(formula):
                quantified.append(formula)
            else:
                ground.append(formula)
        instance_budget = 10 + sum(
            _instance_count(f) for f in quantified
        )
        naive_config = dataclasses.replace(
            self.config, enable_suggestions=False
        )
        learned: list[Formula] = []
        nodes = 0
        elapsed = 0.0
        preprocess_time = 0.0
        search_time = 0.0
        cache_hits = 0
        cache_misses = 0
        iterations = 0
        while True:
            iterations += 1
            if iterations > instance_budget:
                raise SolverLimitError(
                    f"lazy instantiation exceeded {instance_budget} restarts",
                    kind="restarts", nodes=nodes, limit=instance_budget,
                    elapsed=elapsed,
                )
            try:
                outcome = GroundSearch(
                    ground + learned, dict(self._infos), self.symbols,
                    naive_config,
                ).run()
            except SolverLimitError:
                outcome = GroundSearch(
                    ground + learned, dict(self._infos), self.symbols,
                    self.config,
                ).run()
            nodes += outcome.nodes
            elapsed += outcome.elapsed
            preprocess_time += outcome.preprocess_elapsed
            search_time += outcome.search_elapsed
            cache_hits += outcome.cache_hits
            cache_misses += outcome.cache_misses
            if outcome.model is None:
                # An UNSAT answer from the subset search is suspect: its
                # candidate domains were built from ``ground + learned``
                # only, and a quantified constraint not yet violated
                # (hence not yet learned) can be the only source of a
                # break-point value the model needs.  Confirm against
                # the full unfolded problem, whose domains and
                # constraints cover everything.  (A model needs no
                # confirmation — violated quantifiers are detected and
                # learned below.)
                confirm = GroundSearch(
                    ground + [unfold_formula(f) for f in quantified],
                    dict(self._infos), self.symbols, self.config,
                ).run()
                nodes += confirm.nodes
                elapsed += confirm.elapsed
                preprocess_time += confirm.preprocess_elapsed
                search_time += confirm.search_elapsed
                cache_hits += confirm.cache_hits
                cache_misses += confirm.cache_misses
                self.last_stats = SolveStats(
                    confirm.model is not None, nodes, elapsed,
                    confirm.classes, confirm.constraints,
                    unfolded=False, iterations=iterations,
                    preprocess_time=preprocess_time, search_time=search_time,
                    node_limit=self.config.node_limit,
                    deadline_s=self.config.solve_deadline_s,
                    cache_hits=cache_hits, cache_misses=cache_misses,
                )
                return confirm.model
            assignment = outcome.model.assignment
            # Conservative conflict instantiation: learn from the first
            # violated quantifier only, then restart — the restart count
            # grows with the number of quantified constraints, which is
            # what makes the non-unfolded mode degrade with query size.
            new_instances: list[Formula] = []
            for formula in quantified:
                if eval_formula(formula, assignment) is not True:
                    new_instances.extend(_violated_parts(formula, assignment))
                    break
            if not new_instances:
                self.last_stats = SolveStats(
                    True, nodes, elapsed, outcome.classes,
                    outcome.constraints, unfolded=False, iterations=iterations,
                    preprocess_time=preprocess_time, search_time=search_time,
                    node_limit=self.config.node_limit,
                    deadline_s=self.config.solve_deadline_s,
                    cache_hits=cache_hits, cache_misses=cache_misses,
                )
                return outcome.model
            learned.extend(new_instances)

    def require_model(self, unfold: bool = True) -> Model:
        """Like :meth:`solve` but raises on UNSAT."""
        model = self.solve(unfold=unfold)
        if model is None:
            raise UnsatisfiableError("constraints are unsatisfiable")
        return model
