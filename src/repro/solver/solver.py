"""The :class:`Solver` facade.

Owns variable declarations, the string symbol table and the asserted
formula set; dispatches to :class:`~repro.solver.search.GroundSearch`
with or without quantifier unfolding (Section VI-B).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import UnsatisfiableError
from repro.solver.model import Model, SymbolTable
from repro.solver.search import GroundSearch, SearchConfig
from repro.solver.terms import (
    Conj,
    Disj,
    Formula,
    Linear,
    Neg,
    Quantified,
    VarInfo,
)


@dataclass
class SolveStats:
    """Statistics from the last :meth:`Solver.solve` call."""

    satisfiable: bool
    nodes: int
    elapsed: float
    classes: int
    constraints: int
    unfolded: bool
    iterations: int = 1


def unfold_formula(formula: Formula) -> Formula:
    """Recursively expand every bounded quantifier into ground form."""
    if isinstance(formula, Quantified):
        expanded = tuple(unfold_formula(p) for p in formula.instances)
        if formula.kind == "forall":
            return Conj(expanded)
        return Disj(expanded)
    if isinstance(formula, Conj):
        return Conj(tuple(unfold_formula(p) for p in formula.parts))
    if isinstance(formula, Disj):
        return Disj(tuple(unfold_formula(p) for p in formula.parts))
    if isinstance(formula, Neg):
        return Neg(unfold_formula(formula.part))
    return formula


def _contains_quantifier(formula: Formula) -> bool:
    if isinstance(formula, Quantified):
        return True
    if isinstance(formula, (Conj, Disj)):
        return any(_contains_quantifier(p) for p in formula.parts)
    if isinstance(formula, Neg):
        return _contains_quantifier(formula.part)
    return False


def _instance_count(formula: Formula) -> int:
    if isinstance(formula, Quantified):
        return sum(_instance_count(p) for p in formula.instances) + len(
            formula.instances
        )
    if isinstance(formula, (Conj, Disj)):
        return sum(_instance_count(p) for p in formula.parts)
    if isinstance(formula, Neg):
        return _instance_count(formula.part)
    return 0


def _violated_parts(formula: Formula, assignment: dict[str, int]) -> list[Formula]:
    """Instances to assert after a failed quantifier check.

    For a violated FORALL, the specific false instances are learned (the
    classic conflict-instantiation step).  Violated EXISTS constraints and
    anything nested get their full unfolding asserted — the solver cannot
    know *which* disjunct to satisfy.
    """
    from repro.solver.search import eval_formula

    if isinstance(formula, Quantified) and formula.kind == "forall":
        learned = []
        for instance in formula.instances:
            if eval_formula(instance, assignment) is not True:
                if _contains_quantifier(instance):
                    learned.append(unfold_formula(instance))
                else:
                    learned.append(instance)
        return learned or [unfold_formula(formula)]
    return [unfold_formula(formula)]


class Solver:
    """Collects variables and constraints; produces models.

    Example::

        solver = Solver()
        x = solver.int_var("r[0].a")
        y = solver.int_var("r[0].b", preferred=(5,))
        solver.add(builders.eq(x, y + builders.const(10)))
        model = solver.solve()
        assert model.raw("r[0].a") == model.raw("r[0].b") + 10
    """

    def __init__(self, config: SearchConfig | None = None):
        self.symbols = SymbolTable()
        self._infos: dict[str, VarInfo] = {}
        self._formulas: list[Formula] = []
        self.config = config or SearchConfig()
        self.last_stats: SolveStats | None = None

    # -- variable declaration ------------------------------------------------

    def int_var(self, name: str, preferred: tuple[int, ...] = ()) -> Linear:
        """Declare (or re-reference) an integer variable."""
        if name not in self._infos:
            self._infos[name] = VarInfo(name, "int", None, tuple(preferred))
        return Linear.of_var(name)

    def str_var(
        self, name: str, pool: str, preferred_values: tuple[str, ...] = ()
    ) -> Linear:
        """Declare a string variable interned against ``pool``."""
        if name not in self._infos:
            preferred = tuple(
                self.symbols.intern(pool, value) for value in preferred_values
            )
            self._infos[name] = VarInfo(name, "str", pool, preferred)
        return Linear.of_var(name)

    def has_var(self, name: str) -> bool:
        return name in self._infos

    def info(self, name: str) -> VarInfo:
        return self._infos[name]

    def intern(self, pool: str, value: str) -> int:
        """Intern a string constant for use in constraints."""
        return self.symbols.intern(pool, value)

    # -- constraints ---------------------------------------------------------------

    def add(self, formula: Formula) -> None:
        """Assert a formula (conjunction with everything already added)."""
        self._formulas.append(formula)

    def add_all(self, formulas) -> None:
        for formula in formulas:
            self.add(formula)

    @property
    def formulas(self) -> list[Formula]:
        return list(self._formulas)

    # -- solving ---------------------------------------------------------------------

    def solve(self, unfold: bool = True) -> Model | None:
        """Search for a model; returns ``None`` when unsatisfiable.

        Args:
            unfold: If True (the paper's optimised mode, Section VI-B)
                every bounded quantifier is expanded into ground
                conjunctions or disjunctions before preprocessing, so
                equalities inside quantifiers participate in union-find
                collapsing and value suggestion.  If False, quantified
                constraints are handled the way quantifier-instantiating
                solvers of the CVC3 era did: solve the ground part, check
                the quantified constraints against the candidate model,
                assert the violated instances, and restart — reproducing
                the paper's slow "without unfolding" configuration.
        """
        if unfold:
            formulas = [unfold_formula(f) for f in self._formulas]
            outcome = GroundSearch(
                formulas, dict(self._infos), self.symbols, self.config
            ).run()
            self.last_stats = SolveStats(
                satisfiable=outcome.model is not None,
                nodes=outcome.nodes,
                elapsed=outcome.elapsed,
                classes=outcome.classes,
                constraints=outcome.constraints,
                unfolded=True,
            )
            return outcome.model
        return self._solve_lazy()

    def _solve_lazy(self) -> Model | None:
        """Lazy quantifier instantiation with restarts (slow path).

        Runs the per-restart ground search without equality-suggestion
        value ordering — the search-level counterpart of the solver not
        seeing through quantifiers.  If a restart overruns the node
        budget, it is retried once with suggestions enabled so the slow
        mode always terminates (its time is reported either way).
        """
        import dataclasses

        from repro.errors import SolverLimitError
        from repro.solver.search import eval_formula

        ground: list[Formula] = []
        quantified: list[Formula] = []
        for formula in self._formulas:
            if _contains_quantifier(formula):
                quantified.append(formula)
            else:
                ground.append(formula)
        instance_budget = 10 + sum(
            _instance_count(f) for f in quantified
        )
        naive_config = dataclasses.replace(
            self.config, enable_suggestions=False
        )
        learned: list[Formula] = []
        nodes = 0
        elapsed = 0.0
        iterations = 0
        while True:
            iterations += 1
            if iterations > instance_budget:
                raise SolverLimitError(
                    f"lazy instantiation exceeded {instance_budget} restarts"
                )
            try:
                outcome = GroundSearch(
                    ground + learned, dict(self._infos), self.symbols,
                    naive_config,
                ).run()
            except SolverLimitError:
                outcome = GroundSearch(
                    ground + learned, dict(self._infos), self.symbols,
                    self.config,
                ).run()
            nodes += outcome.nodes
            elapsed += outcome.elapsed
            if outcome.model is None:
                self.last_stats = SolveStats(
                    False, nodes, elapsed, outcome.classes,
                    outcome.constraints, unfolded=False, iterations=iterations,
                )
                return None
            assignment = outcome.model.assignment
            # Conservative conflict instantiation: learn from the first
            # violated quantifier only, then restart — the restart count
            # grows with the number of quantified constraints, which is
            # what makes the non-unfolded mode degrade with query size.
            new_instances: list[Formula] = []
            for formula in quantified:
                if eval_formula(formula, assignment) is not True:
                    new_instances.extend(_violated_parts(formula, assignment))
                    break
            if not new_instances:
                self.last_stats = SolveStats(
                    True, nodes, elapsed, outcome.classes,
                    outcome.constraints, unfolded=False, iterations=iterations,
                )
                return outcome.model
            learned.extend(new_instances)

    def require_model(self, unfold: bool = True) -> Model:
        """Like :meth:`solve` but raises on UNSAT."""
        model = self.solve(unfold=unfold)
        if model is None:
            raise UnsatisfiableError("constraints are unsatisfiable")
        return model
