"""Core data types of the constraint language.

Everything is integer-backed.  A :class:`Linear` is an integer-affine
combination of variables; an :class:`Atom` asserts ``linear op 0`` for
``op`` in ``{'=', '<>', '<', '<='}`` (``>``, ``>=`` are normalised away by
negating the linear part).  Formulas are atoms combined with conjunction,
disjunction and negation, plus :class:`Quantified` nodes whose bounded
ranges are already expanded into per-index *instances* — a quantifier over
``i : R_INT`` with ``|R| = 3`` carries three ground instance formulas.
This mirrors the paper's setting exactly: all quantifiers range over
bounded arrays of tuples (Section VI-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True)
class VarInfo:
    """Metadata for one solver variable.

    Attributes:
        name: Unique variable name, conventionally ``table[i].column``.
        kind: ``'int'`` or ``'str'`` (strings are interned to ints).
        pool: Symbol-pool identifier for string variables (variables in the
            same pool share an interning table so equality is meaningful).
        preferred: Values (already interned for strings) to try first
            during search — the paper's "domain values from an input
            database" behaviour.
    """

    name: str
    kind: str = "int"
    pool: str | None = None
    preferred: tuple[int, ...] = ()

    def __post_init__(self):
        if self.kind not in ("int", "str"):
            raise ValueError(f"unknown variable kind {self.kind!r}")
        if self.kind == "str" and self.pool is None:
            raise ValueError(f"string variable {self.name!r} needs a pool")


@dataclass(frozen=True)
class Linear:
    """An affine combination ``sum(coef * var) + const``.

    ``coeffs`` is sorted by variable name and contains no zero
    coefficients, so equal linears compare equal structurally.
    """

    coeffs: tuple[tuple[str, int], ...] = ()
    const: int = 0

    @staticmethod
    def of_var(name: str) -> "Linear":
        return Linear(((name, 1),), 0)

    @staticmethod
    def of_const(value: int) -> "Linear":
        return Linear((), value)

    @staticmethod
    def build(coeffs: dict[str, int], const: int) -> "Linear":
        clean = tuple(sorted((v, c) for v, c in coeffs.items() if c != 0))
        return Linear(clean, const)

    def _as_dict(self) -> dict[str, int]:
        return dict(self.coeffs)

    def __add__(self, other: "Linear") -> "Linear":
        coeffs = self._as_dict()
        for var, coef in other.coeffs:
            coeffs[var] = coeffs.get(var, 0) + coef
        return Linear.build(coeffs, self.const + other.const)

    def __sub__(self, other: "Linear") -> "Linear":
        return self + other.scale(-1)

    def scale(self, factor: int) -> "Linear":
        if factor == 0:
            return Linear.of_const(0)
        return Linear(
            tuple((v, c * factor) for v, c in self.coeffs), self.const * factor
        )

    @property
    def variables(self) -> tuple[str, ...]:
        # Memoized: linears are immutable and this is asked on every
        # rewrite/unit-propagation pass over an atom.
        cached = self.__dict__.get("_vars")
        if cached is None:
            cached = tuple(v for v, _ in self.coeffs)
            object.__setattr__(self, "_vars", cached)
        return cached

    def evaluate(self, assignment: dict[str, int]) -> int | None:
        """Value under ``assignment``; None if any variable is unassigned."""
        total = self.const
        for var, coef in self.coeffs:
            value = assignment.get(var)
            if value is None:
                return None
            total += coef * value
        return total

    def __str__(self) -> str:
        parts = []
        for var, coef in self.coeffs:
            if coef == 1:
                parts.append(var)
            elif coef == -1:
                parts.append(f"-{var}")
            else:
                parts.append(f"{coef}*{var}")
        if self.const or not parts:
            parts.append(str(self.const))
        return " + ".join(parts)


class Formula:
    """Marker base class for formulas."""

    __slots__ = ()


_NEGATED_OP = {"=": "<>", "<>": "="}


@dataclass(frozen=True)
class Atom(Formula):
    """The constraint ``lin op 0`` with op in ``{'=', '<>', '<', '<='}``."""

    op: str
    lin: Linear

    def __post_init__(self):
        if self.op not in ("=", "<>", "<", "<="):
            raise ValueError(f"non-canonical atom operator {self.op!r}")

    def negate(self) -> "Atom":
        """The complementary atom (total: atoms are closed under negation)."""
        if self.op in _NEGATED_OP:
            return Atom(_NEGATED_OP[self.op], self.lin)
        if self.op == "<":  # not(L < 0)  <=>  L >= 0  <=>  -L <= 0
            return Atom("<=", self.lin.scale(-1))
        # not(L <= 0)  <=>  L > 0  <=>  -L < 0
        return Atom("<", self.lin.scale(-1))

    def evaluate(self, assignment: dict[str, int]) -> bool | None:
        value = self.lin.evaluate(assignment)
        if value is None:
            return None
        if self.op == "=":
            return value == 0
        if self.op == "<>":
            return value != 0
        if self.op == "<":
            return value < 0
        return value <= 0

    @property
    def variables(self) -> tuple[str, ...]:
        return self.lin.variables

    def __str__(self) -> str:
        return f"{self.lin} {self.op} 0"


@dataclass(frozen=True)
class BoolConst(Formula):
    """Constant TRUE/FALSE."""

    value: bool


TRUE = BoolConst(True)
FALSE = BoolConst(False)


@dataclass(frozen=True)
class Conj(Formula):
    """Conjunction."""

    parts: tuple[Formula, ...]


@dataclass(frozen=True)
class Disj(Formula):
    """Disjunction."""

    parts: tuple[Formula, ...]


@dataclass(frozen=True)
class Neg(Formula):
    """Negation."""

    part: Formula


@dataclass(frozen=True)
class Quantified(Formula):
    """A bounded quantifier with its range pre-expanded into instances.

    ``kind='forall'`` holds iff every instance holds; ``kind='exists'``
    iff at least one does.  NOT EXISTS is expressed as the negation of an
    ``exists`` (or equivalently a ``forall`` of negated instances) by the
    builders.  ``label`` is carried through to diagnostics.
    """

    kind: str
    instances: tuple[Formula, ...]
    label: str = ""

    def __post_init__(self):
        if self.kind not in ("forall", "exists"):
            raise ValueError(f"unknown quantifier kind {self.kind!r}")

    def unfold(self) -> Formula:
        """Ground expansion (Section VI-B)."""
        if self.kind == "forall":
            return Conj(self.instances)
        return Disj(self.instances)


def _collect_variables(formula: Formula) -> frozenset[str]:
    out: set[str] = set()
    stack: list[Formula] = [formula]
    while stack:
        node = stack.pop()
        cached = node.__dict__.get("_fv")
        if cached is not None:
            out.update(cached)
        elif isinstance(node, Atom):
            out.update(node.variables)
        elif isinstance(node, (Conj, Disj)):
            stack.extend(node.parts)
        elif isinstance(node, Neg):
            stack.append(node.part)
        elif isinstance(node, Quantified):
            stack.extend(node.instances)
    return frozenset(out)


def formula_variables(
    formula: Formula, into: set[str] | None = None, cache: bool = True
) -> frozenset[str] | set[str]:
    """All variable names occurring in ``formula``.

    The result is memoized on the formula node (formulas are immutable),
    so the search core's repeated variable-set queries over the same
    constraint objects cost one traversal total, not one per query.
    ``cache=False`` recomputes from scratch (hot-path ablation; see
    SearchConfig.hot_path).
    """
    if not cache:
        out = _collect_variables(formula)
        if into is None:
            return set(out)
        into.update(out)
        return into
    cached = formula.__dict__.get("_fv")
    if cached is None:
        cached = _collect_variables(formula)
        # Frozen dataclasses forbid ordinary attribute assignment; the
        # cache does not participate in __eq__/__hash__ (fields only).
        object.__setattr__(formula, "_fv", cached)
    if into is None:
        return cached
    into.update(cached)
    return into


def atoms_of(formulas: Iterable[Formula]) -> list[Atom]:
    """All atoms in a collection of formulas (duplicates preserved)."""
    out: list[Atom] = []
    stack: list[Formula] = list(formulas)
    while stack:
        node = stack.pop()
        if isinstance(node, Atom):
            out.append(node)
        elif isinstance(node, (Conj, Disj)):
            stack.extend(node.parts)
        elif isinstance(node, Neg):
            stack.append(node.part)
        elif isinstance(node, Quantified):
            stack.extend(node.instances)
    return out
