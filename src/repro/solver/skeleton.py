"""Compile-once query skeletons for delta solving (DESIGN.md §5j).

The kill groups XData derives for one query share almost their entire
constraint system: the PK/FK chase constraints, the foreign-key EXISTS
disjunctions and the declared domains are identical across every group
member with the same tuple-space shape; only the mutated conjunct (and
the handful of conjuncts around it) differs.  :func:`compile_skeleton`
unfolds, normalizes and union-find-preprocesses that shared system once
per query shape; :class:`repro.solver.search.GroundSearch` then applies
each group's formulas as an incremental *delta* on top of the compiled
state — asserting the delta's units into a copy of the preprocessed
union-find, splitting/merging only the affected equivalence-class
partitions (copy-on-write), and reusing cached rewrites of the shared
formulas whenever the delta leaves their variables' classes unchanged.

Everything here is an amortization, never an approximation: a delta
solve is byte-identical to compiling the full constraint system from
scratch (``tests/test_delta_solve.py`` pins this differentially, and
Hypothesis property tests pin the underlying confluence argument).
The correctness argument, in brief:

* **Prefix property.**  The generator asserts the delta formulas first
  and the shared system last; ``GroundSearch._flatten`` pops from the
  end of its input, so the shared system's units and residual
  constraints form a *prefix* of the full flatten order.  Compiling the
  shared prefix alone and concatenating the delta's suffix reproduces
  the exact unit/constraint ordering of a full compile.
* **Confluence.**  Union-find merging is order-independent: the final
  partition is the transitive closure of the derivable equalities, the
  representative is always the lexicographically smallest member, and
  fixed values attach to classes, not to processing order.
* **Canonical rewrites.**  ``Linear.build`` sorts coefficients and
  drops zeros, so rewriting under the base state and then under the
  delta state composes to the same structure as one full rewrite.

Skeletons hold plain dicts/tuples over formula nodes and are cached in
the generator's per-run (per-worker) cache dict; they are never
pickled across the process pool.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.solver.solver import unfold_formula
from repro.solver.terms import Atom, Formula, VarInfo, formula_variables


@dataclass
class CompiledSkeleton:
    """The preprocessed shared constraint system of one query shape.

    Produced by :func:`compile_skeleton`; consumed by
    ``GroundSearch(..., base=skeleton)``.  All mapping fields are
    treated as immutable by consumers (copy-on-write); the rewrite
    cache and its counters are the only mutable state and are shared
    deliberately across the sibling solves of one generator run.
    """

    #: Fully path-compressed union-find parent map of the shared units.
    parent: dict[str, str]
    #: Base representative -> fixed value (from shared constant units).
    fixed: dict[str, int]
    #: Shared unit atoms not collapsed by base propagation, rewritten
    #: under the base state, in flatten order.  They re-enter the
    #: delta solve's unit-propagation queue ahead of the delta's units.
    residual: tuple[Atom, ...]
    #: Shared non-unit constraints, rewritten under the base state with
    #: base-decided-True members dropped, in flatten order.
    rest: tuple[Formula, ...]
    #: True when the shared system alone is unsatisfiable (every delta
    #: solve is then UNSAT without searching).
    unsat: bool
    #: Variables whose atoms changed under the base rewrite (see
    #: ``GroundSearch._touched_vars``); the delta solve extends this
    #: with its own merges and fixes instead of rescanning.
    touched: frozenset[str]
    #: Base representative -> class members in declaration order.  A
    #: delta solve copies this dict and re-merges only the partitions
    #: its own unions affect.
    members: dict[str, tuple[VarInfo, ...]]
    #: Variable name -> declaration index (the order merged partitions
    #: must preserve to match a from-scratch members scan).
    decl_index: dict[str, int]
    #: Representatives of the non-fixed base classes that carry a
    #: declared variable.
    reps: frozenset[str]
    #: Inverted index: variable name -> indices into ``rest`` of the
    #: shared formulas mentioning it.  A delta solve intersects this
    #: with its changed classes to find the exact set of shared
    #: formulas needing a re-rewrite (usually none).  None when the
    #: hot-path memo layer is ablated.
    var_index: dict[str, tuple[int, ...]] | None = None
    #: Union of every variable name appearing in ``rest``.
    var_names: frozenset[str] = frozenset()
    #: Precompiled split of ``rest`` into multi-variable constraints
    #: (``active``, in order) and single-variable domain restrictions
    #: (``single`` as (var, formula) pairs), with ``cvars`` the
    #: per-active-formula variable frozensets and ``name_watch`` the
    #: name -> active-indices watch lists.  Applied verbatim by delta
    #: solves whose changed classes touch no shared formula.
    active: tuple[Formula, ...] | None = None
    single: tuple[tuple[str, Formula], ...] = ()
    cvars: tuple[frozenset, ...] = ()
    name_watch: dict[str, tuple[int, ...]] | None = None
    #: Domain-aggregate union over ``rest``: (int constants, offsets,
    #: string witnesses in formula order).  Seeds _build_domains on the
    #: fast path instead of a per-formula memo scan.
    agg: tuple | None = None
    #: Base representative -> sorted union of the preferred values of
    #: its int-kind members (str-kind classes map to ()).  Valid for
    #: every class a delta leaves unmerged.
    pref: dict[str, tuple[int, ...]] | None = None
    #: Wall-clock seconds spent compiling this skeleton (reported once
    #: per query shape, not once per group member).
    compile_time: float = 0.0
    #: (rest index, delta-state fingerprint) -> rewritten formula.
    #: Cache hits return the exact object produced for an earlier
    #: sibling solve, so its ``_fv``/``_fvsorted``/``_domagg`` memos
    #: stay warm across the whole kill group.
    rewrite_cache: dict = field(default_factory=dict)
    rewrite_hits: int = 0
    rewrite_misses: int = 0
    #: (rep, free?, candidate-set fingerprint, max size) -> ordered
    #: domain list, shared across sibling solves (domain lists are
    #: never mutated).  Exact: the candidate fingerprint pins the
    #: universe content, the rep pins kind/pool/member order, and
    #: merged classes bypass the cache entirely.
    domain_cache: dict = field(default_factory=dict)


def compile_skeleton(
    formulas: list[Formula],
    infos: dict[str, VarInfo],
    config,
) -> CompiledSkeleton:
    """Preprocess the shared constraint system once.

    ``formulas`` is the spec-independent suffix of a solve's input (the
    database constraints); ``infos`` the declared variables of the
    tuple-space shape the skeleton is keyed by.  ``config`` is a
    :class:`~repro.solver.search.SearchConfig`; only its ``hot_path``
    flag matters here (memoization on shared formula nodes).
    """
    from repro.solver.search import GroundSearch, eval_formula

    start = time.perf_counter()
    memo = config.hot_path
    unfolded = [unfold_formula(f, cache=memo) for f in formulas]
    # Symbols are never consulted during preprocessing (only domain
    # construction needs them), so the compile search gets none.
    search = GroundSearch(unfolded, infos, None, config)
    rest_raw = search._flatten()
    search._propagate_units()
    unsat = search._unsat
    rest: list[Formula] = []
    if not unsat:
        if memo:
            search._touched = search._touched_vars()
        for formula in rest_raw:
            rewritten = search._rewrite_formula(formula)
            if not formula_variables(rewritten, cache=memo):
                if eval_formula(rewritten, {}) is not True:
                    unsat = True
                    break
                continue
            rest.append(rewritten)

    find = search._uf.find
    raw_parent = search._uf._parent
    # Full path compression: delta solves seed their union-find from a
    # flat copy, so every subsequent find is one hop.
    parent = {name: find(name) for name in raw_parent}
    fixed = dict(search._fixed)

    decl_index = {name: index for index, name in enumerate(infos)}
    grouped: dict[str, list[VarInfo]] = {}
    for name, info in infos.items():
        rep = find(name) if name in raw_parent else name
        grouped.setdefault(rep, []).append(info)
    members = {rep: tuple(mem) for rep, mem in grouped.items()}
    reps = frozenset(rep for rep in members if rep not in fixed)

    var_index = None
    var_names: frozenset[str] = frozenset()
    active = None
    single: list[tuple[str, Formula]] = []
    cvars: list[frozenset] = []
    name_watch = None
    agg = None
    pref = None
    if memo and not unsat:
        # Precompile everything a delta solve would otherwise derive
        # per sibling from the shared prefix: the inverted
        # variable->formula index, the active/single split with its
        # watch lists and variable sets, the domain-aggregate union,
        # and the per-class preferred-value unions.  All are exact for
        # any delta whose changed classes avoid the indexed names; the
        # delta path falls back to per-formula work for the rest.
        raw_index: dict[str, list[int]] = {}
        raw_watch: dict[str, list[int]] = {}
        active_list: list[Formula] = []
        agg_ints: set[int] = set()
        agg_offs: set[int] = set()
        agg_strs: list[tuple[str, int]] = []
        for index, formula in enumerate(rest):
            variables = formula.__dict__.get("_fvsorted")
            if variables is None:
                variables = sorted(formula_variables(formula, cache=True))
                object.__setattr__(formula, "_fvsorted", variables)
            for name in variables:
                raw_index.setdefault(name, []).append(index)
            ints, offs, strs = search._domagg_of(formula, True)
            agg_ints.update(ints)
            agg_offs.update(offs)
            agg_strs.extend(strs)
            if len(variables) == 1:
                single.append((variables[0], formula))
                continue
            position = len(active_list)
            active_list.append(formula)
            cvars.append(frozenset(variables))
            for name in variables:
                raw_watch.setdefault(name, []).append(position)
        var_index = {name: tuple(idx) for name, idx in raw_index.items()}
        var_names = frozenset(raw_index)
        active = tuple(active_list)
        name_watch = {name: tuple(idx) for name, idx in raw_watch.items()}
        agg = (frozenset(agg_ints), frozenset(agg_offs), tuple(agg_strs))
        pref = {}
        for rep, mem in members.items():
            if infos[rep].kind != "int":
                pref[rep] = ()
                continue
            union: set[int] = set()
            for info in mem:
                union.update(info.preferred)
            pref[rep] = tuple(sorted(union))

    return CompiledSkeleton(
        parent=parent,
        fixed=fixed,
        residual=tuple(search._residual_units) if not unsat else (),
        rest=tuple(rest) if not unsat else (),
        unsat=unsat,
        touched=frozenset(search._touched_vars()),
        members=members,
        decl_index=decl_index,
        reps=reps,
        var_index=var_index,
        var_names=var_names,
        active=active,
        single=tuple(single),
        cvars=tuple(cvars),
        name_watch=name_watch,
        agg=agg,
        pref=pref,
        compile_time=time.perf_counter() - start,
    )
