"""Preprocessing and backtracking search over finite candidate domains.

The pipeline mirrors what makes the paper's unfolded constraints fast for
CVC3 (Section VI-B and V-H): after unfolding, the constraint set is mostly
unit equalities, which collapse under union-find into a small number of
variable classes; the remaining disjunctions and disequalities are decided
by depth-first search with three-valued (Kleene) constraint evaluation for
early pruning.

Quantified formulas that were *not* unfolded are handled soundly but
naively: they are treated as opaque constraints, invisible to the
union-find/domain preprocessing and re-expanded at every evaluation —
reproducing, qualitatively, the slow quantified path the paper measured.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.errors import SolverError, SolverLimitError
from repro.solver.model import Model, SymbolTable
from repro.solver.terms import (
    Atom,
    BoolConst,
    Conj,
    Disj,
    Formula,
    Linear,
    Neg,
    Quantified,
    VarInfo,
    formula_variables,
)


@dataclass
class SearchConfig:
    """Search tuning knobs."""

    node_limit: int = 500_000
    fresh_int_values: int = 8
    fresh_str_values: int = 8
    max_domain_size: int = 64
    #: Try values suggested by equality constraints first.  The unfolded
    #: mode's analogue of seeing through quantifiers; the lazy quantifier
    #: mode runs with this off (with a fallback on node-limit overrun).
    enable_suggestions: bool = True


@dataclass
class SearchOutcome:
    """Result of one search run."""

    model: Model | None
    nodes: int = 0
    elapsed: float = 0.0
    classes: int = 0
    constraints: int = 0


# ---------------------------------------------------------------------------
# Kleene evaluation
# ---------------------------------------------------------------------------


def eval_formula(formula: Formula, assignment: dict[str, int]) -> bool | None:
    """Three-valued evaluation under a partial assignment."""
    if isinstance(formula, Atom):
        return formula.evaluate(assignment)
    if isinstance(formula, BoolConst):
        return formula.value
    if isinstance(formula, Neg):
        inner = eval_formula(formula.part, assignment)
        return None if inner is None else not inner
    if isinstance(formula, (Conj, Disj)) or isinstance(formula, Quantified):
        if isinstance(formula, Quantified):
            parts = formula.instances
            is_conj = formula.kind == "forall"
        else:
            parts = formula.parts
            is_conj = isinstance(formula, Conj)
        saw_unknown = False
        for part in parts:
            value = eval_formula(part, assignment)
            if value is None:
                saw_unknown = True
            elif value != is_conj:
                # False part of a conjunction / True part of a disjunction
                return not is_conj if not is_conj else False
        if saw_unknown:
            return None
        return is_conj
    raise SolverError(f"cannot evaluate formula {formula!r}")


# ---------------------------------------------------------------------------
# Union-find over equality units
# ---------------------------------------------------------------------------


class _UnionFind:
    def __init__(self):
        self._parent: dict[str, str] = {}

    def find(self, var: str) -> str:
        parent = self._parent.setdefault(var, var)
        if parent == var:
            return var
        root = self.find(parent)
        self._parent[var] = root
        return root

    def union(self, a: str, b: str) -> str:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            # Deterministic representative: lexicographically smallest.
            if rb < ra:
                ra, rb = rb, ra
            self._parent[rb] = ra
        return ra


# ---------------------------------------------------------------------------
# The solver core
# ---------------------------------------------------------------------------


class GroundSearch:
    """Solve a conjunction of formulas over typed integer variables."""

    def __init__(
        self,
        formulas: list[Formula],
        infos: dict[str, VarInfo],
        symbols: SymbolTable,
        config: SearchConfig | None = None,
    ):
        self._input = formulas
        self._infos = infos
        self._symbols = symbols
        self._config = config or SearchConfig()
        self._uf = _UnionFind()
        self._fixed: dict[str, int] = {}
        self._constraints: list[Formula] = []
        self._unsat = False

    # -- preprocessing ------------------------------------------------------

    def _flatten(self) -> list[Formula]:
        units: list[Atom] = []
        rest: list[Formula] = []
        stack = list(self._input)
        while stack:
            node = stack.pop()
            if isinstance(node, Conj):
                stack.extend(node.parts)
            elif isinstance(node, BoolConst):
                if not node.value:
                    self._unsat = True
            elif isinstance(node, Atom):
                units.append(node)
            else:
                rest.append(node)
        self._units = units
        return rest

    def _propagate_units(self) -> None:
        """Merge equality units and fix constant assignments to fixpoint."""
        pending = list(self._units)
        residual: list[Atom] = []
        changed = True
        while changed:
            changed = False
            next_pending: list[Atom] = []
            for atom in pending:
                lin = self._rewrite_linear(atom.lin)
                atom = Atom(atom.op, lin)
                free = lin.variables
                if not free:
                    if atom.evaluate({}) is False:
                        self._unsat = True
                    continue
                if atom.op == "=" and len(free) == 1:
                    (name, coef), = lin.coeffs
                    if lin.const % coef == 0:
                        value = -lin.const // coef
                        rep = self._uf.find(name)
                        if rep in self._fixed and self._fixed[rep] != value:
                            self._unsat = True
                        else:
                            self._fixed[rep] = value
                            changed = True
                        continue
                    self._unsat = True
                    continue
                if (
                    atom.op == "="
                    and len(free) == 2
                    and lin.const == 0
                    and sorted(c for _, c in lin.coeffs) == [-1, 1]
                ):
                    a, b = free
                    if self._kind(a) != self._kind(b) or self._pool(a) != self._pool(b):
                        raise SolverError(
                            f"type mismatch merging {a} and {b}"
                        )
                    ra, rb = self._uf.find(a), self._uf.find(b)
                    if ra != rb:
                        fixed_a = self._fixed.pop(ra, None)
                        fixed_b = self._fixed.pop(rb, None)
                        rep = self._uf.union(a, b)
                        for value in (fixed_a, fixed_b):
                            if value is None:
                                continue
                            if rep in self._fixed and self._fixed[rep] != value:
                                self._unsat = True
                            else:
                                self._fixed[rep] = value
                        changed = True
                    continue
                next_pending.append(atom)
            pending = next_pending
        residual = pending
        self._residual_units = residual

    def _kind(self, var: str) -> str:
        info = self._infos.get(var)
        return info.kind if info else "int"

    def _pool(self, var: str) -> str | None:
        info = self._infos.get(var)
        return info.pool if info else None

    def _rewrite_linear(self, lin: Linear) -> Linear:
        coeffs: dict[str, int] = {}
        constant = lin.const
        for name, coef in lin.coeffs:
            rep = self._uf.find(name)
            if rep in self._fixed:
                constant += coef * self._fixed[rep]
            else:
                coeffs[rep] = coeffs.get(rep, 0) + coef
        return Linear.build(coeffs, constant)

    def _rewrite_formula(self, formula: Formula) -> Formula:
        if isinstance(formula, Atom):
            lin = self._rewrite_linear(formula.lin)
            atom = Atom(formula.op, lin)
            if not lin.variables:
                return BoolConst(bool(atom.evaluate({})))
            return atom
        if isinstance(formula, BoolConst):
            return formula
        if isinstance(formula, Neg):
            return Neg(self._rewrite_formula(formula.part))
        if isinstance(formula, Conj):
            return Conj(tuple(self._rewrite_formula(p) for p in formula.parts))
        if isinstance(formula, Disj):
            return Disj(tuple(self._rewrite_formula(p) for p in formula.parts))
        if isinstance(formula, Quantified):
            return Quantified(
                formula.kind,
                tuple(self._rewrite_formula(p) for p in formula.instances),
                formula.label,
            )
        raise SolverError(f"cannot rewrite formula {formula!r}")

    # -- domain construction ---------------------------------------------------

    def _universe_key(self, rep: str) -> tuple[str, str | None]:
        return (self._kind(rep), self._pool(rep))

    def _add_string_witnesses(self, pool: str, code: int) -> None:
        """Intern strings lexicographically adjacent to ``code``'s string.

        Order comparisons against a string constant need candidate values
        strictly below and above it; synthetic neighbours keep the pool's
        rank-preserving code order intact.
        """
        try:
            value = self._symbols.decode(code)
        except KeyError:
            return
        self._symbols.intern(pool, value + "0")  # strictly above
        if value:
            first = value[0]
            if ord(first) > 33:
                below = chr(ord(first) - 1) + "z"
                if below < value:
                    self._symbols.intern(pool, below)

    def _build_domains(
        self, reps: list[str], constraints: list[Formula]
    ) -> dict[str, list[int]]:
        config = self._config
        # Collect integer constants relevant to each universe.
        int_candidates: set[int] = {0, 1, 2}
        offsets: set[int] = set()
        # String pools: order atoms against interned constants need
        # lexicographic boundary witnesses (a value just below / above).
        str_witness_pools: set[str] = set()
        for formula in constraints + list(self._residual_units):
            for atom in _formula_atoms(formula):
                n_vars = len(atom.lin.variables)
                kinds = {self._kind(v) for v in atom.lin.variables}
                if kinds == {"str"}:
                    if atom.op in ("<", "<=") and n_vars == 1:
                        (name, coef), = atom.lin.coeffs
                        code = -atom.lin.const // coef if coef else None
                        pool = self._pool(name)
                        if code is not None and pool is not None:
                            self._add_string_witnesses(pool, code)
                    continue
                if n_vars == 1:
                    (name, coef), = atom.lin.coeffs
                    # Witnesses around the break-point of the atom.
                    for delta in (-1, 0, 1):
                        value, rem = divmod(-atom.lin.const, coef)
                        int_candidates.add(value + delta)
                elif n_vars >= 2 and atom.lin.const != 0:
                    offsets.add(abs(atom.lin.const))
        for rep in reps:
            if self._kind(rep) == "int":
                for info in self._member_infos(rep):
                    int_candidates.update(info.preferred)
        for value in self._fixed.values():
            if value < SymbolTable._POOL_STRIDE:
                int_candidates.add(value)
        # One closure round under two-variable offsets.
        if offsets:
            base = set(int_candidates)
            for value in base:
                for offset in offsets:
                    int_candidates.add(value + offset)
                    int_candidates.add(value - offset)
        fresh_base = max(int_candidates, default=0) + 10
        for i in range(config.fresh_int_values):
            int_candidates.add(fresh_base + i)
        int_domain = sorted(int_candidates)

        domains: dict[str, list[int]] = {}
        str_universe_cache: dict[str | None, list[int]] = {}
        for rep in reps:
            kind, pool = self._universe_key(rep)
            if kind == "int":
                candidates = list(int_domain)
            else:
                if pool not in str_universe_cache:
                    known = set(self._symbols.known_codes(pool))
                    for _ in range(config.fresh_str_values):
                        known.add(self._symbols.fresh(pool))
                    str_universe_cache[pool] = sorted(known)
                candidates = list(str_universe_cache[pool])
            preferred: list[int] = []
            seen: set[int] = set()
            for info in self._member_infos(rep):
                for value in info.preferred:
                    if value in set(candidates) and value not in seen:
                        preferred.append(value)
                        seen.add(value)
            ordered = preferred + [v for v in candidates if v not in seen]
            if len(ordered) > config.max_domain_size:
                ordered = ordered[: config.max_domain_size]
            domains[rep] = ordered
        return domains

    def _member_infos(self, rep: str):
        for name, info in self._infos.items():
            if self._uf.find(name) == rep:
                yield info

    # -- search -------------------------------------------------------------------

    def run(self) -> SearchOutcome:
        start = time.perf_counter()
        rest = self._flatten()
        self._propagate_units()
        if self._unsat:
            return SearchOutcome(None, elapsed=time.perf_counter() - start)
        constraints: list[Formula] = []
        for formula in rest + list(self._residual_units):
            rewritten = self._rewrite_formula(formula)
            if not formula_variables(rewritten):
                # Variable-free after substitution: decide it now — it
                # would never be re-evaluated by the watch scheme below.
                if eval_formula(rewritten, {}) is not True:
                    return SearchOutcome(
                        None, elapsed=time.perf_counter() - start
                    )
                continue
            constraints.append(rewritten)

        # Representatives that still need values.
        reps: set[str] = set()
        for name in self._infos:
            rep = self._uf.find(name)
            if rep not in self._fixed:
                reps.add(rep)
        for formula in constraints:
            for name in formula_variables(formula):
                if name not in self._fixed:
                    reps.add(name)
        rep_list = sorted(reps)
        domains = self._build_domains(rep_list, constraints)

        # Prune domains with single-variable constraints; index the rest.
        watch: dict[str, list[int]] = {rep: [] for rep in rep_list}
        active: list[Formula] = []
        for formula in constraints:
            variables = sorted(formula_variables(formula))
            if len(variables) == 1:
                # Any single-variable constraint — an atom, or e.g. an
                # input-database EXISTS disjunction (Section VI-A) — is a
                # domain restriction; apply it up front.
                rep = variables[0]
                domains[rep] = [
                    v
                    for v in domains[rep]
                    if eval_formula(formula, {rep: v}) is True
                ]
                continue
            index = len(active)
            active.append(formula)
            for rep in variables:
                if rep in watch:
                    watch[rep].append(index)
        for rep in rep_list:
            if not domains[rep]:
                return SearchOutcome(
                    None,
                    elapsed=time.perf_counter() - start,
                    classes=len(rep_list),
                    constraints=len(active),
                )

        # Assign constrained classes first, in constraint-graph order so each
        # new variable shares a constraint with an already-assigned one and
        # failures surface immediately.  Unconstrained classes go last.
        constrained = [rep for rep in rep_list if watch[rep]]
        free = [rep for rep in rep_list if not watch[rep]]
        constrained.sort(key=lambda r: (len(domains[r]), -len(watch[r]), r))
        order = _connected_order_of(constrained, active, watch) + free

        assignment: dict[str, int] = {}
        nodes = 0
        limit = self._config.node_limit

        def harvest(formula: Formula, rep: str, out: list[Atom]) -> None:
            """Collect atoms worth steering ``rep`` by, context-sensitively.

            Inside a disjunction only the *first* not-yet-false disjunct
            is considered: satisfying it satisfies the constraint, and
            harvesting deeper alternatives is what used to drag primary
            keys equal through the chase implication's second disjunct.
            Negations contribute nothing (their atoms are already
            negated by the builders in NNF positions we emit).
            """
            if isinstance(formula, Atom):
                if any(name == rep for name, _ in formula.lin.coeffs):
                    out.append(formula)
                return
            if isinstance(formula, Conj):
                for part in formula.parts:
                    harvest(part, rep, out)
                return
            if isinstance(formula, Quantified) and formula.kind == "forall":
                for part in formula.instances:
                    harvest(part, rep, out)
                return
            parts = None
            if isinstance(formula, Disj):
                parts = formula.parts
            elif isinstance(formula, Quantified):  # exists
                parts = formula.instances
            if parts is not None:
                for part in parts:
                    if eval_formula(part, assignment) is False:
                        continue
                    harvest(part, rep, out)
                    return

        def ordered_values(rep: str) -> list[int]:
            domain = domains[rep]
            if not self._config.enable_suggestions:
                return domain
            suggestions: list[int] = []
            avoided: list[int] = []
            atoms: list[Atom] = []
            for index in watch[rep]:
                if eval_formula(active[index], assignment) is True:
                    continue
                harvest(active[index], rep, atoms)
            for atom in atoms:
                total = atom.lin.const
                coef_of_rep = 0
                ready = True
                for name, coef in atom.lin.coeffs:
                    if name == rep:
                        coef_of_rep = coef
                        continue
                    value = assignment.get(name)
                    if value is None:
                        ready = False
                        break
                    total += coef * value
                if not ready or coef_of_rep not in (1, -1):
                    continue
                value, remainder = divmod(-total, coef_of_rep)
                if atom.op == "=":
                    if remainder == 0 and value not in suggestions:
                        suggestions.append(value)
                elif atom.op == "<>":
                    # Defer the forbidden value instead of colliding into
                    # it through the shared domain ordering.
                    if remainder == 0 and value not in avoided:
                        avoided.append(value)
                elif atom.op == "<":
                    witness = value - 1 if coef_of_rep > 0 else value + 1
                    if witness not in suggestions:
                        suggestions.append(witness)
                else:  # "<=" — the boundary witness suffices either way.
                    witness = value
                    if witness not in suggestions:
                        suggestions.append(witness)
            if not suggestions and not avoided:
                return domain
            domain_set = set(domain)
            head = [v for v in suggestions if v in domain_set]
            head_set = set(head)
            avoided_set = set(avoided) - head_set
            middle = [
                v for v in domain if v not in head_set and v not in avoided_set
            ]
            tail = [v for v in domain if v in avoided_set]
            return head + middle + tail

        constraint_vars = [frozenset(formula_variables(f)) for f in active]

        def backtrack(position: int):
            """Conflict-directed backjumping search.

            Returns True on success, or the *conflict set* — the variables
            responsible for the dead end.  A caller whose variable is not
            in the conflict set passes it straight up without trying its
            remaining values: re-assigning an irrelevant variable cannot
            resolve the conflict (this is what keeps a failing pair like
            the two operands of a sum constraint from re-enumerating every
            unrelated variable ordered between them).
            """
            nonlocal nodes
            if position == len(order):
                return True
            rep = order[position]
            conflict: set[str] = set()
            for value in ordered_values(rep):
                nodes += 1
                if nodes > limit:
                    raise SolverLimitError(
                        f"search exceeded {limit} nodes"
                    )
                assignment[rep] = value
                failed_index = -1
                for index in watch[rep]:
                    if eval_formula(active[index], assignment) is False:
                        failed_index = index
                        break
                if failed_index >= 0:
                    conflict |= constraint_vars[failed_index]
                    del assignment[rep]
                    continue
                result = backtrack(position + 1)
                if result is True:
                    return True
                del assignment[rep]
                if rep not in result:
                    return result
                conflict |= result
            conflict.discard(rep)
            return conflict

        found = backtrack(0) is True
        elapsed = time.perf_counter() - start
        if not found:
            return SearchOutcome(
                None, nodes=nodes, elapsed=elapsed,
                classes=len(rep_list), constraints=len(active),
            )
        assignment.update(self._fixed)
        full: dict[str, int] = {}
        for name in self._infos:
            rep = self._uf.find(name)
            full[name] = assignment[rep]
        # Classes created only through constraints (no VarInfo) stay internal.
        model = Model(full, dict(self._infos), self._symbols)
        return SearchOutcome(
            model, nodes=nodes, elapsed=elapsed,
            classes=len(rep_list), constraints=len(active),
        )


def _connected_order_of(
    seeds: list[str],
    active: list[Formula],
    watch: dict[str, list[int]],
) -> list[str]:
    """Greedy constraint-graph traversal starting from the hardest seed."""
    if not seeds:
        return []
    constraint_vars = [sorted(formula_variables(f)) for f in active]
    order: list[str] = []
    placed: set[str] = set()
    pending = list(seeds)
    while pending:
        start = next(p for p in pending if p not in placed)
        queue = [start]
        while queue:
            rep = queue.pop(0)
            if rep in placed:
                continue
            placed.add(rep)
            order.append(rep)
            neighbours: list[str] = []
            for index in watch.get(rep, ()):
                neighbours.extend(constraint_vars[index])
            for other in neighbours:
                if other not in placed and other in watch:
                    queue.append(other)
        pending = [p for p in pending if p not in placed]
    return order


def _formula_atoms(formula: Formula) -> list[Atom]:
    out: list[Atom] = []
    stack = [formula]
    while stack:
        node = stack.pop()
        if isinstance(node, Atom):
            out.append(node)
        elif isinstance(node, (Conj, Disj)):
            stack.extend(node.parts)
        elif isinstance(node, Neg):
            stack.append(node.part)
        elif isinstance(node, Quantified):
            stack.extend(node.instances)
    return out
