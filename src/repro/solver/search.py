"""Preprocessing and backtracking search over finite candidate domains.

The pipeline mirrors what makes the paper's unfolded constraints fast for
CVC3 (Section VI-B and V-H): after unfolding, the constraint set is mostly
unit equalities, which collapse under union-find into a small number of
variable classes; the remaining disjunctions and disequalities are decided
by depth-first search with three-valued (Kleene) constraint evaluation for
early pruning.

Quantified formulas that were *not* unfolded are handled soundly but
naively: they are treated as opaque constraints, invisible to the
union-find/domain preprocessing and re-expanded at every evaluation —
reproducing, qualitatively, the slow quantified path the paper measured.
"""

from __future__ import annotations

import time
import warnings
from collections import deque
from dataclasses import InitVar, dataclass

from repro.errors import SolverError, SolverLimitError
from repro.solver.model import Model, SymbolTable
from repro.solver.terms import (
    Atom,
    BoolConst,
    Conj,
    Disj,
    Formula,
    Linear,
    Neg,
    Quantified,
    VarInfo,
    formula_variables,
)


@dataclass
class SearchConfig:
    """Search tuning knobs."""

    node_limit: int = 500_000
    #: Wall-clock budget for one search run (preprocessing included),
    #: in seconds; ``None`` disables the deadline.  Checked on entry to
    #: the search and every :data:`DEADLINE_CHECK_NODES` nodes — a
    #: deadline overrun raises :class:`SolverLimitError` with
    #: ``kind="deadline"``.
    solve_deadline_s: float | None = None
    fresh_int_values: int = 8
    fresh_str_values: int = 8
    max_domain_size: int = 64
    #: Try values suggested by equality constraints first.  The unfolded
    #: mode's analogue of seeing through quantifiers; the lazy quantifier
    #: mode runs with this off (with a fallback on node-limit overrun).
    enable_suggestions: bool = True
    #: Hot-path ablation switch: satisfied-constraint marks during search
    #: and the precomputed rep->members index.  Off reproduces the seed
    #: implementation's re-evaluation behaviour (benchmarks only; results
    #: are identical either way).
    hot_path: bool = True
    #: Delta-solve ablation switch (DESIGN.md §5j): solve each kill
    #: group's constraints as an incremental delta over the compiled
    #: query skeleton (shared PK/FK/domain system preprocessed once per
    #: query shape) instead of compiling the full system from scratch.
    #: Results are byte-identical either way; off forces the
    #: full-compile path (``--no-delta-solve`` on the CLI).
    delta_solve: bool = True
    #: Deprecated spelling of :attr:`solve_deadline_s` (the pre-§5e
    #: name).  Accepted as a constructor keyword only; warns.
    deadline_s: InitVar[float | None] = None

    def __post_init__(self, deadline_s: float | None) -> None:
        # Apply only when solve_deadline_s was not itself set: replace()
        # round-trips the alias property, and the re-passed old value
        # must not clobber a new solve_deadline_s in the same call.
        if deadline_s is not None and self.solve_deadline_s is None:
            warnings.warn(
                "SearchConfig(deadline_s=...) is deprecated; use "
                "solve_deadline_s",
                DeprecationWarning,
                stacklevel=3,
            )
            self.solve_deadline_s = deadline_s


def _deadline_s_alias(self) -> float | None:
    warnings.warn(
        "SearchConfig.deadline_s is deprecated; read solve_deadline_s",
        DeprecationWarning,
        stacklevel=2,
    )
    return self.solve_deadline_s


# Assigned after the decorator ran so the dataclass machinery sees only
# the InitVar, not the property, as the ``deadline_s`` class attribute.
SearchConfig.deadline_s = property(_deadline_s_alias)


#: How often (in explored nodes) the search consults the wall clock when
#: a deadline is configured.  Power of two: the check compiles to a mask.
DEADLINE_CHECK_NODES = 256


@dataclass
class SearchOutcome:
    """Result of one search run."""

    model: Model | None
    nodes: int = 0
    elapsed: float = 0.0
    classes: int = 0
    constraints: int = 0
    #: Stage split of ``elapsed``: unit propagation / rewriting / domain
    #: construction vs. the backtracking search proper.
    preprocess_elapsed: float = 0.0
    search_elapsed: float = 0.0
    #: Domain-aggregate memo traffic during domain construction: formulas
    #: whose ``_domagg`` was reused vs. built (see SearchConfig.hot_path).
    cache_hits: int = 0
    cache_misses: int = 0


# ---------------------------------------------------------------------------
# Kleene evaluation
# ---------------------------------------------------------------------------


def eval_formula(formula: Formula, assignment: dict[str, int]) -> bool | None:
    """Three-valued evaluation under a partial assignment."""
    if isinstance(formula, Atom):
        return formula.evaluate(assignment)
    if isinstance(formula, BoolConst):
        return formula.value
    if isinstance(formula, Neg):
        inner = eval_formula(formula.part, assignment)
        return None if inner is None else not inner
    if isinstance(formula, (Conj, Disj)) or isinstance(formula, Quantified):
        if isinstance(formula, Quantified):
            parts = formula.instances
            is_conj = formula.kind == "forall"
        else:
            parts = formula.parts
            is_conj = isinstance(formula, Conj)
        saw_unknown = False
        for part in parts:
            value = eval_formula(part, assignment)
            if value is None:
                saw_unknown = True
            elif value != is_conj:
                # False part of a conjunction / True part of a disjunction
                return not is_conj
        if saw_unknown:
            return None
        return is_conj
    raise SolverError(f"cannot evaluate formula {formula!r}")


# ---------------------------------------------------------------------------
# Union-find over equality units
# ---------------------------------------------------------------------------


class _UnionFind:
    def __init__(self):
        self._parent: dict[str, str] = {}

    def find(self, var: str) -> str:
        # Iterative path-halving: long equality chains (one per join in a
        # chain query) must not recurse towards Python's stack limit.
        parent = self._parent
        if var not in parent:
            parent[var] = var
            return var
        while parent[var] != var:
            parent[var] = parent[parent[var]]
            var = parent[var]
        return var

    def union(self, a: str, b: str) -> str:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            # Deterministic representative: lexicographically smallest.
            if rb < ra:
                ra, rb = rb, ra
            self._parent[rb] = ra
        return ra


# ---------------------------------------------------------------------------
# The solver core
# ---------------------------------------------------------------------------


class GroundSearch:
    """Solve a conjunction of formulas over typed integer variables."""

    def __init__(
        self,
        formulas: list[Formula],
        infos: dict[str, VarInfo],
        symbols: SymbolTable,
        config: SearchConfig | None = None,
        base=None,
    ):
        """``base`` (a :class:`~repro.solver.skeleton.CompiledSkeleton`)
        switches on delta solving: ``formulas`` is then only the solve's
        *delta* — the skeleton's preprocessed shared system is seeded
        underneath it instead of being re-flattened, re-propagated and
        re-rewritten from scratch (DESIGN.md §5j)."""
        self._input = formulas
        self._infos = infos
        self._symbols = symbols
        self._config = config or SearchConfig()
        self._base = base
        self._uf = _UnionFind()
        self._fixed: dict[str, int] = {}
        self._constraints: list[Formula] = []
        self._unsat = False
        self._members: dict[str, list[VarInfo]] | None = None
        self._touched: set[str] | None = None
        self._deadline: float | None = None
        #: Roots that took part in a union during *this* solve's unit
        #: propagation (tracked only under a base skeleton) — exactly
        #: the equivalence-class partitions whose precompiled state must
        #: be re-derived copy-on-write.
        self._dirty: set[str] | None = set() if base is not None else None
        # Domain-aggregate memo traffic (reported via SearchOutcome).
        self._cache_hits = 0
        self._cache_misses = 0

    # -- preprocessing ------------------------------------------------------

    def _flatten(self) -> list[Formula]:
        units: list[Atom] = []
        rest: list[Formula] = []
        stack = list(self._input)
        while stack:
            node = stack.pop()
            if isinstance(node, Conj):
                stack.extend(node.parts)
            elif isinstance(node, BoolConst):
                if not node.value:
                    self._unsat = True
            elif isinstance(node, Atom):
                units.append(node)
            else:
                rest.append(node)
        self._units = units
        return rest

    def _propagate_units(self) -> None:
        """Merge equality units and fix constant assignments to fixpoint."""
        pending = list(self._units)
        residual: list[Atom] = []
        changed = True
        while changed:
            changed = False
            next_pending: list[Atom] = []
            for atom in pending:
                lin = self._rewrite_linear(atom.lin)
                if lin is not atom.lin:
                    atom = Atom(atom.op, lin)
                free = lin.variables
                if not free:
                    if atom.evaluate({}) is False:
                        self._unsat = True
                    continue
                if atom.op == "=" and len(free) == 1:
                    (name, coef), = lin.coeffs
                    if lin.const % coef == 0:
                        value = -lin.const // coef
                        rep = self._uf.find(name)
                        if rep in self._fixed and self._fixed[rep] != value:
                            self._unsat = True
                        else:
                            self._fixed[rep] = value
                            changed = True
                        continue
                    self._unsat = True
                    continue
                if (
                    atom.op == "="
                    and len(free) == 2
                    and lin.const == 0
                    and sorted(c for _, c in lin.coeffs) == [-1, 1]
                ):
                    a, b = free
                    if self._kind(a) != self._kind(b) or self._pool(a) != self._pool(b):
                        raise SolverError(
                            f"type mismatch merging {a} and {b}"
                        )
                    ra, rb = self._uf.find(a), self._uf.find(b)
                    if ra != rb:
                        if self._dirty is not None:
                            # Delta solve: both roots' precompiled
                            # partitions are now stale (COW re-merge).
                            self._dirty.add(ra)
                            self._dirty.add(rb)
                        fixed_a = self._fixed.pop(ra, None)
                        fixed_b = self._fixed.pop(rb, None)
                        rep = self._uf.union(a, b)
                        for value in (fixed_a, fixed_b):
                            if value is None:
                                continue
                            if rep in self._fixed and self._fixed[rep] != value:
                                self._unsat = True
                            else:
                                self._fixed[rep] = value
                        changed = True
                    continue
                next_pending.append(atom)
            pending = next_pending
        residual = pending
        self._residual_units = residual

    def _kind(self, var: str) -> str:
        info = self._infos.get(var)
        return info.kind if info else "int"

    def _pool(self, var: str) -> str | None:
        info = self._infos.get(var)
        return info.pool if info else None

    def _rewrite_linear(self, lin: Linear) -> Linear:
        find = self._uf.find
        fixed = self._fixed
        if self._config.hot_path:
            # Identity fast path: most linears mention no merged or fixed
            # variable, so the rebuild below would allocate an equal copy.
            for name, _ in lin.coeffs:
                rep = find(name)
                if rep != name or rep in fixed:
                    break
            else:
                return lin
        coeffs: dict[str, int] = {}
        constant = lin.const
        for name, coef in lin.coeffs:
            rep = find(name)
            if rep in fixed:
                constant += coef * fixed[rep]
            else:
                coeffs[rep] = coeffs.get(rep, 0) + coef
        return Linear.build(coeffs, constant)

    def _touched_vars(self) -> set[str]:
        """Variables whose atoms change under ``_rewrite_formula``.

        A variable is touched when union-find maps it to a different
        representative or its representative has a fixed value; formulas
        mentioning no touched variable rewrite to themselves and are
        returned as-is (hot path), which also preserves their per-node
        memos across solves that share formula objects.
        """
        touched = set(self._fixed)
        for name in list(self._uf._parent):
            rep = self._uf.find(name)
            if rep != name or rep in self._fixed:
                touched.add(name)
        return touched

    def _rewrite_formula(self, formula: Formula) -> Formula:
        if self._config.hot_path and self._touched is not None:
            if not (formula_variables(formula) & self._touched):
                return formula
        if isinstance(formula, Atom):
            lin = self._rewrite_linear(formula.lin)
            atom = Atom(formula.op, lin)
            if not lin.variables:
                return BoolConst(bool(atom.evaluate({})))
            return atom
        if isinstance(formula, BoolConst):
            return formula
        if isinstance(formula, Neg):
            return Neg(self._rewrite_formula(formula.part))
        if isinstance(formula, Conj):
            return Conj(tuple(self._rewrite_formula(p) for p in formula.parts))
        if isinstance(formula, Disj):
            return Disj(tuple(self._rewrite_formula(p) for p in formula.parts))
        if isinstance(formula, Quantified):
            return Quantified(
                formula.kind,
                tuple(self._rewrite_formula(p) for p in formula.instances),
                formula.label,
            )
        raise SolverError(f"cannot rewrite formula {formula!r}")

    def _delta_state_key(self, formula: Formula) -> tuple:
        """Fingerprint of the delta state restricted to ``formula``.

        Two delta solves whose union-find/fixed state agree on a shared
        formula's variables produce structurally identical rewrites, so
        the skeleton's rewrite cache can hand back the earlier solve's
        object — keeping its per-node memos warm — instead of
        rebuilding the tree.
        """
        variables = formula.__dict__.get("_fvsorted")
        if variables is None:
            variables = sorted(formula_variables(formula))
            object.__setattr__(formula, "_fvsorted", variables)
        parent = self._uf._parent
        find = self._uf.find
        fixed = self._fixed
        key = []
        for name in variables:
            rep = find(name) if name in parent else name
            key.append((rep, fixed.get(rep)))
        return tuple(key)

    # -- domain construction ---------------------------------------------------

    def _universe_key(self, rep: str) -> tuple[str, str | None]:
        return (self._kind(rep), self._pool(rep))

    def _add_string_witnesses(self, pool: str, code: int) -> None:
        """Intern strings lexicographically adjacent to ``code``'s string.

        Order comparisons against a string constant need candidate values
        strictly below and above it; synthetic neighbours keep the pool's
        rank-preserving code order intact.
        """
        try:
            value = self._symbols.decode(code)
        except KeyError:
            return
        self._symbols.intern(pool, value + "0")  # strictly above
        if value:
            first = value[0]
            if ord(first) > 33:
                below = chr(ord(first) - 1) + "z"
                if below < value:
                    self._symbols.intern(pool, below)

    def _domain_hint(self, atom: Atom) -> tuple[str, object]:
        """Classify an atom's contribution to domain construction.

        Returns ``('str', (pool, code))`` for order atoms against a string
        constant (boundary witnesses needed), ``('int', (v-1, v, v+1))``
        for single-variable integer atoms (break-point witnesses),
        ``('off', k)`` for multi-variable atoms with constant offset k,
        and ``('none', None)`` otherwise.
        """
        variables = atom.lin.variables
        n_vars = len(variables)
        kinds = {self._kind(v) for v in variables}
        if kinds == {"str"}:
            if atom.op in ("<", "<=") and n_vars == 1:
                (name, coef), = atom.lin.coeffs
                code = -atom.lin.const // coef if coef else None
                pool = self._pool(name)
                if code is not None and pool is not None:
                    return ("str", (pool, code))
            return ("none", None)
        if n_vars == 1:
            (name, coef), = atom.lin.coeffs
            # Witnesses around the break-point of the atom.
            value = -atom.lin.const // coef
            return ("int", (value - 1, value, value + 1))
        if n_vars >= 2 and atom.lin.const != 0:
            return ("off", abs(atom.lin.const))
        return ("none", None)

    def _domagg_of(self, formula: Formula, memo: bool):
        """Domain-aggregate of one formula: ``(ints, offsets, strs)``.

        A formula's domain contribution is a pure function of its
        atoms' structure and their variables' kinds, both stable
        across the sibling solves that share the formula object —
        aggregated once per node and memoized like _fv/_atoms.
        """
        agg = formula.__dict__.get("_domagg") if memo else None
        if agg is not None:
            self._cache_hits += 1
            return agg
        self._cache_misses += 1
        ints: set[int] = set()
        offs: set[int] = set()
        strs: list[tuple[str, int]] = []
        for atom in _formula_atoms(formula, cache=memo):
            hint = atom.__dict__.get("_domhint") if memo else None
            if hint is None:
                hint = self._domain_hint(atom)
                if memo:
                    object.__setattr__(atom, "_domhint", hint)
            tag, data = hint
            if tag == "str":
                strs.append(data)
            elif tag == "int":
                ints.update(data)
            elif tag == "off":
                offs.add(data)
        agg = (ints, offs, strs)
        if memo:
            object.__setattr__(formula, "_domagg", agg)
        return agg

    def _build_domains(
        self,
        reps: list[str],
        constraints: list[Formula],
        free_reps: set[str] | None = None,
        base_agg=None,
        skip: int = 0,
        pref=None,
        pref_skip=None,
        dom_cache=None,
    ) -> dict[str, list[int]]:
        """Ordered candidate values per representative.

        ``base_agg``/``skip`` (delta solving, §5j) seed the candidate
        collection from the skeleton's precompiled aggregate over its
        first ``skip`` constraints — exact, because on that path the
        ``constraints`` prefix *is* ``base.rest`` verbatim.  ``pref`` is
        the skeleton's per-class preferred-value union, valid for every
        class the delta left unmerged (``pref_skip`` holds the merged
        ones, which fall back to a member scan).
        """
        config = self._config
        # Collect integer constants relevant to each universe.
        int_candidates: set[int] = {0, 1, 2}
        offsets: set[int] = set()
        memo = config.hot_path
        if base_agg is not None:
            int_candidates.update(base_agg[0])
            offsets.update(base_agg[1])
            # String pools: order atoms against interned constants need
            # lexicographic boundary witnesses, re-interned per solve in
            # the same formula order as a full scan.
            for pool, code in base_agg[2]:
                self._add_string_witnesses(pool, code)
        for formula in constraints[skip:] + list(self._residual_units):
            agg = self._domagg_of(formula, memo)
            int_candidates.update(agg[0])
            offsets.update(agg[1])
            for pool, code in agg[2]:
                self._add_string_witnesses(pool, code)
        for rep in reps:
            if pref is not None and rep not in pref_skip:
                values = pref.get(rep)
                if values is not None:
                    int_candidates.update(values)
                    continue
            if self._kind(rep) == "int":
                for info in self._member_infos(rep):
                    int_candidates.update(info.preferred)
        for value in self._fixed.values():
            if value < SymbolTable._POOL_STRIDE:
                int_candidates.add(value)
        # One closure round under two-variable offsets.
        if offsets:
            base = set(int_candidates)
            for value in base:
                for offset in offsets:
                    int_candidates.add(value + offset)
                    int_candidates.add(value - offset)
        fresh_base = max(int_candidates, default=0) + 10
        for i in range(config.fresh_int_values):
            int_candidates.add(fresh_base + i)
        int_domain = sorted(int_candidates)
        int_domain_set = set(int_domain)

        domains: dict[str, list[int]] = {}
        max_size = config.max_domain_size
        #: universe key -> (ordered candidates, membership set)
        universe_cache: dict[str | None, tuple[list[int], set[int]]] = {
            None: (int_domain, int_domain_set)
        }
        #: universe key -> frozenset fingerprint of its candidates (the
        #: dom_cache key component; frozensets cache their hash).
        cand_fp: dict[str | None, frozenset] = {}
        for rep in reps:
            kind, pool = self._universe_key(rep)
            key = None if kind == "int" else pool
            cached = universe_cache.get(key)
            if cached is None:
                frozen = (
                    self._symbols.frozen_universe(pool, config.fresh_str_values)
                    if memo
                    else None
                )
                if frozen is not None:
                    candidates = list(frozen)
                else:
                    known = set(self._symbols.known_codes(pool))
                    for _ in range(config.fresh_str_values):
                        known.add(self._symbols.fresh(pool))
                    candidates = sorted(known)
                cached = (candidates, set(candidates))
                universe_cache[key] = cached
            candidates, candidate_set = cached
            dkey = None
            if dom_cache is not None and (
                pref_skip is None or rep not in pref_skip
            ):
                # Unmerged base class: its domain is a pure function of
                # the rep (kind, pool, member order) and the candidate
                # content; candidate order is deterministic from the
                # set, so set-equality implies list-equality.
                fp = cand_fp.get(key)
                if fp is None:
                    fp = cand_fp[key] = frozenset(candidates)
                dkey = (
                    rep,
                    free_reps is not None and rep in free_reps,
                    fp,
                    max_size,
                )
                got = dom_cache.get(dkey)
                if got is not None:
                    domains[rep] = got
                    continue
            if free_reps is not None and rep in free_reps:
                # Unconstrained: the search only ever takes the first
                # ordered value, so the rest of the domain is not built.
                first = None
                for info in self._member_infos(rep):
                    for value in info.preferred:
                        if value in candidate_set:
                            first = value
                            break
                    if first is not None:
                        break
                if first is not None:
                    domains[rep] = [first]
                else:
                    domains[rep] = [candidates[0]] if candidates else []
                if dkey is not None:
                    dom_cache[dkey] = domains[rep]
                continue
            preferred: list[int] = []
            seen: set[int] = set()
            for info in self._member_infos(rep):
                for value in info.preferred:
                    if value in candidate_set and value not in seen:
                        preferred.append(value)
                        seen.add(value)
            if not seen:
                # No preferred values: the universe order is the domain.
                # Sharing the list is safe — domains are never mutated.
                ordered = (
                    candidates
                    if len(candidates) <= max_size
                    else candidates[:max_size]
                )
            else:
                ordered = preferred + [v for v in candidates if v not in seen]
                if len(ordered) > max_size:
                    ordered = ordered[:max_size]
            domains[rep] = ordered
            if dkey is not None:
                dom_cache[dkey] = ordered
        return domains

    def _member_infos(self, rep: str):
        if not self._config.hot_path:
            find = self._uf.find
            return [
                info for name, info in self._infos.items() if find(name) == rep
            ]
        # Precomputed rep -> members index (the union-find is stable once
        # unit propagation finishes, which is before any caller runs).
        # Insertion order matches the declaration-order scan above.
        if self._members is None:
            members: dict[str, list[VarInfo]] = {}
            for name, info in self._infos.items():
                members.setdefault(self._uf.find(name), []).append(info)
            self._members = members
        return self._members.get(rep, ())

    # -- search -------------------------------------------------------------------

    def run(self) -> SearchOutcome:
        start = time.perf_counter()
        self._deadline = (
            start + self._config.solve_deadline_s
            if self._config.solve_deadline_s is not None
            else None
        )

        def preprocess_only(model=None, **kw):
            elapsed = time.perf_counter() - start
            return SearchOutcome(
                model, elapsed=elapsed, preprocess_elapsed=elapsed,
                cache_hits=self._cache_hits,
                cache_misses=self._cache_misses, **kw
            )

        # Hot-path ablation: with the flag off, variable sets are
        # recomputed per query as the seed implementation did.
        memo = self._config.hot_path
        base = self._base

        if base is not None and base.unsat:
            # The shared system alone is UNSAT; no delta can rescue it.
            return preprocess_only()
        rest = self._flatten()
        if base is not None:
            # Delta solve (§5j): seed the compiled shared state.  The
            # shared system is a flatten-order prefix of the full
            # problem (it is asserted last, and _flatten pops from the
            # end), so prepending its residual units here and its rest
            # constraints below reproduces a from-scratch compile's
            # ordering exactly; union-find confluence makes the merge
            # outcome order-independent.
            self._uf._parent = dict(base.parent)
            self._fixed = dict(base.fixed)
            self._units = list(base.residual) + self._units
        self._propagate_units()
        if self._unsat:
            return preprocess_only()
        if memo:
            if base is not None:
                # The base scan is precompiled; extend it with this
                # delta's merges and fixes instead of re-deriving.
                touched = set(base.touched)
                touched.update(self._fixed)
                touched.update(self._dirty)
                self._touched = touched
            else:
                self._touched = self._touched_vars()
        if base is not None and memo:
            # Copy-on-write members index: only the partitions touched
            # by this delta's unions are re-merged (in declaration
            # order, matching a from-scratch scan); every other class
            # reuses the skeleton's precompiled tuple.
            members = base.members
            if self._dirty:
                find = self._uf.find
                groups: dict[str, list[str]] = {}
                for root in self._dirty:
                    groups.setdefault(find(root), []).append(root)
                members = dict(members)
                decl = base.decl_index
                for rep, roots in groups.items():
                    merged: list[VarInfo] = []
                    for root in roots:
                        merged.extend(base.members.get(root, ()))
                    merged.sort(key=lambda info: decl[info.name])
                    members[rep] = merged
            self._members = members

        constraints: list[Formula] = []

        def admit(rewritten: Formula) -> bool:
            """Keep a rewritten constraint; decide it if variable-free.

            Variable-free formulas would never be re-evaluated by the
            watch scheme below, so they are decided now; ``False``
            means the problem is UNSAT.
            """
            if not formula_variables(rewritten, cache=memo):
                return eval_formula(rewritten, {}) is True
            constraints.append(rewritten)
            return True

        # ``fast`` marks a delta solve none of whose changed classes
        # appear in any shared formula: the entire base prefix is
        # admitted verbatim, so the skeleton's precompiled indexes
        # (watch lists, variable sets, domain aggregate) apply as-is.
        fast = False
        if base is not None:
            rewrite_cache = base.rewrite_cache
            affected: set[int] | None = None
            if memo and base.var_index is not None:
                # The variables of a base-rewritten shared formula are
                # base representatives; a delta changes the rewrite of
                # such a formula only by merging or fixing one of those
                # classes, and every such class root lands in _dirty or
                # in the newly fixed keys.  The skeleton's inverted
                # index turns that observation into an exact list of
                # the shared formulas needing a re-rewrite.
                changed = set(self._dirty)
                base_fixed = base.fixed
                for name in self._fixed:
                    if name not in base_fixed:
                        changed.add(name)
                affected = set()
                var_index = base.var_index
                for name in changed:
                    hits = var_index.get(name)
                    if hits:
                        affected.update(hits)
            if affected is not None:
                rest_t = base.rest
                if affected:
                    previous = 0
                    for index in sorted(affected):
                        constraints.extend(rest_t[previous:index])
                        formula = rest_t[index]
                        key = (index, self._delta_state_key(formula))
                        rewritten = rewrite_cache.get(key)
                        if rewritten is None:
                            rewritten = self._rewrite_formula(formula)
                            rewrite_cache[key] = rewritten
                            base.rewrite_misses += 1
                        else:
                            base.rewrite_hits += 1
                        if not admit(rewritten):
                            return preprocess_only()
                        previous = index + 1
                    constraints.extend(rest_t[previous:])
                else:
                    constraints.extend(rest_t)
                    fast = base.active is not None
            else:
                touched = self._touched
                for index, formula in enumerate(base.rest):
                    if (
                        memo
                        and touched is not None
                        and not (formula_variables(formula) & touched)
                    ):
                        # Base-rewritten and untouched by this delta:
                        # the skeleton's object (and its node memos)
                        # is exact.
                        constraints.append(formula)
                        continue
                    rewritten = None
                    key = None
                    if memo:
                        key = (index, self._delta_state_key(formula))
                        rewritten = rewrite_cache.get(key)
                    if rewritten is None:
                        rewritten = self._rewrite_formula(formula)
                        if key is not None:
                            rewrite_cache[key] = rewritten
                            base.rewrite_misses += 1
                    elif key is not None:
                        base.rewrite_hits += 1
                    if not admit(rewritten):
                        return preprocess_only()
        n_base = len(constraints)
        for formula in rest + list(self._residual_units):
            if not admit(self._rewrite_formula(formula)):
                return preprocess_only()

        # Representatives that still need values.
        reps: set[str] = set()
        if base is not None:
            # Start from the skeleton's live base classes and adjust
            # only the partitions this delta merged or fixed.
            find = self._uf.find
            fixed = self._fixed
            reps = set(base.reps)
            for root in self._dirty:
                reps.discard(root)
                winner = find(root)
                if winner not in fixed:
                    reps.add(winner)
            for rep in fixed:
                reps.discard(rep)
        elif memo:
            # Names the union-find has never seen are their own
            # representative; skipping find() keeps its parent map to the
            # merged variables only (which _touched_vars also iterates).
            parent = self._uf._parent
            find = self._uf.find
            fixed = self._fixed
            for name in self._infos:
                rep = find(name) if name in parent else name
                if rep not in fixed:
                    reps.add(rep)
        else:
            for name in self._infos:
                rep = self._uf.find(name)
                if rep not in self._fixed:
                    reps.add(rep)
        if fast:
            # The admitted base prefix is base.rest verbatim, so the
            # names it would contribute are the precompiled union.
            reps |= base.var_names.difference(self._fixed)
            tail = constraints[n_base:]
        else:
            tail = constraints
        for formula in tail:
            for name in formula_variables(formula, cache=memo):
                if name not in self._fixed:
                    reps.add(name)
        rep_list = sorted(reps)

        # Index constraints first (domain construction can then treat
        # unconstrained representatives specially on the hot path).
        if fast:
            # Precompiled split of base.rest into multi-variable
            # (active) and single-variable constraints; the watch lists
            # restrict the per-name index to this solve's live
            # representatives.  Sound because on the fast path no base
            # formula mentions a merged or newly fixed class, so every
            # base formula variable is still its own representative.
            active = list(base.active)
            single = list(base.single)
            name_watch = base.name_watch
            watch = {}
            # Copy-on-append: most lists stay the skeleton's tuples;
            # only reps watched by a delta formula get a private list.
            for rep in rep_list:
                watch[rep] = name_watch.get(rep, ())
        else:
            watch = {rep: [] for rep in rep_list}
            active = []
            single = []
            tail = constraints
        for formula in tail:
            if memo:
                # Shared formulas (db constraints) index identically in
                # every sibling solve; memoize the sorted variable list.
                variables = formula.__dict__.get("_fvsorted")
                if variables is None:
                    variables = sorted(formula_variables(formula))
                    object.__setattr__(formula, "_fvsorted", variables)
            else:
                variables = sorted(formula_variables(formula, cache=False))
            if len(variables) == 1:
                # Any single-variable constraint — an atom, or e.g. an
                # input-database EXISTS disjunction (Section VI-A) — is a
                # domain restriction; applied to its domain below.
                single.append((variables[0], formula))
                continue
            index = len(active)
            active.append(formula)
            for rep in variables:
                entry = watch.get(rep)
                if entry is None:
                    continue
                if type(entry) is tuple:
                    entry = list(entry)
                    watch[rep] = entry
                entry.append(index)

        free_reps: set[str] | None = None
        if memo:
            # A representative with no watched and no single-variable
            # constraint only ever takes its first ordered value; its
            # domain need not be materialised beyond that.
            free_reps = {rep for rep in rep_list if not watch[rep]}
            free_reps.difference_update(rep for rep, _ in single)
        pref = pref_skip = None
        if base is not None and memo and base.pref is not None:
            pref = base.pref
            # Classes this delta merged aggregate preferred values from
            # several base classes; they fall back to the member scan.
            pref_skip = {self._uf.find(root) for root in self._dirty}
        domains = self._build_domains(
            rep_list,
            constraints,
            free_reps,
            base_agg=base.agg if fast else None,
            skip=n_base if fast else 0,
            pref=pref,
            pref_skip=pref_skip,
            dom_cache=base.domain_cache if pref is not None else None,
        )

        for rep, formula in single:
            domains[rep] = [
                v
                for v in domains[rep]
                if eval_formula(formula, {rep: v}) is True
            ]
        for rep in rep_list:
            if not domains[rep]:
                return preprocess_only(
                    classes=len(rep_list), constraints=len(active)
                )

        # Assign constrained classes first, in constraint-graph order so each
        # new variable shares a constraint with an already-assigned one and
        # failures surface immediately.  Unconstrained classes go last.
        constrained = [rep for rep in rep_list if watch[rep]]
        free = [rep for rep in rep_list if not watch[rep]]
        constrained.sort(key=lambda r: (len(domains[r]), -len(watch[r]), r))
        order = _connected_order_of(constrained, active, watch, memo) + free

        assignment: dict[str, int] = {}
        nodes = 0
        limit = self._config.node_limit
        deadline = self._deadline

        def harvest(formula: Formula, rep: str, out: list[Atom]) -> None:
            """Collect atoms worth steering ``rep`` by, context-sensitively.

            Inside a disjunction only the *first* not-yet-false disjunct
            is considered: satisfying it satisfies the constraint, and
            harvesting deeper alternatives is what used to drag primary
            keys equal through the chase implication's second disjunct.
            Negations contribute nothing (their atoms are already
            negated by the builders in NNF positions we emit).
            """
            if isinstance(formula, Atom):
                if any(name == rep for name, _ in formula.lin.coeffs):
                    out.append(formula)
                return
            if isinstance(formula, Conj):
                for part in formula.parts:
                    harvest(part, rep, out)
                return
            if isinstance(formula, Quantified) and formula.kind == "forall":
                for part in formula.instances:
                    harvest(part, rep, out)
                return
            parts = None
            if isinstance(formula, Disj):
                parts = formula.parts
            elif isinstance(formula, Quantified):  # exists
                parts = formula.instances
            if parts is not None:
                for part in parts:
                    if eval_formula(part, assignment) is False:
                        continue
                    harvest(part, rep, out)
                    return

        def ordered_values(rep: str) -> list[int]:
            domain = domains[rep]
            if not self._config.enable_suggestions:
                return domain
            suggestions: list[int] = []
            avoided: list[int] = []
            atoms: list[Atom] = []
            for index in watch[rep]:
                if use_marks:
                    # Monotone Kleene evaluation: once a constraint is
                    # True under a partial assignment it stays True, so
                    # the per-depth mark replaces re-evaluating it here.
                    if sat_depth[index] >= 0:
                        continue
                elif eval_formula(active[index], assignment) is True:
                    continue
                harvest(active[index], rep, atoms)
            for atom in atoms:
                total = atom.lin.const
                coef_of_rep = 0
                ready = True
                for name, coef in atom.lin.coeffs:
                    if name == rep:
                        coef_of_rep = coef
                        continue
                    value = assignment.get(name)
                    if value is None:
                        ready = False
                        break
                    total += coef * value
                if not ready or coef_of_rep not in (1, -1):
                    continue
                value, remainder = divmod(-total, coef_of_rep)
                if atom.op == "=":
                    if remainder == 0 and value not in suggestions:
                        suggestions.append(value)
                elif atom.op == "<>":
                    # Defer the forbidden value instead of colliding into
                    # it through the shared domain ordering.
                    if remainder == 0 and value not in avoided:
                        avoided.append(value)
                elif atom.op == "<":
                    witness = value - 1 if coef_of_rep > 0 else value + 1
                    if witness not in suggestions:
                        suggestions.append(witness)
                else:  # "<=" — the boundary witness suffices either way.
                    witness = value
                    if witness not in suggestions:
                        suggestions.append(witness)
            if not suggestions and not avoided:
                return domain
            domain_set = set(domain)
            head = [v for v in suggestions if v in domain_set]
            head_set = set(head)
            avoided_set = set(avoided) - head_set
            middle = [
                v for v in domain if v not in head_set and v not in avoided_set
            ]
            tail = [v for v in domain if v in avoided_set]
            return head + middle + tail

        if fast:
            constraint_vars = list(base.cvars)
            constraint_vars += [
                frozenset(formula_variables(f, cache=memo))
                for f in active[len(base.cvars):]
            ]
        else:
            constraint_vars = [
                frozenset(formula_variables(f, cache=memo)) for f in active
            ]
        #: Depth at which each active constraint was proven True under the
        #: partial assignment (-1 = not yet).  Kleene evaluation is
        #: monotone, so a constraint marked at depth d needs no
        #: re-evaluation at any depth > d; marks are undone on backtrack.
        use_marks = self._config.hot_path
        sat_depth = [-1] * len(active)

        def backtrack(position: int):
            """Conflict-directed backjumping search.

            Returns True on success, or the *conflict set* — the variables
            responsible for the dead end.  A caller whose variable is not
            in the conflict set passes it straight up without trying its
            remaining values: re-assigning an irrelevant variable cannot
            resolve the conflict (this is what keeps a failing pair like
            the two operands of a sum constraint from re-enumerating every
            unrelated variable ordered between them).
            """
            nonlocal nodes
            if position == len(order):
                return True
            rep = order[position]
            conflict: set[str] = set()
            if use_marks:
                # Constraints already satisfied at a shallower depth can
                # never fail below it; evaluate only the still-open ones
                # for every candidate value of this class.
                pending = [i for i in watch[rep] if sat_depth[i] < 0]
            else:
                pending = watch[rep]
            for value in ordered_values(rep):
                nodes += 1
                if nodes > limit:
                    raise SolverLimitError(
                        f"search exceeded {limit} nodes",
                        kind="nodes", nodes=nodes, limit=limit,
                        elapsed=time.perf_counter() - start,
                    )
                if (
                    deadline is not None
                    and not (nodes & (DEADLINE_CHECK_NODES - 1))
                    and time.perf_counter() > deadline
                ):
                    raise SolverLimitError(
                        f"search exceeded the "
                        f"{self._config.solve_deadline_s}s deadline",
                        kind="deadline", nodes=nodes,
                        limit=self._config.solve_deadline_s,
                        elapsed=time.perf_counter() - start,
                    )
                assignment[rep] = value
                failed_index = -1
                marked: list[int] = []
                for index in pending:
                    outcome = eval_formula(active[index], assignment)
                    if outcome is False:
                        failed_index = index
                        break
                    if use_marks and outcome is True:
                        sat_depth[index] = position
                        marked.append(index)
                if failed_index >= 0:
                    conflict |= constraint_vars[failed_index]
                    del assignment[rep]
                    for index in marked:
                        sat_depth[index] = -1
                    continue
                result = backtrack(position + 1)
                if result is True:
                    return True
                del assignment[rep]
                for index in marked:
                    sat_depth[index] = -1
                if rep not in result:
                    return result
                conflict |= result
            conflict.discard(rep)
            return conflict

        search_start = time.perf_counter()
        preprocess_elapsed = search_start - start
        if self._deadline is not None and search_start > self._deadline:
            # Preprocessing alone blew the budget; the search would only
            # discover it DEADLINE_CHECK_NODES nodes later.
            raise SolverLimitError(
                f"preprocessing exceeded the "
                f"{self._config.solve_deadline_s}s deadline",
                kind="deadline", nodes=0, limit=self._config.solve_deadline_s,
                elapsed=preprocess_elapsed,
            )
        found = backtrack(0) is True
        elapsed = time.perf_counter() - start
        search_elapsed = elapsed - preprocess_elapsed
        if not found:
            return SearchOutcome(
                None, nodes=nodes, elapsed=elapsed,
                classes=len(rep_list), constraints=len(active),
                preprocess_elapsed=preprocess_elapsed,
                search_elapsed=search_elapsed,
                cache_hits=self._cache_hits,
                cache_misses=self._cache_misses,
            )
        assignment.update(self._fixed)
        full: dict[str, int] = {}
        for name in self._infos:
            rep = self._uf.find(name)
            full[name] = assignment[rep]
        # Classes created only through constraints (no VarInfo) stay internal.
        model = Model(full, dict(self._infos), self._symbols)
        return SearchOutcome(
            model, nodes=nodes, elapsed=elapsed,
            classes=len(rep_list), constraints=len(active),
            preprocess_elapsed=preprocess_elapsed,
            search_elapsed=search_elapsed,
            cache_hits=self._cache_hits,
            cache_misses=self._cache_misses,
        )


def _connected_order_of(
    seeds: list[str],
    active: list[Formula],
    watch: dict[str, list[int]],
    memo: bool = True,
) -> list[str]:
    """Greedy constraint-graph traversal starting from the hardest seed."""
    if not seeds:
        return []
    constraint_vars = [
        sorted(formula_variables(f, cache=memo)) for f in active
    ]
    order: list[str] = []
    placed: set[str] = set()
    pending = list(seeds)
    while pending:
        start = next(p for p in pending if p not in placed)
        queue = deque([start])
        while queue:
            rep = queue.popleft()
            if rep in placed:
                continue
            placed.add(rep)
            order.append(rep)
            neighbours: list[str] = []
            for index in watch.get(rep, ()):
                neighbours.extend(constraint_vars[index])
            for other in neighbours:
                if other not in placed and other in watch:
                    queue.append(other)
        pending = [p for p in pending if p not in placed]
    return order


def _formula_atoms(formula: Formula, cache: bool = False) -> list[Atom]:
    if cache:
        cached = formula.__dict__.get("_atoms")
        if cached is not None:
            return cached
    out: list[Atom] = []
    stack = [formula]
    while stack:
        node = stack.pop()
        if isinstance(node, Atom):
            out.append(node)
        elif isinstance(node, (Conj, Disj)):
            stack.extend(node.parts)
        elif isinstance(node, Neg):
            stack.append(node.part)
        elif isinstance(node, Quantified):
            stack.extend(node.instances)
    if cache:
        # Formula nodes are frozen dataclasses; the memo rides alongside
        # the _fv cache and is invisible to __eq__/__hash__.
        object.__setattr__(formula, "_atoms", out)
    return out
