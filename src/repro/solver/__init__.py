"""Constraint-solver substrate (the CVC3 stand-in).

The paper hands CVC3 a set of constraints over tuple-of-variable arrays:
(dis)equalities and order comparisons over integer-backed attributes with
simple arithmetic, primary-key functional dependencies, foreign-key
subset constraints with bounded FORALL/EXISTS quantifiers, and NOT EXISTS
nullification constraints.  This package implements exactly that fragment:

* :mod:`terms` — linear terms, comparison atoms, boolean formulas, bounded
  quantifiers;
* :mod:`builders` — convenience constructors;
* :mod:`domains` — candidate-value domain construction per variable class;
* :mod:`search` — union-find equality preprocessing plus backtracking
  search with three-valued (Kleene) constraint evaluation;
* :mod:`solver` — the :class:`Solver` facade with the two quantifier
  strategies of Section VI-B: ``unfold=True`` expands bounded quantifiers
  into ground formulas before solving (fast); ``unfold=False`` solves the
  ground part and lazily instantiates violated quantifiers with restarts,
  reproducing the slow path the paper measured with quantified CVC3 input.
"""

from repro.solver.model import Model
from repro.solver.solver import Solver, SolveStats
from repro.solver.terms import (
    Atom,
    BoolConst,
    Conj,
    Disj,
    Formula,
    Linear,
    Neg,
    Quantified,
    VarInfo,
)

__all__ = [
    "Solver",
    "SolveStats",
    "Model",
    "Linear",
    "Atom",
    "Formula",
    "Conj",
    "Disj",
    "Neg",
    "BoolConst",
    "Quantified",
    "VarInfo",
]
