"""Models: satisfying assignments with typed decoding."""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.solver.terms import VarInfo


class SymbolTable:
    """Interns string values to integers, per pool, *rank-preserving*.

    Variables in the same pool share an interning table so that equality
    constraints between them are meaningful, and codes are assigned so
    that **numeric code order equals lexicographic string order** within
    the pool — order comparisons (``grade >= 'B'``) translate directly
    into integer atoms and agree with the engine's string comparisons.
    New strings get the midpoint code between their lexicographic
    neighbours (gap halving); pools own disjoint id bands, so accidental
    cross-pool comparisons can never hold.
    """

    _POOL_STRIDE = 1 << 42
    _GAP = 1 << 20

    def __init__(self, fast: bool = True):
        #: pool -> sorted list of (value, code)
        self._pools: dict[str, list[tuple[str, int]]] = {}
        self._codes: dict[str, dict[str, int]] = {}
        self._reverse: dict[int, str] = {}
        self._fresh_counts: dict[str, int] = {}
        #: pool -> id band (cached: band lookup is on the intern hot path)
        self._bands: dict[str, int] = {}
        #: Frozen per-pool candidate universes (see freeze_universes).
        self._universes: dict[str, tuple[int, tuple[int, ...]]] | None = None
        self._universe_fresh = 0
        #: Hot-path ablation hook (SearchConfig.hot_path): ``fast=False``
        #: recomputes bands and re-sorts known codes per call, as the
        #: seed implementation did.  Codes are identical either way.
        self._fast = fast
        #: True while the interning dicts are shared with another table
        #: (copy-on-write); any mutation materialises private copies.
        self._shared = False

    def _band(self, pool: str) -> int:
        if not self._fast:
            if pool not in self._pools:
                self._pools[pool] = []
                self._codes[pool] = {}
            return (list(self._pools).index(pool) + 1) * self._POOL_STRIDE
        band = self._bands.get(pool)
        if band is None:
            if self._shared:
                self._materialize()
            band = (len(self._pools) + 1) * self._POOL_STRIDE
            self._pools[pool] = []
            self._codes[pool] = {}
            self._bands[pool] = band
        return band

    def copy(self) -> "SymbolTable":
        """An independent table with the same interned state.

        Used by the generator's declaration snapshots: every dataset spec
        of a query interns the same schema-domain values in the same
        order, so a warm table is copied instead of re-interned (codes
        are identical by construction).

        In fast mode the copy is copy-on-write: the interning dicts are
        shared until either table interns something new (most solves
        only look up values that are already present), at which point the
        mutating side takes private copies.  Non-fast mode copies
        eagerly, as the seed implementation did.
        """
        clone = SymbolTable.__new__(SymbolTable)
        if self._fast:
            self._shared = True
            clone._pools = self._pools
            clone._codes = self._codes
            clone._reverse = self._reverse
            clone._shared = True
        else:
            clone._pools = {
                pool: list(entries) for pool, entries in self._pools.items()
            }
            clone._codes = {
                pool: dict(codes) for pool, codes in self._codes.items()
            }
            clone._reverse = dict(self._reverse)
            clone._shared = False
        clone._fresh_counts = dict(self._fresh_counts)
        clone._bands = dict(self._bands)
        # Frozen universes are immutable once computed; share them.
        clone._universes = self._universes
        clone._universe_fresh = self._universe_fresh
        clone._fast = self._fast
        return clone

    def _materialize(self) -> None:
        """Take private copies of the shared interning dicts."""
        self._pools = {pool: list(entries) for pool, entries in self._pools.items()}
        self._codes = {pool: dict(codes) for pool, codes in self._codes.items()}
        self._reverse = dict(self._reverse)
        self._shared = False

    def intern(self, pool: str, value: str) -> int:
        band = self._band(pool)
        codes = self._codes[pool]
        if value in codes:
            return codes[value]
        if self._shared:
            self._materialize()
            codes = self._codes[pool]
        entries = self._pools[pool]
        position = bisect.bisect_left(entries, (value, 0))
        if not entries:
            code = band
        elif position == 0:
            code = entries[0][1] - self._GAP
        elif position == len(entries):
            code = entries[-1][1] + self._GAP
        else:
            low = entries[position - 1][1]
            high = entries[position][1]
            if high - low < 2:
                raise OverflowError(
                    f"interning gap exhausted in pool {pool!r} at {value!r}"
                )
            code = (low + high) // 2
        entries.insert(position, (value, code))
        codes[value] = code
        self._reverse[code] = value
        return code

    def fresh(self, pool: str) -> int:
        """Intern a new synthetic value for ``pool`` (e.g. ``dept_name~3``)."""
        count = self._fresh_counts.get(pool, 0) + 1
        self._fresh_counts[pool] = count
        return self.intern(pool, f"{pool.rsplit('.', 1)[-1]}~{count}")

    def decode(self, code: int) -> str:
        return self._reverse[code]

    def known_codes(self, pool: str) -> list[int]:
        self._band(pool)
        if not self._fast:
            return sorted(code for _, code in self._pools[pool])
        # Rank-preserving interning: entries are sorted by value, and code
        # order equals value order, so the codes are already sorted.
        return [code for _, code in self._pools[pool]]

    def freeze_universes(self, fresh_count: int) -> None:
        """Pre-intern search fresh values and cache candidate universes.

        Domain construction wants, per pool, ``known codes + fresh_count
        synthetic values``.  Tables that get copied for many sibling
        solves (the generator's declaration snapshots) pay that cost once
        here: the fresh values are interned now, the fresh counters are
        rolled back so each solve re-derives the same names, and the
        resulting code list is cached keyed by pool size — any later
        intern (a query literal, an order witness) grows the pool and
        transparently invalidates the cache for that pool.
        """
        if (
            self._universes is not None
            and fresh_count == self._universe_fresh
            and len(self._universes) == len(self._pools)
            and all(
                len(self._pools.get(pool, ())) == size
                for pool, (size, _) in self._universes.items()
            )
        ):
            # Nothing interned since the last freeze (common when a
            # snapshot is layered on a restored snapshot): still valid.
            return
        universes: dict[str, tuple[int, tuple[int, ...]]] = {}
        for pool in list(self._pools):
            base = self._fresh_counts.get(pool, 0)
            for _ in range(fresh_count):
                self.fresh(pool)
            self._fresh_counts[pool] = base
            entries = self._pools[pool]
            universes[pool] = (len(entries), tuple(c for _, c in entries))
        self._universes = universes
        self._universe_fresh = fresh_count

    def frozen_universe(self, pool: str, fresh_count: int):
        """The cached universe for ``pool``, or None when stale/absent."""
        universes = self._universes
        if universes is None or fresh_count != self._universe_fresh:
            return None
        cached = universes.get(pool)
        if cached is None:
            return None
        size, codes = cached
        if len(self._pools.get(pool, ())) != size:
            return None
        return codes


@dataclass
class Model:
    """A satisfying assignment.

    Attributes:
        assignment: Variable name -> integer value (interned for strings).
        infos: Variable metadata used for decoding.
        symbols: The symbol table that interned the string values.
    """

    assignment: dict[str, int]
    infos: dict[str, VarInfo]
    symbols: SymbolTable
    stats: dict = field(default_factory=dict)

    def __contains__(self, name: str) -> bool:
        return name in self.assignment

    def raw(self, name: str) -> int:
        """The integer value of a variable."""
        return self.assignment[name]

    def value(self, name: str):
        """The typed (decoded) value of a variable."""
        code = self.assignment[name]
        info = self.infos.get(name)
        if info is not None and info.kind == "str":
            return self.symbols.decode(code)
        return code

    def typed_assignment(self) -> dict[str, object]:
        """The whole model with string codes decoded."""
        return {name: self.value(name) for name in self.assignment}
