"""Models: satisfying assignments with typed decoding."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.solver.terms import VarInfo


class SymbolTable:
    """Interns string values to integers, per pool, *rank-preserving*.

    Variables in the same pool share an interning table so that equality
    constraints between them are meaningful, and codes are assigned so
    that **numeric code order equals lexicographic string order** within
    the pool — order comparisons (``grade >= 'B'``) translate directly
    into integer atoms and agree with the engine's string comparisons.
    New strings get the midpoint code between their lexicographic
    neighbours (gap halving); pools own disjoint id bands, so accidental
    cross-pool comparisons can never hold.
    """

    _POOL_STRIDE = 1 << 42
    _GAP = 1 << 20

    def __init__(self):
        #: pool -> sorted list of (value, code)
        self._pools: dict[str, list[tuple[str, int]]] = {}
        self._codes: dict[str, dict[str, int]] = {}
        self._reverse: dict[int, str] = {}
        self._fresh_counts: dict[str, int] = {}

    def _band(self, pool: str) -> int:
        if pool not in self._pools:
            self._pools[pool] = []
            self._codes[pool] = {}
        return (list(self._pools).index(pool) + 1) * self._POOL_STRIDE

    def intern(self, pool: str, value: str) -> int:
        band = self._band(pool)
        codes = self._codes[pool]
        if value in codes:
            return codes[value]
        entries = self._pools[pool]
        import bisect

        position = bisect.bisect_left(entries, (value, 0))
        if not entries:
            code = band
        elif position == 0:
            code = entries[0][1] - self._GAP
        elif position == len(entries):
            code = entries[-1][1] + self._GAP
        else:
            low = entries[position - 1][1]
            high = entries[position][1]
            if high - low < 2:
                raise OverflowError(
                    f"interning gap exhausted in pool {pool!r} at {value!r}"
                )
            code = (low + high) // 2
        entries.insert(position, (value, code))
        codes[value] = code
        self._reverse[code] = value
        return code

    def fresh(self, pool: str) -> int:
        """Intern a new synthetic value for ``pool`` (e.g. ``dept_name~3``)."""
        count = self._fresh_counts.get(pool, 0) + 1
        self._fresh_counts[pool] = count
        return self.intern(pool, f"{pool.rsplit('.', 1)[-1]}~{count}")

    def decode(self, code: int) -> str:
        return self._reverse[code]

    def known_codes(self, pool: str) -> list[int]:
        self._band(pool)
        return sorted(code for _, code in self._pools[pool])


@dataclass
class Model:
    """A satisfying assignment.

    Attributes:
        assignment: Variable name -> integer value (interned for strings).
        infos: Variable metadata used for decoding.
        symbols: The symbol table that interned the string values.
    """

    assignment: dict[str, int]
    infos: dict[str, VarInfo]
    symbols: SymbolTable
    stats: dict = field(default_factory=dict)

    def __contains__(self, name: str) -> bool:
        return name in self.assignment

    def raw(self, name: str) -> int:
        """The integer value of a variable."""
        return self.assignment[name]

    def value(self, name: str):
        """The typed (decoded) value of a variable."""
        code = self.assignment[name]
        info = self.infos.get(name)
        if info is not None and info.kind == "str":
            return self.symbols.decode(code)
        return code

    def typed_assignment(self) -> dict[str, object]:
        """The whole model with string codes decoded."""
        return {name: self.value(name) for name in self.assignment}
