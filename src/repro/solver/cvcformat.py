"""Render constraint formulas in CVC3's ASSERT syntax.

The paper presents its constraints as CVC3 input (e.g.::

    ASSERT NOT EXISTS (i : B_INT) : (B[i].0 = C[1].0 + 10);

).  This module reproduces that surface form for debugging and for
comparing generated constraint sets against the paper's examples.  It is
a *pretty-printer*: the library never round-trips through this format.
"""

from __future__ import annotations

import re

from repro.solver.terms import (
    Atom,
    BoolConst,
    Conj,
    Disj,
    Formula,
    Linear,
    Neg,
    Quantified,
)

_SLOT_RE = re.compile(r"^(?P<table>\w+)\[(?P<index>\d+)\]\.(?P<column>\w+)$")


def _var_text(name: str, positional: dict[str, dict[str, int]] | None) -> str:
    """``table[i].column``, positionally numbered if a layout is given.

    CVC3 "does not understand attribute names, and instead uses positional
    notation" (Section V-A); pass ``positional`` as table -> column ->
    position to reproduce that, or None to keep attribute names.
    """
    match = _SLOT_RE.match(name)
    if not match or positional is None:
        return name
    table = match.group("table")
    column = match.group("column")
    layout = positional.get(table)
    if layout is None or column not in layout:
        return name
    return f"{table}[{match.group('index')}].{layout[column]}"


def _linear_sides(lin: Linear, positional) -> tuple[str, str]:
    """Split ``lin op 0`` into readable left/right sides."""
    positives: list[str] = []
    negatives: list[str] = []
    for name, coef in lin.coeffs:
        text = _var_text(name, positional)
        if abs(coef) != 1:
            text = f"{abs(coef)}*{text}"
        (positives if coef > 0 else negatives).append(text)
    const = lin.const
    if const > 0:
        positives.append(str(const))
    elif const < 0:
        negatives.append(str(-const))
    left = " + ".join(positives) if positives else "0"
    right = " + ".join(negatives) if negatives else "0"
    return left, right


_OP_TEXT = {"=": "=", "<>": "/=", "<": "<", "<=": "<="}


def formula_to_cvc(
    formula: Formula,
    positional: dict[str, dict[str, int]] | None = None,
) -> str:
    """Render one formula as a CVC3-style expression."""
    if isinstance(formula, Atom):
        left, right = _linear_sides(formula.lin, positional)
        return f"({left} {_OP_TEXT[formula.op]} {right})"
    if isinstance(formula, BoolConst):
        return "TRUE" if formula.value else "FALSE"
    if isinstance(formula, Neg):
        return f"(NOT {formula_to_cvc(formula.part, positional)})"
    if isinstance(formula, Conj):
        inner = " AND ".join(formula_to_cvc(p, positional) for p in formula.parts)
        return f"({inner})"
    if isinstance(formula, Disj):
        inner = " OR ".join(formula_to_cvc(p, positional) for p in formula.parts)
        return f"({inner})"
    if isinstance(formula, Quantified):
        keyword = "FORALL" if formula.kind == "forall" else "EXISTS"
        range_name = formula.label or "i : INT"
        inner = (
            " AND " if formula.kind == "forall" else " OR "
        ).join(formula_to_cvc(p, positional) for p in formula.instances)
        return f"({keyword} ({range_name}) : ({inner}))"
    raise TypeError(f"cannot render {formula!r}")


def assertions(
    formulas,
    positional: dict[str, dict[str, int]] | None = None,
) -> str:
    """Render a constraint set as ASSERT lines (one per formula)."""
    return "\n".join(
        f"ASSERT {formula_to_cvc(f, positional)};" for f in formulas
    )


def positional_layout(schema) -> dict[str, dict[str, int]]:
    """Column-position map of a schema, for CVC3's positional notation."""
    return {
        table.name: {c: i for i, c in enumerate(table.column_names)}
        for table in schema.tables
    }
