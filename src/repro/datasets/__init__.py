"""Bundled schemas and sample data used by examples, tests and benchmarks."""

from repro.datasets.university import (
    FK_EDGES,
    UNIVERSITY_QUERIES,
    schema_with_fks,
    university_queries,
    university_sample_database,
    university_schema,
)

__all__ = [
    "FK_EDGES",
    "UNIVERSITY_QUERIES",
    "schema_with_fks",
    "university_schema",
    "university_sample_database",
    "university_queries",
]
