"""The university schema of Silberschatz, Korth & Sudarshan, as adapted
by the paper.

The paper says "the schema used was a slightly modified version of the
University schema of [27]".  The modification we apply (and document in
DESIGN.md) flattens composite keys so that every join edge used by the
benchmark queries is a single-attribute equi-join with an optional
single-column foreign key — which is exactly the structure the paper's
Table I experiments need when they vary the number of foreign keys from
0 up to 6 on a 7-relation chain query.

Value domains are enumerated so the solver produces intuitive values
(real department names, plausible years) rather than bare integers.
"""

from __future__ import annotations

from repro.engine.database import Database
from repro.schema.catalog import Column, ForeignKey, Schema, Table
from repro.schema.types import SqlType

DEPT_NAMES = ("CS", "Biology", "Physics", "Finance", "History", "Music", "Elec_Eng")
BUILDINGS = ("Taylor", "Watson", "Painter", "Packard", "Garfield")
SEMESTERS = ("Spring", "Summer", "Fall")
GRADES = ("A", "A-", "B+", "B", "C", "F")
TITLES = (
    "Intro_to_Biology",
    "Genetics",
    "Computational_Biology",
    "Intro_to_Computer_Science",
    "Game_Design",
    "Robotics",
    "Image_Processing",
    "Database_System_Concepts",
    "Investment_Banking",
    "World_History",
    "Music_Video_Production",
    "Physical_Principles",
)
PERSON_NAMES = (
    "Srinivasan", "Wu", "Mozart", "Einstein", "El_Said", "Gold", "Katz",
    "Califieri", "Singh", "Crick", "Brandt", "Kim", "Shankar", "Zhang",
    "Tanaka", "Levy", "Williams", "Sanchez", "Snow", "Bourikas", "Aoi",
)


def university_schema(allow_nullable_fks: bool = False) -> Schema:
    """Build the adapted university schema.

    Foreign keys are declared in a deliberate order so that
    ``Schema.restrict_foreign_keys`` can reproduce each Table I row's
    foreign-key count by keeping a prefix of the declarations on the
    query's relations.
    """
    department = Table(
        "department",
        [
            Column("dept_name", SqlType.VARCHAR, domain=DEPT_NAMES),
            Column("building", SqlType.VARCHAR, domain=BUILDINGS),
            Column("budget", SqlType.INT),
        ],
        primary_key=("dept_name",),
        foreign_keys=[
            ForeignKey("department", ("building",), "classroom", ("building",)),
        ],
    )
    # Adapted: classroom is keyed by building alone so that
    # department.building can reference it with a single-column foreign key
    # (the Q6 benchmark row needs this edge; see DESIGN.md).
    classroom = Table(
        "classroom",
        [
            Column("building", SqlType.VARCHAR, domain=BUILDINGS),
            Column("room_number", SqlType.INT),
            Column("capacity", SqlType.INT),
        ],
        primary_key=("building",),
    )
    course = Table(
        "course",
        [
            Column("course_id", SqlType.INT),
            Column("title", SqlType.VARCHAR, domain=TITLES),
            Column("dept_name", SqlType.VARCHAR, domain=DEPT_NAMES),
            Column("credits", SqlType.INT),
        ],
        primary_key=("course_id",),
        foreign_keys=[
            ForeignKey("course", ("dept_name",), "department", ("dept_name",)),
        ],
    )
    instructor = Table(
        "instructor",
        [
            Column("id", SqlType.INT),
            Column("name", SqlType.VARCHAR, domain=PERSON_NAMES),
            Column("dept_name", SqlType.VARCHAR, domain=DEPT_NAMES),
            Column("salary", SqlType.INT),
        ],
        primary_key=("id",),
        foreign_keys=[
            ForeignKey("instructor", ("dept_name",), "department", ("dept_name",)),
        ],
    )
    teaches = Table(
        "teaches",
        [
            Column("id", SqlType.INT),
            Column("course_id", SqlType.INT),
            Column("sec_id", SqlType.INT),
            Column("semester", SqlType.VARCHAR, domain=SEMESTERS),
            Column("year", SqlType.INT),
        ],
        primary_key=("id", "course_id"),
        foreign_keys=[
            ForeignKey("teaches", ("id",), "instructor", ("id",)),
            ForeignKey("teaches", ("course_id",), "course", ("course_id",)),
        ],
    )
    student = Table(
        "student",
        [
            Column("id", SqlType.INT),
            Column("name", SqlType.VARCHAR, domain=PERSON_NAMES),
            Column("dept_name", SqlType.VARCHAR, domain=DEPT_NAMES),
            Column("tot_cred", SqlType.INT),
        ],
        primary_key=("id",),
        foreign_keys=[
            ForeignKey("student", ("dept_name",), "department", ("dept_name",)),
        ],
    )
    takes = Table(
        "takes",
        [
            Column("id", SqlType.INT),
            Column("course_id", SqlType.INT),
            Column("grade", SqlType.VARCHAR, domain=GRADES),
        ],
        primary_key=("id", "course_id"),
        foreign_keys=[
            ForeignKey("takes", ("id",), "student", ("id",)),
            ForeignKey("takes", ("course_id",), "course", ("course_id",)),
        ],
    )
    advisor = Table(
        "advisor",
        [
            Column("s_id", SqlType.INT),
            Column("i_id", SqlType.INT),
        ],
        primary_key=("s_id",),
        foreign_keys=[
            ForeignKey("advisor", ("s_id",), "student", ("id",)),
            ForeignKey("advisor", ("i_id",), "instructor", ("id",)),
        ],
    )
    prereq = Table(
        "prereq",
        [
            Column("course_id", SqlType.INT),
            Column("prereq_id", SqlType.INT),
        ],
        primary_key=("course_id", "prereq_id"),
        foreign_keys=[
            ForeignKey("prereq", ("course_id",), "course", ("course_id",)),
            ForeignKey("prereq", ("prereq_id",), "course", ("course_id",)),
        ],
    )
    return Schema(
        [department, classroom, course, instructor, teaches, student, takes,
         advisor, prereq],
        allow_nullable_fks=allow_nullable_fks,
    )


def university_sample_database(schema: Schema | None = None) -> Database:
    """A small consistent sample instance (the paper's "input database")."""
    db = Database(schema or university_schema())
    db.insert_rows(
        "department",
        [
            ("CS", "Taylor", 100000),
            ("Biology", "Watson", 90000),
            ("Physics", "Watson", 70000),
            ("Finance", "Painter", 120000),
            ("History", "Painter", 50000),
            ("Music", "Packard", 80000),
        ],
    )
    db.insert_rows(
        "classroom",
        [
            ("Taylor", 3128, 70),
            ("Watson", 100, 30),
            ("Painter", 514, 10),
            ("Packard", 101, 500),
        ],
    )
    db.insert_rows(
        "course",
        [
            (101, "Intro_to_Computer_Science", "CS", 4),
            (190, "Game_Design", "CS", 4),
            (315, "Robotics", "CS", 3),
            (347, "Database_System_Concepts", "CS", 3),
            (301, "Genetics", "Biology", 4),
            (201, "Investment_Banking", "Finance", 3),
            (351, "World_History", "History", 3),
        ],
    )
    db.insert_rows(
        "instructor",
        [
            (10101, "Srinivasan", "CS", 65000),
            (12121, "Wu", "Finance", 90000),
            (15151, "Mozart", "Music", 40000),
            (22222, "Einstein", "Physics", 95000),
            (32343, "El_Said", "History", 60000),
            (45565, "Katz", "CS", 75000),
            (76766, "Crick", "Biology", 72000),
        ],
    )
    db.insert_rows(
        "teaches",
        [
            (10101, 101, 1, "Fall", 2009),
            (10101, 347, 1, "Fall", 2009),
            (45565, 315, 1, "Spring", 2010),
            (76766, 301, 1, "Summer", 2009),
            (12121, 201, 2, "Spring", 2010),
        ],
    )
    db.insert_rows(
        "student",
        [
            (128, "Zhang", "CS", 102),
            (12345, "Shankar", "CS", 32),
            (19991, "Brandt", "History", 80),
            (23121, "Sanchez", "Finance", 110),
            (44553, "Levy", "Physics", 56),
            (98765, "Bourikas", "CS", 98),
        ],
    )
    db.insert_rows(
        "takes",
        [
            (128, 101, "A"),
            (128, 347, "A-"),
            (12345, 101, "C"),
            (12345, 315, "A"),
            (19991, 351, "B"),
            (98765, 101, "C"),
        ],
    )
    db.insert_rows(
        "advisor",
        [
            (128, 45565),
            (12345, 10101),
            (23121, 12121),
            (44553, 22222),
        ],
    )
    db.insert_rows(
        "prereq",
        [
            (347, 101),
            (315, 101),
        ],
    )
    db.validate()
    return db


# Named single-column foreign keys used by the Table I/II experiment rows.
FK_EDGES: dict[str, tuple[str, str, str, str]] = {
    "teaches.id": ("teaches", "id", "instructor", "id"),
    "teaches.course_id": ("teaches", "course_id", "course", "course_id"),
    "takes.id": ("takes", "id", "student", "id"),
    "takes.course_id": ("takes", "course_id", "course", "course_id"),
    "course.dept_name": ("course", "dept_name", "department", "dept_name"),
    "instructor.dept_name": ("instructor", "dept_name", "department", "dept_name"),
    "student.dept_name": ("student", "dept_name", "department", "dept_name"),
    "department.building": ("department", "building", "classroom", "building"),
    "advisor.s_id": ("advisor", "s_id", "student", "id"),
    "advisor.i_id": ("advisor", "i_id", "instructor", "id"),
}

#: Benchmark queries.  Q1-Q6 are the Table I inner-join chain queries
#: (1-6 joins over 2-7 relations); Q7-Q12 are the Table II queries with
#: selections and aggregations.  ``fk_rows`` lists, per Table I row, the
#: exact foreign keys present in the schema for that row (by FK_EDGES
#: name); with these subsets the generated dataset counts match Table I's
#: "#Datasets Generated" column exactly (see EXPERIMENTS.md).
UNIVERSITY_QUERIES: dict[str, dict] = {
    "Q1": {
        "sql": "SELECT * FROM instructor i, teaches t WHERE i.id = t.id",
        "joins": 1,
        "relations": ["instructor", "teaches"],
        "fk_rows": [[], ["teaches.id"]],
    },
    "Q2": {
        "sql": (
            "SELECT * FROM instructor i, teaches t, course c "
            "WHERE i.id = t.id AND t.course_id = c.course_id"
        ),
        "joins": 2,
        "relations": ["instructor", "teaches", "course"],
        "fk_rows": [[], ["teaches.id"], ["teaches.id", "teaches.course_id"]],
    },
    "Q3": {
        "sql": (
            "SELECT * FROM instructor i, teaches t, course c, department d "
            "WHERE i.id = t.id AND t.course_id = c.course_id "
            "AND c.dept_name = d.dept_name"
        ),
        "joins": 3,
        "relations": ["instructor", "teaches", "course", "department"],
        "fk_rows": [
            [],
            ["teaches.id"],
            ["teaches.id", "teaches.course_id", "course.dept_name",
             "instructor.dept_name"],
        ],
    },
    "Q4": {
        "sql": (
            "SELECT * FROM student s, takes k, course c, teaches t, instructor i "
            "WHERE s.id = k.id AND k.course_id = c.course_id "
            "AND c.course_id = t.course_id AND t.id = i.id"
        ),
        "joins": 4,
        "relations": ["student", "takes", "course", "teaches", "instructor"],
        "fk_rows": [
            [],
            ["takes.id", "takes.course_id", "teaches.course_id", "teaches.id"],
        ],
    },
    "Q5": {
        "sql": (
            "SELECT * FROM student s, takes k, course c, teaches t, "
            "instructor i, department d "
            "WHERE s.id = k.id AND k.course_id = c.course_id "
            "AND c.course_id = t.course_id AND t.id = i.id "
            "AND i.dept_name = d.dept_name"
        ),
        "joins": 5,
        "relations": [
            "student", "takes", "course", "teaches", "instructor", "department",
        ],
        "fk_rows": [
            [],
            ["takes.id", "takes.course_id", "teaches.course_id", "teaches.id"],
        ],
    },
    "Q6": {
        "sql": (
            "SELECT * FROM classroom cl, department d, instructor i, teaches t, "
            "course c, takes k, student s "
            "WHERE cl.building = d.building AND d.dept_name = i.dept_name "
            "AND i.id = t.id AND t.course_id = c.course_id "
            "AND c.course_id = k.course_id AND k.id = s.id"
        ),
        "joins": 6,
        "relations": [
            "classroom", "department", "instructor", "teaches", "course",
            "takes", "student",
        ],
        "fk_rows": [
            [],
            ["department.building", "instructor.dept_name", "teaches.id",
             "teaches.course_id", "takes.course_id", "takes.id"],
        ],
    },
    "Q7": {
        "sql": "SELECT * FROM instructor i WHERE i.salary > 70000",
        "joins": 0,
        "selections": 1,
        "aggregations": 0,
        "relations": ["instructor"],
        "fk_rows": [[]],
    },
    "Q8": {
        "sql": (
            "SELECT i.dept_name, SUM(i.salary) FROM instructor i "
            "GROUP BY i.dept_name"
        ),
        "joins": 0,
        "selections": 0,
        "aggregations": 1,
        "relations": ["instructor"],
        "fk_rows": [[]],
    },
    "Q9": {
        "sql": (
            "SELECT i.dept_name, COUNT(t.course_id) "
            "FROM instructor i, teaches t WHERE i.id = t.id "
            "GROUP BY i.dept_name"
        ),
        "joins": 1,
        "selections": 0,
        "aggregations": 1,
        "relations": ["instructor", "teaches"],
        "fk_rows": [["teaches.id"]],
    },
    "Q10": {
        "sql": (
            "SELECT * FROM instructor i, teaches t, course c "
            "WHERE i.id = t.id AND t.course_id = c.course_id "
            "AND c.credits > 3"
        ),
        "joins": 2,
        "selections": 1,
        "aggregations": 0,
        "relations": ["instructor", "teaches", "course"],
        "fk_rows": [["teaches.id"]],
    },
    "Q11": {
        "sql": (
            "SELECT * FROM instructor i, teaches t, course c "
            "WHERE i.id = t.id AND t.course_id = c.course_id "
            "AND c.credits > 3 AND i.salary < 80000"
        ),
        "joins": 2,
        "selections": 2,
        "aggregations": 0,
        "relations": ["instructor", "teaches", "course"],
        "fk_rows": [["teaches.id"]],
    },
    "Q12": {
        "sql": (
            "SELECT c.dept_name, SUM(i.salary) "
            "FROM instructor i, teaches t, course c "
            "WHERE i.id = t.id AND t.course_id = c.course_id "
            "AND c.credits > 3 "
            "GROUP BY c.dept_name"
        ),
        "joins": 2,
        "selections": 1,
        "aggregations": 1,
        "relations": ["instructor", "teaches", "course"],
        "fk_rows": [["teaches.id"]],
    },
}


def schema_with_fks(fk_names: list[str], base: Schema | None = None) -> Schema:
    """The university schema with exactly the named foreign keys.

    ``fk_names`` are keys of :data:`FK_EDGES`.  This reproduces the Table I
    methodology of varying the number of foreign-key constraints from 0 up
    to the number originally present.
    """
    wanted = {FK_EDGES[name] for name in fk_names}
    source = base or university_schema()
    tables = []
    for table in source.tables:
        fks = [
            fk
            for fk in table.foreign_keys
            if len(fk.columns) == 1
            and (fk.table, fk.columns[0], fk.ref_table, fk.ref_columns[0]) in wanted
        ]
        tables.append(
            Table(table.name, list(table.columns), table.primary_key, fks)
        )
    return Schema(tables, allow_nullable_fks=source.allow_nullable_fks)


def university_queries() -> dict[str, dict]:
    """The benchmark query battery (copy)."""
    return {name: dict(info) for name, info in UNIVERSITY_QUERIES.items()}
