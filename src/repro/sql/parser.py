"""Recursive-descent parser for the supported SQL query class.

The grammar covers exactly the paper's query class (Section II,
assumptions A3-A6): single-block SELECT queries, comma and explicit
joins (inner / left / right / full outer, natural, cross), conjunctive
WHERE clauses of simple comparisons, simple arithmetic expressions,
aggregates in the select list and GROUP BY.  Constructs outside the
class (OR, NOT, subqueries, HAVING, IS NULL, UNION) raise
:class:`~repro.errors.UnsupportedSqlError` with a pointed message.
"""

from __future__ import annotations

from repro.errors import ParseError, UnsupportedSqlError
from repro.sql.ast import (
    AGGREGATE_FUNCS,
    Aggregate,
    BinaryOp,
    ColumnRef,
    Comparison,
    Exists,
    Expr,
    FromItem,
    InSubquery,
    Join,
    JoinKind,
    Literal,
    NullTest,
    Query,
    SelectItem,
    Star,
    TableRef,
)
from repro.sql.lexer import Token, TokenKind, tokenize

_COMPARISON_OPS = {"=", "<", ">", "<=", ">=", "<>"}


class _Parser:
    """Token-stream cursor with the grammar productions as methods."""

    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- cursor helpers ----------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._current
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _check(self, kind: TokenKind, value: str | None = None) -> bool:
        return self._current.matches(kind, value)

    def _accept(self, kind: TokenKind, value: str | None = None) -> Token | None:
        if self._check(kind, value):
            return self._advance()
        return None

    def _expect(self, kind: TokenKind, value: str | None = None) -> Token:
        if self._check(kind, value):
            return self._advance()
        want = value or kind.name
        raise ParseError(
            f"expected {want} but found {self._current.value!r}", self._current
        )

    def _keyword(self, word: str) -> bool:
        return self._accept(TokenKind.KEYWORD, word) is not None

    def _reject(self, word: str, why: str) -> None:
        if self._check(TokenKind.KEYWORD, word):
            raise UnsupportedSqlError(f"{word} is not supported: {why}")

    # -- entry point --------------------------------------------------------

    def parse_query(self) -> Query:
        query = self._select_statement()
        self._accept(TokenKind.OP, ";")
        if not self._check(TokenKind.EOF):
            raise ParseError(
                f"unexpected trailing input {self._current.value!r}", self._current
            )
        return query

    def _select_statement(self) -> Query:
        self._expect(TokenKind.KEYWORD, "SELECT")
        distinct = False
        if self._keyword("DISTINCT"):
            distinct = True
        else:
            self._keyword("ALL")
        select_items = self._select_list()
        self._expect(TokenKind.KEYWORD, "FROM")
        from_items = self._from_list()
        where: tuple[Comparison, ...] = ()
        if self._keyword("WHERE"):
            where = tuple(self._conjunction())
        group_by: tuple[ColumnRef, ...] = ()
        if self._keyword("GROUP"):
            self._expect(TokenKind.KEYWORD, "BY")
            group_by = tuple(self._column_list())
        having: tuple[Comparison, ...] = ()
        if self._keyword("HAVING"):
            having = tuple(self._conjunction())
        self._reject("UNION", "only single-block queries are in the query class")
        self._reject("ORDER", "ordering does not affect mutant killing")
        return Query(
            select_items=tuple(select_items),
            from_items=tuple(from_items),
            where=where,
            group_by=group_by,
            distinct=distinct,
            having=having,
        )

    # -- select list ---------------------------------------------------------

    def _select_list(self) -> list[SelectItem]:
        items = [self._select_item()]
        while self._accept(TokenKind.OP, ","):
            items.append(self._select_item())
        return items

    def _select_item(self) -> SelectItem:
        if self._accept(TokenKind.OP, "*"):
            return SelectItem(Star())
        expr = self._expression()
        # ``t.*`` parses as a ColumnRef whose column is "*"; normalise.
        if isinstance(expr, ColumnRef) and expr.column == "*":
            return SelectItem(Star(expr.table))
        alias = None
        if self._keyword("AS"):
            alias = self._expect(TokenKind.IDENT).value
        elif self._check(TokenKind.IDENT):
            alias = self._advance().value
        return SelectItem(expr, alias)

    def _column_list(self) -> list[ColumnRef]:
        cols = [self._column_ref()]
        while self._accept(TokenKind.OP, ","):
            cols.append(self._column_ref())
        return cols

    def _column_ref(self) -> ColumnRef:
        first = self._expect(TokenKind.IDENT).value
        if self._accept(TokenKind.OP, "."):
            second = self._expect(TokenKind.IDENT).value
            return ColumnRef(first, second)
        return ColumnRef(None, first)

    # -- FROM clause ----------------------------------------------------------

    def _from_list(self) -> list[FromItem]:
        items = [self._from_item()]
        while self._accept(TokenKind.OP, ","):
            items.append(self._from_item())
        return items

    def _from_item(self) -> FromItem:
        item = self._table_primary()
        while True:
            join = self._maybe_join(item)
            if join is None:
                return item
            item = join

    def _table_primary(self) -> FromItem:
        if self._accept(TokenKind.OP, "("):
            if self._check(TokenKind.KEYWORD, "SELECT"):
                raise UnsupportedSqlError(
                    "nested subqueries in FROM are outside the query class (A3)"
                )
            inner = self._from_item()
            self._expect(TokenKind.OP, ")")
            return inner
        name = self._expect(TokenKind.IDENT).value
        alias = None
        if self._keyword("AS"):
            alias = self._expect(TokenKind.IDENT).value
        elif self._check(TokenKind.IDENT):
            alias = self._advance().value
        return TableRef(name, alias)

    def _maybe_join(self, left: FromItem) -> Join | None:
        natural = self._keyword("NATURAL")
        kind: JoinKind | None = None
        if self._keyword("INNER"):
            kind = JoinKind.INNER
        elif self._keyword("LEFT"):
            self._keyword("OUTER")
            kind = JoinKind.LEFT
        elif self._keyword("RIGHT"):
            self._keyword("OUTER")
            kind = JoinKind.RIGHT
        elif self._keyword("FULL"):
            self._keyword("OUTER")
            kind = JoinKind.FULL
        elif self._keyword("CROSS"):
            kind = JoinKind.CROSS
        if kind is None and not natural and not self._check(TokenKind.KEYWORD, "JOIN"):
            return None
        if kind is None:
            kind = JoinKind.INNER
        self._expect(TokenKind.KEYWORD, "JOIN")
        if kind is JoinKind.CROSS and natural:
            raise ParseError("NATURAL CROSS JOIN is contradictory", self._current)
        right = self._table_primary()
        condition: tuple[Comparison, ...] = ()
        if self._keyword("ON"):
            if natural:
                raise ParseError("NATURAL join cannot have an ON clause", self._current)
            condition = tuple(self._conjunction())
        elif not natural and kind is not JoinKind.CROSS:
            raise ParseError("expected ON clause after JOIN", self._current)
        return Join(kind, left, right, condition, natural)

    # -- predicates -------------------------------------------------------------

    def _conjunction(self) -> list[Comparison]:
        preds = [self._comparison()]
        while True:
            self._reject("OR", "predicates must be conjunctions (A5)")
            if not self._keyword("AND"):
                return preds
            preds.append(self._comparison())

    def _comparison(self):
        self._reject("NOT", "negated predicates are outside the query class (A5)")
        if self._keyword("EXISTS"):
            # Accepted for decorrelation (Section V-H); the analyzer
            # rejects it unless it was rewritten into a join first.
            self._expect(TokenKind.OP, "(")
            subquery = self._select_statement()
            self._expect(TokenKind.OP, ")")
            return Exists(subquery)
        left = self._expression()
        if self._keyword("IS"):
            negated = bool(self._keyword("NOT"))
            self._expect(TokenKind.KEYWORD, "NULL")
            if not isinstance(left, ColumnRef):
                raise UnsupportedSqlError(
                    "IS NULL is supported on plain column references only"
                )
            return NullTest(left, negated)
        if self._keyword("IN"):
            self._expect(TokenKind.OP, "(")
            if not self._check(TokenKind.KEYWORD, "SELECT"):
                raise UnsupportedSqlError(
                    "IN over value lists is outside the query class; "
                    "rewrite as OR-free comparisons"
                )
            subquery = self._select_statement()
            self._expect(TokenKind.OP, ")")
            return InSubquery(left, subquery)
        for word, why in (
            ("BETWEEN", "rewrite as two AND-ed comparisons"),
            ("LIKE", "pattern matching is outside the query class (A4)"),
        ):
            self._reject(word, why)
        token = self._current
        if token.kind is not TokenKind.OP or token.value not in _COMPARISON_OPS:
            raise ParseError(
                f"expected comparison operator, found {token.value!r}", token
            )
        op = self._advance().value
        right = self._expression()
        return Comparison(op, left, right)

    # -- expressions -------------------------------------------------------------

    def _expression(self) -> Expr:
        return self._additive()

    def _additive(self) -> Expr:
        expr = self._multiplicative()
        while self._check(TokenKind.OP, "+") or self._check(TokenKind.OP, "-"):
            op = self._advance().value
            expr = BinaryOp(op, expr, self._multiplicative())
        return expr

    def _multiplicative(self) -> Expr:
        expr = self._primary()
        while self._check(TokenKind.OP, "*") or self._check(TokenKind.OP, "/"):
            op = self._advance().value
            expr = BinaryOp(op, expr, self._primary())
        return expr

    def _primary(self) -> Expr:
        token = self._current
        if token.kind is TokenKind.NUMBER:
            self._advance()
            text = token.value
            return Literal(float(text) if "." in text else int(text))
        if token.kind is TokenKind.STRING:
            self._advance()
            return Literal(token.value)
        if token.kind is TokenKind.OP and token.value == "-":
            self._advance()
            operand = self._primary()
            if isinstance(operand, Literal) and isinstance(operand.value, (int, float)):
                return Literal(-operand.value)
            return BinaryOp("-", Literal(0), operand)
        if token.kind is TokenKind.OP and token.value == "(":
            self._advance()
            if self._check(TokenKind.KEYWORD, "SELECT"):
                raise UnsupportedSqlError(
                    "scalar subqueries are outside the query class (A3)"
                )
            expr = self._expression()
            self._expect(TokenKind.OP, ")")
            return expr
        if token.kind is TokenKind.KEYWORD and token.value in AGGREGATE_FUNCS:
            return self._aggregate()
        if token.kind is TokenKind.IDENT:
            self._advance()
            if self._accept(TokenKind.OP, "."):
                if self._accept(TokenKind.OP, "*"):
                    return ColumnRef(token.value, "*")
                column = self._expect(TokenKind.IDENT).value
                return ColumnRef(token.value, column)
            return ColumnRef(None, token.value)
        raise ParseError(f"unexpected token {token.value!r}", token)

    def _aggregate(self) -> Aggregate:
        func = self._advance().value
        self._expect(TokenKind.OP, "(")
        distinct = bool(self._keyword("DISTINCT"))
        if self._accept(TokenKind.OP, "*"):
            if func != "COUNT":
                raise ParseError(f"{func}(*) is not valid SQL", self._current)
            arg: Expr = Star()
        else:
            arg = self._expression()
        self._expect(TokenKind.OP, ")")
        return Aggregate(func, arg, distinct)


def parse_query(sql: str) -> Query:
    """Parse ``sql`` into a :class:`~repro.sql.ast.Query`.

    Raises:
        LexError: On malformed tokens.
        ParseError: On grammar violations.
        UnsupportedSqlError: On valid SQL outside the paper's query class.
    """
    return _Parser(tokenize(sql)).parse_query()
