"""SQL substrate: lexer, AST, parser and printer for the XData query class.

The paper's implementation parsed SQL with the Apache Derby parser; this
package provides a purpose-built replacement covering exactly the query
class the paper handles (single-block SELECT queries with inner and outer
joins, conjunctive WHERE clauses, simple arithmetic, and unconstrained
aggregation — assumptions A1-A8 of the paper).
"""

from repro.sql.ast import (
    Aggregate,
    BinaryOp,
    ColumnRef,
    Comparison,
    Join,
    JoinKind,
    Literal,
    Query,
    SelectItem,
    Star,
    TableRef,
)
from repro.sql.lexer import Token, TokenKind, tokenize
from repro.sql.parser import parse_query
from repro.sql.printer import to_sql

__all__ = [
    "Aggregate",
    "BinaryOp",
    "ColumnRef",
    "Comparison",
    "Join",
    "JoinKind",
    "Literal",
    "Query",
    "SelectItem",
    "Star",
    "TableRef",
    "Token",
    "TokenKind",
    "tokenize",
    "parse_query",
    "to_sql",
]
