"""Tokeniser for the supported SQL dialect.

Produces a flat list of :class:`Token` objects.  Keywords are recognised
case-insensitively and normalised to upper case; identifiers preserve their
original spelling but compare case-insensitively elsewhere in the library.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import LexError


class TokenKind(enum.Enum):
    """Lexical category of a token."""

    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OP = "op"  # comparison / arithmetic operators and punctuation
    EOF = "eof"


#: Reserved words recognised as keywords (upper-cased).
KEYWORDS = frozenset(
    {
        "SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "HAVING",
        "AS", "ON", "AND", "OR", "NOT", "JOIN", "INNER", "LEFT", "RIGHT",
        "FULL", "OUTER", "CROSS", "NATURAL", "DISTINCT", "ALL",
        "MIN", "MAX", "SUM", "AVG", "COUNT",
        "IS", "NULL", "IN", "EXISTS", "BETWEEN", "LIKE", "UNION",
        "CREATE", "TABLE", "PRIMARY", "FOREIGN", "KEY", "REFERENCES",
        "INT", "INTEGER", "VARCHAR", "CHAR", "NUMERIC", "DECIMAL",
        "FLOAT", "REAL", "DATE", "TEXT",
        "ASC", "DESC", "LIMIT",
    }
)

#: Multi-character operators, longest first so ``<=`` wins over ``<``.
_MULTI_OPS = ("<>", "<=", ">=", "!=")
_SINGLE_OPS = "=<>+-*/(),.;"


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    Attributes:
        kind: Lexical category.
        value: Normalised text (keywords upper-cased; ``!=`` becomes ``<>``).
        position: Offset of the first character in the source text.
    """

    kind: TokenKind
    value: str
    position: int

    def matches(self, kind: TokenKind, value: str | None = None) -> bool:
        """Return True if this token has the given kind (and value, if set)."""
        if self.kind is not kind:
            return False
        return value is None or self.value == value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.value!r}@{self.position})"


def tokenize(text: str) -> list[Token]:
    """Tokenise ``text`` into a list of tokens ending with an EOF token.

    Raises:
        LexError: On unterminated strings or unrecognised characters.
    """
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if text.startswith("--", i):  # line comment
            j = text.find("\n", i)
            i = n if j < 0 else j + 1
            continue
        if ch == "'":
            j = i + 1
            buf: list[str] = []
            while True:
                if j >= n:
                    raise LexError("unterminated string literal", text, i)
                if text[j] == "'":
                    if j + 1 < n and text[j + 1] == "'":  # escaped quote
                        buf.append("'")
                        j += 2
                        continue
                    break
                buf.append(text[j])
                j += 1
            tokens.append(Token(TokenKind.STRING, "".join(buf), i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    # A dot not followed by a digit is a qualifier, not a decimal.
                    if j + 1 >= n or not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            tokens.append(Token(TokenKind.NUMBER, text[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenKind.KEYWORD, upper, i))
            else:
                tokens.append(Token(TokenKind.IDENT, word, i))
            i = j
            continue
        matched = False
        for op in _MULTI_OPS:
            if text.startswith(op, i):
                value = "<>" if op == "!=" else op
                tokens.append(Token(TokenKind.OP, value, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _SINGLE_OPS:
            tokens.append(Token(TokenKind.OP, ch, i))
            i += 1
            continue
        raise LexError(f"unexpected character {ch!r}", text, i)
    tokens.append(Token(TokenKind.EOF, "", n))
    return tokens
