"""Abstract syntax tree for the supported SQL query class.

The AST mirrors the paper's query class (Section II): single-block
SELECT queries over a FROM clause of base tables and join expressions,
a conjunctive WHERE clause, optional GROUP BY, and aggregate functions
in the select list.  Nodes are immutable dataclasses so they can be
shared freely between query trees and mutants.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Marker base class for scalar expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A (possibly qualified) column reference, e.g. ``t.id`` or ``name``.

    Attributes:
        table: Qualifier (table name or alias), or ``None`` if unqualified.
        column: Column name.
    """

    table: str | None
    column: str

    def __str__(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class Literal(Expr):
    """A numeric or string constant."""

    value: int | float | str

    def __str__(self) -> str:
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return str(self.value)


@dataclass(frozen=True)
class BinaryOp(Expr):
    """A simple arithmetic expression ``left op right`` (op in ``+ - * /``)."""

    op: str
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Star(Expr):
    """``*`` or ``t.*`` in a select list or inside COUNT(*)."""

    table: str | None = None

    def __str__(self) -> str:
        return f"{self.table}.*" if self.table else "*"


#: Aggregate function names supported by the mutation space (Section II).
AGGREGATE_FUNCS = ("MIN", "MAX", "SUM", "AVG", "COUNT")


@dataclass(frozen=True)
class Aggregate(Expr):
    """An aggregate function application, e.g. ``SUM(DISTINCT t.credits)``.

    Attributes:
        func: One of :data:`AGGREGATE_FUNCS`.
        arg: The aggregated expression; :class:`Star` only for COUNT(*).
        distinct: Whether the DISTINCT qualifier is present.
    """

    func: str
    arg: Expr
    distinct: bool = False

    def __str__(self) -> str:
        inner = f"DISTINCT {self.arg}" if self.distinct else str(self.arg)
        return f"{self.func}({inner})"


# ---------------------------------------------------------------------------
# Predicates
# ---------------------------------------------------------------------------

#: Comparison operators in the mutation space, in canonical order.
COMPARISON_OPS = ("=", "<", ">", "<=", ">=", "<>")


@dataclass(frozen=True)
class Comparison:
    """A simple condition ``left op right`` (assumption A5).

    WHERE and ON clauses are conjunctions of these; the parser flattens
    AND chains into lists of :class:`Comparison`.
    """

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise ValueError(f"unsupported comparison operator {self.op!r}")

    def with_op(self, op: str) -> "Comparison":
        """Return a copy of this comparison with a different operator."""
        return Comparison(op, self.left, self.right)

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class NullTest:
    """An ``expr IS [NOT] NULL`` predicate conjunct.

    Lifts the paper's assumption A6, which existed only because CVC3
    could not model NULL; see :mod:`repro.core.kill_nulltest` for the
    generation strategy and its restrictions.
    """

    expr: "ColumnRef"
    negated: bool = False

    def flipped(self) -> "NullTest":
        """The IS NULL <-> IS NOT NULL mutant of this conjunct."""
        return NullTest(self.expr, not self.negated)

    def __str__(self) -> str:
        keyword = "IS NOT NULL" if self.negated else "IS NULL"
        return f"{self.expr} {keyword}"


@dataclass(frozen=True)
class Exists:
    """An ``EXISTS (SELECT ...)`` predicate conjunct.

    Supported only as input to :func:`repro.core.decorrelate.decorrelate`,
    which rewrites it into a join (Section V-H of the paper); the engine
    and generator work on decorrelated queries.
    """

    query: "Query"

    def __str__(self) -> str:
        return f"EXISTS (...)"


@dataclass(frozen=True)
class InSubquery:
    """An ``expr IN (SELECT col FROM ...)`` predicate conjunct.

    Like :class:`Exists`, handled via decorrelation only.
    """

    expr: Expr
    query: "Query"

    def __str__(self) -> str:
        return f"{self.expr} IN (...)"


#: A WHERE-clause conjunct: plain comparison or a subquery predicate.
Predicate = "Comparison | Exists | InSubquery"


# ---------------------------------------------------------------------------
# FROM clause
# ---------------------------------------------------------------------------


class JoinKind(enum.Enum):
    """Join operator type; values are the SQL spellings."""

    INNER = "JOIN"
    LEFT = "LEFT OUTER JOIN"
    RIGHT = "RIGHT OUTER JOIN"
    FULL = "FULL OUTER JOIN"
    CROSS = "CROSS JOIN"

    @property
    def is_outer(self) -> bool:
        return self in (JoinKind.LEFT, JoinKind.RIGHT, JoinKind.FULL)


class FromItem:
    """Marker base class for FROM-clause items."""

    __slots__ = ()


@dataclass(frozen=True)
class TableRef(FromItem):
    """A base-table reference with an optional alias.

    Attributes:
        name: Table name as it appears in the catalog.
        alias: Alias introduced with ``AS`` (or bare), if any.
    """

    name: str
    alias: str | None = None

    @property
    def binding(self) -> str:
        """The name this occurrence is known by in the rest of the query."""
        return self.alias or self.name

    def __str__(self) -> str:
        return f"{self.name} {self.alias}" if self.alias else self.name


@dataclass(frozen=True)
class Join(FromItem):
    """An explicit join between two FROM items.

    Attributes:
        kind: Join operator type.
        left: Left input.
        right: Right input.
        condition: Conjunction of ON-clause comparisons (empty for NATURAL
            and CROSS joins).
        natural: True for NATURAL joins; the join columns are resolved
            against the catalog during analysis.
    """

    kind: JoinKind
    left: FromItem
    right: FromItem
    condition: tuple[Comparison, ...] = ()
    natural: bool = False


# ---------------------------------------------------------------------------
# Query
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    """One item in the select list: an expression plus optional alias."""

    expr: Expr
    alias: str | None = None

    def __str__(self) -> str:
        return f"{self.expr} AS {self.alias}" if self.alias else str(self.expr)


@dataclass(frozen=True)
class Query:
    """A parsed single-block SQL query.

    Attributes:
        select_items: The select list (may contain :class:`Star`).
        from_items: Comma-separated FROM items (each possibly a join tree).
        where: Conjunction of WHERE-clause comparisons.
        group_by: GROUP BY columns (empty when absent).
        distinct: True for ``SELECT DISTINCT`` (parsed but outside the
            mutation space, per Section II footnote 2).
    """

    select_items: tuple[SelectItem, ...]
    from_items: tuple[FromItem, ...]
    where: tuple = ()  # Comparison | Exists | InSubquery conjuncts
    group_by: tuple[ColumnRef, ...] = field(default_factory=tuple)
    distinct: bool = False
    #: HAVING conjuncts (comparisons over aggregates) — the constrained
    #: aggregation extension; empty for the paper's core query class.
    having: tuple[Comparison, ...] = ()

    @property
    def has_aggregates(self) -> bool:
        """True if any select item contains an aggregate function."""
        return any(contains_aggregate(item.expr) for item in self.select_items)

    @property
    def has_subquery_predicates(self) -> bool:
        """True if any WHERE conjunct is EXISTS / IN (SELECT ...)."""
        return any(isinstance(p, (Exists, InSubquery)) for p in self.where)


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------


def contains_aggregate(expr: Expr) -> bool:
    """Return True if ``expr`` contains an :class:`Aggregate` node."""
    if isinstance(expr, Aggregate):
        return True
    if isinstance(expr, BinaryOp):
        return contains_aggregate(expr.left) or contains_aggregate(expr.right)
    return False


def expr_columns(expr: Expr) -> list[ColumnRef]:
    """Collect all column references in ``expr``, in left-to-right order."""
    out: list[ColumnRef] = []

    def walk(node: Expr) -> None:
        if isinstance(node, ColumnRef):
            out.append(node)
        elif isinstance(node, BinaryOp):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, Aggregate):
            walk(node.arg)

    walk(expr)
    return out


def comparison_columns(pred: Comparison) -> list[ColumnRef]:
    """Collect all column references in a comparison."""
    return expr_columns(pred.left) + expr_columns(pred.right)


def iter_table_refs(item: FromItem) -> list[TableRef]:
    """Flatten a FROM item into its base-table references, left to right."""
    if isinstance(item, TableRef):
        return [item]
    if isinstance(item, Join):
        return iter_table_refs(item.left) + iter_table_refs(item.right)
    raise TypeError(f"unexpected FROM item {item!r}")


def query_table_refs(query: Query) -> list[TableRef]:
    """All base-table references of a query, in FROM-clause order."""
    refs: list[TableRef] = []
    for item in query.from_items:
        refs.extend(iter_table_refs(item))
    return refs
