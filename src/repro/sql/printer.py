"""Render AST nodes back to SQL text.

``parse_query(to_sql(q))`` round-trips to an equal AST (modulo redundant
parentheses), which the property-based tests rely on.  The printer is also
what the mutation harness uses to show mutants to humans and to log the
queries executed by the kill-checker.
"""

from __future__ import annotations

from repro.sql.ast import (
    Aggregate,
    BinaryOp,
    ColumnRef,
    Comparison,
    Expr,
    FromItem,
    Join,
    JoinKind,
    Literal,
    Query,
    SelectItem,
    Star,
    TableRef,
)

_JOIN_SQL = {
    JoinKind.INNER: "JOIN",
    JoinKind.LEFT: "LEFT OUTER JOIN",
    JoinKind.RIGHT: "RIGHT OUTER JOIN",
    JoinKind.FULL: "FULL OUTER JOIN",
    JoinKind.CROSS: "CROSS JOIN",
}


def expr_to_sql(expr: Expr) -> str:
    """Render a scalar expression."""
    if isinstance(expr, ColumnRef):
        return f"{expr.table}.{expr.column}" if expr.table else expr.column
    if isinstance(expr, Literal):
        if isinstance(expr.value, str):
            escaped = expr.value.replace("'", "''")
            return f"'{escaped}'"
        return repr(expr.value) if isinstance(expr.value, float) else str(expr.value)
    if isinstance(expr, BinaryOp):
        return f"({expr_to_sql(expr.left)} {expr.op} {expr_to_sql(expr.right)})"
    if isinstance(expr, Star):
        return f"{expr.table}.*" if expr.table else "*"
    if isinstance(expr, Aggregate):
        inner = expr_to_sql(expr.arg)
        if expr.distinct:
            inner = f"DISTINCT {inner}"
        return f"{expr.func}({inner})"
    raise TypeError(f"cannot render expression {expr!r}")


def predicate_to_sql(pred) -> str:
    """Render one WHERE conjunct (comparison, null test or subquery)."""
    from repro.sql.ast import Exists, InSubquery, NullTest

    if isinstance(pred, Exists):
        return f"EXISTS ({to_sql(pred.query)})"
    if isinstance(pred, InSubquery):
        return f"{expr_to_sql(pred.expr)} IN ({to_sql(pred.query)})"
    if isinstance(pred, NullTest):
        keyword = "IS NOT NULL" if pred.negated else "IS NULL"
        return f"{expr_to_sql(pred.expr)} {keyword}"
    return f"{expr_to_sql(pred.left)} {pred.op} {expr_to_sql(pred.right)}"


def conjunction_to_sql(preds) -> str:
    """Render a conjunction of comparisons joined by AND."""
    return " AND ".join(predicate_to_sql(p) for p in preds)


def from_item_to_sql(item: FromItem) -> str:
    """Render a FROM item (table reference or join tree)."""
    if isinstance(item, TableRef):
        return f"{item.name} {item.alias}" if item.alias else item.name
    if isinstance(item, Join):
        left = from_item_to_sql(item.left)
        right = from_item_to_sql(item.right)
        if isinstance(item.right, Join):
            right = f"({right})"
        if isinstance(item.left, Join):
            left = f"({left})"
        keyword = _JOIN_SQL[item.kind]
        if item.natural:
            keyword = f"NATURAL {keyword}"
        text = f"{left} {keyword} {right}"
        if item.condition:
            text += f" ON {conjunction_to_sql(item.condition)}"
        return text
    raise TypeError(f"cannot render FROM item {item!r}")


def _select_item_to_sql(item: SelectItem) -> str:
    text = expr_to_sql(item.expr)
    return f"{text} AS {item.alias}" if item.alias else text


def to_sql(query: Query) -> str:
    """Render a full query back to SQL text."""
    parts = ["SELECT"]
    if query.distinct:
        parts.append("DISTINCT")
    parts.append(", ".join(_select_item_to_sql(s) for s in query.select_items))
    parts.append("FROM")
    parts.append(", ".join(from_item_to_sql(f) for f in query.from_items))
    if query.where:
        parts.append("WHERE")
        parts.append(conjunction_to_sql(query.where))
    if query.group_by:
        parts.append("GROUP BY")
        parts.append(", ".join(expr_to_sql(c) for c in query.group_by))
    if query.having:
        parts.append("HAVING")
        parts.append(conjunction_to_sql(query.having))
    return " ".join(parts)
