"""The ICDE 2010 short-paper algorithm [14], reconstructed as a baseline.

Section VI-C.1 compares the present paper's algorithm against its
predecessor.  Per the paper's characterisation, the earlier algorithm:

* worked from an **input database**, not a constraint solver — "the
  implementation of the algorithm in [14] did not generate synthetic data
  if the output of the original query was insufficient, and hence was not
  always able to kill all non-equivalent mutants, even without foreign
  keys";
* did **not handle foreign keys**;
* realised the kill condition by making one relation's matching tuples
  *absent* per dataset (the "empty relation in E" construction of
  Section IV-B), which kills join/outer-join mutations when there are no
  foreign keys or repeated relations;
* generated datasets per relation per join tree, an **exponential**
  number in the worst case, which we bound by relation (the
  implementation reported in the paper effectively did the same for the
  chain queries measured).

This module reconstructs that behaviour: for each relation in the query,
take the rows of the input database restricted to the query's needs and
drop the rows of that one relation; plus one dataset that satisfies the
original query.  No constraint solving, no synthetic values, no foreign
key repair — exactly the limitations the paper measured against.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.analyze import AnalyzedQuery, analyze_query
from repro.engine.database import Database
from repro.engine.integrity import find_violations
from repro.schema.catalog import Schema
from repro.sql.ast import Query
from repro.sql.parser import parse_query


@dataclass
class BaselineDataset:
    """One baseline dataset with provenance."""

    purpose: str
    db: Database
    legal: bool  # False when dropping the relation broke a foreign key


@dataclass
class BaselineSuite:
    """Result of the baseline generator."""

    sql: str
    analyzed: AnalyzedQuery
    datasets: list[BaselineDataset] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def databases(self) -> list[Database]:
        """Only the *legal* datasets (illegal ones cannot be loaded)."""
        return [d.db for d in self.datasets if d.legal]

    @property
    def illegal_count(self) -> int:
        return sum(1 for d in self.datasets if not d.legal)


class ShortPaperGenerator:
    """The [14] baseline: input-database slicing, no solver, no FKs."""

    def __init__(self, schema: Schema, input_db: Database):
        self.schema = schema
        self.input_db = input_db

    def generate(self, query: str | Query) -> BaselineSuite:
        """Produce the baseline's datasets for ``query``."""
        start = time.perf_counter()
        parsed = parse_query(query) if isinstance(query, str) else query
        aq = analyze_query(parsed, self.schema)
        suite = BaselineSuite(
            query if isinstance(query, str) else str(parsed), aq
        )
        tables = sorted({occ.table for occ in aq.occurrences.values()})
        query_tables = set(tables)
        base = self._project_input(tables, query_tables)
        suite.datasets.append(
            BaselineDataset(
                "satisfy the original query (input-database sample)",
                base,
                legal=not find_violations(base),
            )
        )
        for table in tables:
            db = self._project_input(
                [t for t in tables if t != table], query_tables
            )
            legal = not find_violations(db)
            suite.datasets.append(
                BaselineDataset(
                    f"kill join mutants by emptying {table}", db, legal
                )
            )
        suite.elapsed = time.perf_counter() - start
        return suite

    def _project_input(
        self, tables: list[str], query_tables: set[str] | None = None
    ) -> Database:
        """Copy input rows of ``tables`` plus out-of-query referenced tables.

        An emptied in-query table is *not* repaired — if another copied
        table references it, the resulting dataset is illegal, which is
        exactly the baseline's documented failure mode under foreign keys.
        """
        query_tables = query_tables or set(tables)
        wanted = set(tables)
        changed = True
        while changed:
            changed = False
            for table in list(wanted):
                for fk in self.schema.table(table).foreign_keys:
                    if fk.ref_table not in wanted and fk.ref_table not in query_tables:
                        wanted.add(fk.ref_table)
                        changed = True
        db = Database(self.schema)
        for table in sorted(wanted):
            for row in self.input_db.relation(table).rows:
                db.insert(table, row)
        return db
