"""The earlier short-paper algorithm [14], used as the comparison baseline."""

from repro.baseline.shortpaper import ShortPaperGenerator

__all__ = ["ShortPaperGenerator"]
