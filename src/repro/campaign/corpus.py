"""Campaign corpus: the evolving population of queries under test.

The corpus is the campaign's working set.  Each round the driver draws
parents from it, evolves children via
:func:`repro.mutation.evolve.evolve_query`, and admits a child only if
it exhibits a *feature* no current member has — a coarse structural
coverage signal (join kinds, predicate shapes, table combinations,
aggregation) that keeps the population diverse instead of drifting into
thousands of near-identical constant tweaks.

Everything here is plain data: queries are SQL text, features are
strings, and :meth:`Corpus.state` round-trips through JSON so the
checkpoint file can restore the exact population after a crash.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.sql.ast import (
    Comparison,
    Join,
    NullTest,
    Query,
    TableRef,
)
from repro.sql.parser import parse_query

__all__ = ["Corpus", "CorpusItem", "query_features"]


def _from_features(item, features: set[str]) -> list[str]:
    """Collect table names (pre-order) while recording join features."""
    if isinstance(item, Join):
        features.add(f"join:{item.kind.name.lower()}")
        if item.natural:
            features.add("join:natural")
        return _from_features(item.left, features) + _from_features(
            item.right, features
        )
    if isinstance(item, TableRef):
        return [item.name]
    return []


def query_features(sql: str) -> frozenset[str]:
    """Structural coverage features of one query.

    Parse failures yield the empty set (the driver then rejects the
    query outright — an unparseable corpus member is useless).
    """
    try:
        query: Query = parse_query(sql)
    except Exception:
        return frozenset()
    features: set[str] = set()
    tables: list[str] = []
    for item in query.from_items:
        tables.extend(_from_features(item, features))
    features.add("tables:" + "+".join(sorted(set(tables))))
    features.add(f"width:{len(tables)}")
    for pred in query.where:
        if isinstance(pred, NullTest):
            features.add("pred:null-test")
        elif isinstance(pred, Comparison):
            features.add(f"pred:cmp{pred.op}")
    if query.group_by:
        features.add("group-by")
    if query.having is not None:
        features.add("having")
    if query.distinct:
        features.add("distinct")
    for sel in query.select_items:
        func = getattr(sel.expr, "func", None)
        if func is not None:
            features.add(f"agg:{str(func).upper()}")
    return frozenset(features)


@dataclass
class CorpusItem:
    """One corpus member with its provenance."""

    sql: str
    #: Seed-case index that founded this lineage.
    origin: int
    #: Evolution steps separating this member from its founder.
    generation: int = 0
    #: Cases run against this member (drives parent selection decay).
    trials: int = 0
    features: frozenset[str] = frozenset()

    def to_state(self) -> dict:
        return {
            "sql": self.sql,
            "origin": self.origin,
            "generation": self.generation,
            "trials": self.trials,
        }

    @classmethod
    def from_state(cls, state: dict) -> CorpusItem:
        return cls(
            sql=state["sql"],
            origin=state["origin"],
            generation=state["generation"],
            trials=state["trials"],
            features=query_features(state["sql"]),
        )


@dataclass
class Corpus:
    """Feature-novelty corpus with bounded size.

    ``max_size`` is the backpressure bound: once full, admitting a new
    member evicts the most-trialled one (it has had its chances), so
    corpus memory — and the checkpoint file — stay O(max_size) no
    matter how long the campaign runs.
    """

    max_size: int = 256
    items: list[CorpusItem] = field(default_factory=list)
    _seen_features: set[str] = field(default_factory=set)

    def __len__(self) -> int:
        return len(self.items)

    def admit(self, sql: str, origin: int, generation: int = 0) -> bool:
        """Add ``sql`` if it brings an unseen feature; report admission."""
        features = query_features(sql)
        if not features:
            return False
        if generation > 0 and not (features - self._seen_features):
            return False
        if any(item.sql == sql for item in self.items):
            return False
        self.items.append(
            CorpusItem(sql, origin, generation, features=features)
        )
        self._seen_features |= features
        if len(self.items) > self.max_size:
            stalest = max(
                range(len(self.items)), key=lambda i: self.items[i].trials
            )
            del self.items[stalest]
        return True

    def pick_parent(self, rng: random.Random) -> CorpusItem:
        """Draw a parent, biased toward less-trialled members."""
        if not self.items:
            raise ValueError("empty corpus")
        a, b = rng.choice(self.items), rng.choice(self.items)
        return a if a.trials <= b.trials else b

    # -- checkpoint round-trip ------------------------------------------

    def state(self) -> dict:
        return {
            "max_size": self.max_size,
            "items": [item.to_state() for item in self.items],
        }

    @classmethod
    def from_state(cls, state: dict) -> Corpus:
        corpus = cls(max_size=state["max_size"])
        for item_state in state["items"]:
            item = CorpusItem.from_state(item_state)
            corpus.items.append(item)
            corpus._seen_features |= item.features
        return corpus
