"""Campaign oracles: dual-execution plus backend-free self-checks.

An *oracle* looks at one case — original plan, mutation space, generated
datasets — and either stays silent or vetoes it by raising
:class:`~repro.backends.BackendDisagreement`.  Three oracles ship:

* **cross-check** — the dual-execution differential oracle of DESIGN.md
  §5f: every plan runs on the engine and on SQLite and the result bags
  must agree.  Skips (rather than vetoes) constructs the SQLite printer
  cannot mirror, so the campaign keeps probing them with the
  self-checks below.
* **duplicate-sensitivity** — transformation self-check in the mold of
  Zhang & Wu (PAPERS.md): rewrite the plan with duplicate-sensitivity-
  preserving transformations (conjunct reorder, filter idempotence,
  filter splitting, inner-join commutation — all bag-semantics-
  preserving under SQL's three-valued logic) and require the *same
  backend* to return the same bag for original and transform.
* **join-identity** — set-theoretic self-check after Lyu et al.
  (PAPERS.md): for every join in the plan, the four variants of one
  join node satisfy ``FULL = INNER ⊎ left-dangling ⊎ right-dangling``,
  giving the bag containments ``INNER ⊆ LEFT ⊆ FULL``,
  ``INNER ⊆ RIGHT ⊆ FULL`` and the inclusion–exclusion count
  ``|FULL| = |LEFT| + |RIGHT| − |INNER|`` — checked on the bare join
  (identities do not survive a WHERE filter above the join, so the
  oracle isolates the node).

Self-check oracles need no second backend, which is exactly what keeps
the campaign useful where the SQLite mirror gives up.  Every oracle
knows how to minimize its own disagreement (the predicate preserved
during dataset shrinking differs per oracle).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Protocol, runtime_checkable

from repro.backends import BackendCapabilityError, BackendDisagreement
from repro.engine.database import Database
from repro.engine.plan import JoinNode, PlanNode, ProjectNode, SelectNode
from repro.mutation.space import MutationSpace
from repro.sql.ast import JoinKind, SelectItem, Star
from repro.testing.killcheck import result_signature
from repro.testing.minimize import minimize_dataset

__all__ = [
    "CrossCheckOracle",
    "DuplicateSensitivityOracle",
    "JoinIdentityOracle",
    "Oracle",
    "OracleContext",
    "OracleOutcome",
    "build_oracles",
]


@dataclass
class OracleContext:
    """Everything an oracle may look at for one case.

    ``reference`` is ``None`` when no second backend is available —
    self-check oracles ignore it, the cross-check oracle then skips.
    """

    space: MutationSpace
    databases: list[Database]
    primary: object
    reference: object | None = None
    label: str = "case"


@dataclass
class OracleOutcome:
    """What one oracle did for one case (it did not veto)."""

    oracle: str
    executions: int = 0
    checks: int = 0
    skipped: str | None = None


@runtime_checkable
class Oracle(Protocol):
    """The oracle protocol: silent pass, skip, or veto-by-raise."""

    name: str

    def check(self, ctx: OracleContext) -> OracleOutcome:
        """Run the oracle; raises :class:`BackendDisagreement` to veto."""
        ...

    def minimize(self, exc: BackendDisagreement, ctx: OracleContext) -> Database:
        """Shrink ``exc.dataset`` while the disagreement still reproduces."""
        ...


# ---------------------------------------------------------------------------
# cross-check (dual execution)
# ---------------------------------------------------------------------------


@dataclass
class CrossCheckOracle:
    """Dual-execution over the whole mutation space (DESIGN.md §5f)."""

    name: str = "cross-check"

    def check(self, ctx: OracleContext) -> OracleOutcome:
        from repro.testing.conformance import cross_check_space

        outcome = OracleOutcome(self.name)
        if ctx.reference is None:
            outcome.skipped = "no reference backend"
            return outcome
        try:
            outcome.executions = cross_check_space(
                ctx.space, ctx.databases, ctx.primary, ctx.reference,
                ctx.label,
            )
        except BackendCapabilityError as exc:
            # The reference cannot mirror this construct; the self-check
            # oracles still cover the case.
            outcome.skipped = f"{type(exc).__name__}: {exc}"
            return outcome
        outcome.checks = outcome.executions
        return outcome

    def minimize(self, exc: BackendDisagreement, ctx: OracleContext) -> Database:
        def still_disagrees(db: Database) -> bool:
            handles = []
            try:
                signatures = []
                for backend in (ctx.primary, ctx.reference):
                    handle = backend.load(db)
                    handles.append((backend, handle))
                    signatures.append(
                        result_signature(backend.execute(handle, exc.plan))
                    )
                return signatures[0] != signatures[1]
            finally:
                for backend, handle in handles:
                    backend.close(handle)

        return minimize_dataset(exc.dataset, still_disagrees)


# ---------------------------------------------------------------------------
# duplicate-sensitivity-preserving transformations
# ---------------------------------------------------------------------------


def _rebuild(node: PlanNode, transform) -> PlanNode:
    """Apply ``transform`` bottom-up over a plan tree."""
    if isinstance(node, SelectNode):
        rebuilt = SelectNode(_rebuild(node.child, transform), node.predicates)
    elif isinstance(node, JoinNode):
        rebuilt = JoinNode(
            node.kind,
            _rebuild(node.left, transform),
            _rebuild(node.right, transform),
            node.condition,
            node.natural,
        )
    elif isinstance(node, ProjectNode):
        rebuilt = ProjectNode(
            _rebuild(node.child, transform), node.items, node.distinct
        )
    elif hasattr(node, "child"):
        rebuilt = type(node)(
            **{
                **{f: getattr(node, f) for f in node.__dataclass_fields__},
                "child": _rebuild(node.child, transform),
            }
        )
    else:
        rebuilt = node
    return transform(rebuilt)


def _reorder_conjuncts(node: PlanNode) -> PlanNode:
    """Reverse every filter/ON conjunction (AND is commutative in 3VL)."""

    def transform(n: PlanNode) -> PlanNode:
        if isinstance(n, SelectNode) and len(n.predicates) > 1:
            return SelectNode(n.child, tuple(reversed(n.predicates)))
        if isinstance(n, JoinNode) and len(n.condition) > 1:
            return JoinNode(
                n.kind, n.left, n.right, tuple(reversed(n.condition)),
                n.natural,
            )
        return n

    return _rebuild(node, transform)


def _duplicate_filters(node: PlanNode) -> PlanNode:
    """σ_p(R) -> σ_p(σ_p(R)): filters are idempotent and duplicate-
    preserving, so the bag must not change."""

    def transform(n: PlanNode) -> PlanNode:
        if isinstance(n, SelectNode):
            return SelectNode(SelectNode(n.child, n.predicates), n.predicates)
        return n

    return _rebuild(node, transform)


def _split_filters(node: PlanNode) -> PlanNode:
    """σ_{p1 AND p2}(R) -> σ_{p1}(σ_{p2}(R)) — conjunction splitting."""

    def transform(n: PlanNode) -> PlanNode:
        if isinstance(n, SelectNode) and len(n.predicates) > 1:
            child = n.child
            for pred in reversed(n.predicates):
                child = SelectNode(child, (pred,))
            return child
        return n

    return _rebuild(node, transform)


def _commute_inner_joins(node: PlanNode) -> PlanNode:
    """Swap the inputs of non-natural INNER/CROSS joins.  Result columns
    are binding-qualified, so the name-aligned bag comparison is
    side-agnostic; NATURAL joins are excluded because coalescing the
    shared columns is order-sensitive for outer kinds."""

    def transform(n: PlanNode) -> PlanNode:
        if (
            isinstance(n, JoinNode)
            and n.kind in (JoinKind.INNER, JoinKind.CROSS)
            and not n.natural
        ):
            return JoinNode(n.kind, n.right, n.left, n.condition, n.natural)
        return n

    return _rebuild(node, transform)


#: label -> plan transformation; each preserves the result bag exactly.
_TRANSFORMS = {
    "conjunct-reorder": _reorder_conjuncts,
    "filter-idempotence": _duplicate_filters,
    "filter-split": _split_filters,
    "join-commute": _commute_inner_joins,
}


def duplicate_sensitivity_transforms(
    plan: PlanNode,
) -> Iterator[tuple[str, PlanNode]]:
    """Yield ``(label, transformed_plan)`` pairs that actually changed."""
    for label, transform in _TRANSFORMS.items():
        transformed = transform(plan)
        if transformed != plan:
            yield label, transformed


@dataclass
class DuplicateSensitivityOracle:
    """Same-backend equivalence under bag-preserving rewrites.

    ``mutant_budget`` bounds how many mutants (beyond the original) are
    transformed per dataset — the transforms are cheap but the mutant
    space is large, and the original plan is the primary target.
    """

    name: str = "duplicate-sensitivity"
    mutant_budget: int = 4

    def _plans(self, ctx: OracleContext) -> list[tuple[str, PlanNode]]:
        plans = [("original query", ctx.space.original_plan)]
        for mutant in ctx.space.mutants[: self.mutant_budget]:
            plans.append((f"mutant [{mutant.kind}] {mutant.description}",
                          mutant.plan))
        return plans

    def check(self, ctx: OracleContext) -> OracleOutcome:
        outcome = OracleOutcome(self.name)
        backend = ctx.primary
        for db in ctx.databases:
            handle = backend.load(db)
            try:
                for what, plan in self._plans(ctx):
                    base = None
                    for label, transformed in duplicate_sensitivity_transforms(
                        plan
                    ):
                        if base is None:
                            base = backend.execute(handle, plan)
                            outcome.executions += 1
                        out = backend.execute(handle, transformed)
                        outcome.executions += 1
                        outcome.checks += 1
                        if result_signature(out) != result_signature(base):
                            raise BackendDisagreement(
                                f"{ctx.label}: {what} under "
                                f"duplicate-sensitivity transform "
                                f"[{label}]",
                                "",
                                db,
                                {"original": base, label: out},
                                plan=transformed,
                                oracle=self.name,
                            )
            finally:
                backend.close(handle)
        return outcome

    def minimize(self, exc: BackendDisagreement, ctx: OracleContext) -> Database:
        # ``exc.plan`` is the transformed plan; recover the base plan it
        # was derived from by re-running the transform on the originals.
        pairs = [
            (plan, transformed)
            for _, plan in self._plans(ctx)
            for _, transformed in duplicate_sensitivity_transforms(plan)
            if transformed == exc.plan
        ]
        if not pairs:
            return exc.dataset

        base_plan, transformed_plan = pairs[0]

        def still_disagrees(db: Database) -> bool:
            handle = ctx.primary.load(db)
            try:
                a = ctx.primary.execute(handle, base_plan)
                b = ctx.primary.execute(handle, transformed_plan)
                return result_signature(a) != result_signature(b)
            finally:
                ctx.primary.close(handle)

        return minimize_dataset(exc.dataset, still_disagrees)


# ---------------------------------------------------------------------------
# set-theoretic inner-join identities
# ---------------------------------------------------------------------------

_STAR_ITEMS = (SelectItem(Star(), None),)

_VARIANTS = (
    ("inner", JoinKind.INNER),
    ("left", JoinKind.LEFT),
    ("right", JoinKind.RIGHT),
    ("full", JoinKind.FULL),
)


def _plan_joins(node: PlanNode) -> list[JoinNode]:
    """Every non-CROSS join node in ``node``, pre-order."""
    out: list[JoinNode] = []
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, JoinNode):
            if current.kind is not JoinKind.CROSS:
                out.append(current)
            stack.extend((current.right, current.left))
        elif hasattr(current, "child"):
            stack.append(current.child)
    return out


def _bag_contains(outer, inner) -> bool:
    """Does bag ``outer`` contain bag ``inner`` (multiplicity-aware)?"""
    return all(outer[key] >= count for key, count in inner.items())


@dataclass
class JoinIdentityOracle:
    """Inclusion–exclusion and containment over join-kind variants."""

    name: str = "join-identity"
    #: Bound on join nodes checked per plan (campaign queries are small;
    #: the cap guards pathological evolved plans).
    join_budget: int = 4

    def _violation(
        self, backend, handle, join: JoinNode
    ) -> tuple[str, dict] | None:
        """Check one join node; returns (description, results) or None."""
        results = {}
        for label, kind in _VARIANTS:
            plan = ProjectNode(join.with_kind(kind), _STAR_ITEMS)
            results[label] = backend.execute(handle, plan)
        sigs = {
            label: result_signature(rel) for label, rel in results.items()
        }
        counts = {label: len(rel) for label, rel in results.items()}
        if counts["full"] != (
            counts["left"] + counts["right"] - counts["inner"]
        ):
            return (
                f"|FULL|={counts['full']} != |LEFT|={counts['left']} + "
                f"|RIGHT|={counts['right']} - |INNER|={counts['inner']}",
                results,
            )
        for small, big in (
            ("inner", "left"), ("inner", "right"),
            ("left", "full"), ("right", "full"),
        ):
            if sigs[small][0] != sigs[big][0]:
                return (f"{small}/{big} column sets differ", results)
            if not _bag_contains(sigs[big][1], sigs[small][1]):
                return (f"{small.upper()} ⊄ {big.upper()} as bags", results)
        return None

    def check(self, ctx: OracleContext) -> OracleOutcome:
        outcome = OracleOutcome(self.name)
        joins = _plan_joins(ctx.space.original_plan)[: self.join_budget]
        if not joins:
            outcome.skipped = "no join nodes"
            return outcome
        backend = ctx.primary
        for db in ctx.databases:
            handle = backend.load(db)
            try:
                for index, join in enumerate(joins):
                    violation = self._violation(backend, handle, join)
                    outcome.executions += len(_VARIANTS)
                    outcome.checks += 1
                    if violation is not None:
                        description, results = violation
                        raise BackendDisagreement(
                            f"{ctx.label}: join-identity violation at "
                            f"join[{index}]: {description}",
                            "",
                            db,
                            results,
                            plan=ProjectNode(join, _STAR_ITEMS),
                            oracle=self.name,
                        )
            finally:
                backend.close(handle)
        return outcome

    def minimize(self, exc: BackendDisagreement, ctx: OracleContext) -> Database:
        # ``exc.plan`` wraps the join node whose identity broke.
        join = exc.plan.child if isinstance(exc.plan, ProjectNode) else None
        if not isinstance(join, JoinNode):
            return exc.dataset

        def still_violates(db: Database) -> bool:
            handle = ctx.primary.load(db)
            try:
                return self._violation(ctx.primary, handle, join) is not None
            finally:
                ctx.primary.close(handle)

        return minimize_dataset(exc.dataset, still_violates)


#: Registry: oracle name -> factory (the campaign config names oracles).
ORACLES = {
    "cross-check": CrossCheckOracle,
    "duplicate-sensitivity": DuplicateSensitivityOracle,
    "join-identity": JoinIdentityOracle,
}


def build_oracles(names) -> list[Oracle]:
    """Instantiate oracles by name, preserving registry order."""
    unknown = set(names) - set(ORACLES)
    if unknown:
        raise ValueError(f"unknown oracles: {sorted(unknown)}")
    return [ORACLES[name]() for name in ORACLES if name in set(names)]
