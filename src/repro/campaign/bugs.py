"""Deduplicated, crash-safe bug triage for the campaign.

A campaign that runs for hours will rediscover the same logic bug
thousands of times — every corpus member descended from the triggering
query trips the same oracle.  The tracker therefore keys bugs by a
*structural fingerprint* of the minimized repro: oracle name, plan
fingerprint, and the canonical row bags of the disagreeing results.
Two cases whose minimized repros share that triple are one bug.

Persistence is crash-safe by construction: ``bugs.jsonl`` is always
rewritten in full from the in-memory store into a temp file and
atomically renamed (never appended), so a replayed round after
``--resume`` cannot double-write a report, and a SIGKILL mid-flush
leaves the previous complete file in place.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field

__all__ = ["BugRecord", "BugTracker", "bug_fingerprint"]


def _canonical_rows(rows) -> list:
    """Rows as sorted JSON-able lists (NULL sorts as a sentinel string)."""
    return sorted(
        [["\0null" if v is None else v for v in row] for row in rows],
        key=repr,
    )


def bug_fingerprint(oracle: str, plan_fp: str, results: dict) -> str:
    """Stable structural identity of a minimized disagreement.

    ``results`` maps label -> list-of-rows (in practice: the tables of
    the minimized repro dataset).  Labels are excluded on purpose — the
    identity is (oracle, plan shape, minimized data content), which
    converges across rediscoveries of the same bug by descendant corpus
    members, while label strings vary with oracle internals.
    """
    payload = json.dumps(
        {
            "oracle": oracle,
            "plan": plan_fp,
            "bags": sorted(
                (_canonical_rows(rows) for rows in results.values()),
                key=repr,
            ),
        },
        sort_keys=True,
        default=str,
    )
    return hashlib.blake2b(payload.encode(), digest_size=16).hexdigest()


@dataclass
class BugRecord:
    """One deduplicated bug report."""

    fingerprint: str
    oracle: str
    context: str
    sql: str
    seed_case: int
    minimized_dataset: dict
    results: dict
    #: How many cases rediscovered this bug (first find included).
    hits: int = 1

    def to_state(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "oracle": self.oracle,
            "context": self.context,
            "sql": self.sql,
            "seed_case": self.seed_case,
            "minimized_dataset": self.minimized_dataset,
            "results": self.results,
            "hits": self.hits,
        }

    @classmethod
    def from_state(cls, state: dict) -> BugRecord:
        return cls(**state)


@dataclass
class BugTracker:
    """In-memory deduped store with atomic JSONL persistence."""

    path: str | None = None
    bugs: dict[str, BugRecord] = field(default_factory=dict)

    def record(self, bug: BugRecord) -> bool:
        """Add ``bug``; returns True when it is new, False on rediscovery."""
        existing = self.bugs.get(bug.fingerprint)
        if existing is not None:
            existing.hits += 1
            return False
        self.bugs[bug.fingerprint] = bug
        return True

    def __len__(self) -> int:
        return len(self.bugs)

    @property
    def fingerprints(self) -> set[str]:
        return set(self.bugs)

    def flush(self) -> None:
        """Atomically rewrite the JSONL report file from memory."""
        if self.path is None:
            return
        tmp = f"{self.path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                for fingerprint in sorted(self.bugs):
                    fh.write(
                        json.dumps(
                            self.bugs[fingerprint].to_state(), sort_keys=True
                        )
                        + "\n"
                    )
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    @classmethod
    def load(cls, path: str) -> BugTracker:
        """Restore the store from a previous flush (missing file = empty)."""
        tracker = cls(path=path)
        if not os.path.exists(path):
            return tracker
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                bug = BugRecord.from_state(json.loads(line))
                tracker.bugs[bug.fingerprint] = bug
        return tracker
