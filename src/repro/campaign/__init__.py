"""Crash-safe differential fuzzing campaign (DESIGN.md §5i).

A long-running loop over the mutant-killing pipeline: evolve a corpus
of queries, generate datasets for each, and let a panel of oracles —
dual execution against SQLite plus two backend-free self-checks — veto
any case where the engine's answers are inconsistent.  State is
checkpointed atomically every round, so ``xdata campaign --resume``
continues bit-identically after SIGKILL.
"""

from repro.campaign.bugs import BugRecord, BugTracker, bug_fingerprint
from repro.campaign.case import CaseBug, CaseResult, CaseTask, run_case
from repro.campaign.checkpoint import (
    CampaignState,
    load_checkpoint,
    save_checkpoint,
)
from repro.campaign.corpus import Corpus, CorpusItem, query_features
from repro.campaign.driver import CampaignConfig, CampaignDriver
from repro.campaign.oracles import (
    ORACLES,
    CrossCheckOracle,
    DuplicateSensitivityOracle,
    JoinIdentityOracle,
    Oracle,
    OracleContext,
    OracleOutcome,
    build_oracles,
)

__all__ = [
    "BugRecord",
    "BugTracker",
    "bug_fingerprint",
    "CampaignConfig",
    "CampaignDriver",
    "CampaignState",
    "CaseBug",
    "CaseResult",
    "CaseTask",
    "Corpus",
    "CorpusItem",
    "CrossCheckOracle",
    "DuplicateSensitivityOracle",
    "JoinIdentityOracle",
    "ORACLES",
    "Oracle",
    "OracleContext",
    "OracleOutcome",
    "build_oracles",
    "load_checkpoint",
    "query_features",
    "run_case",
    "save_checkpoint",
]
