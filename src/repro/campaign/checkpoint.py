"""Atomic campaign checkpoints (write-temp-then-rename JSON).

One checkpoint file captures everything needed to resume a campaign
deterministically after SIGKILL:

* ``next_case`` / ``round`` — scheduling position (results are applied
  in case-index order, so the position is exact, not approximate);
* ``rng_state`` — the parent RNG's :func:`random.Random.getstate`,
  converted losslessly to/from JSON (the Mersenne state is a tuple of
  ints);
* ``corpus`` — the full population (:meth:`Corpus.state`);
* ``seen_bugs`` — fingerprints already reported, so replayed rounds
  cannot produce duplicate reports;
* ``stats`` — monotone counters for reporting continuity.

The file is written with fsync to a pid-unique temp name and
``os.replace``d into place, so a crash at any instant leaves either
the previous complete checkpoint or the new complete checkpoint —
never a torn file.  Wall-clock fields (``ts``) live alongside but are
excluded from determinism comparisons by the test suite.
"""

from __future__ import annotations

import json
import os
import random
import time
from dataclasses import dataclass, field

from repro.campaign.corpus import Corpus

__all__ = ["CampaignState", "load_checkpoint", "save_checkpoint"]

_VERSION = 1


def rng_state_to_json(state) -> list:
    """``random.Random.getstate()`` -> JSON-able structure."""
    version, internal, gauss = state
    return [version, list(internal), gauss]


def rng_state_from_json(state) -> tuple:
    version, internal, gauss = state
    return (version, tuple(internal), gauss)


@dataclass
class CampaignState:
    """The resumable portion of a campaign."""

    seed: int
    next_case: int = 0
    round: int = 0
    rng_state: tuple | None = None
    corpus: Corpus = field(default_factory=Corpus)
    seen_bugs: set[str] = field(default_factory=set)
    stats: dict = field(
        default_factory=lambda: {
            "cases": 0,
            "executions": 0,
            "checks": 0,
            "bugs": 0,
            "rediscoveries": 0,
            "requeued": 0,
            "skipped": 0,
            "admitted": 0,
        }
    )

    def capture_rng(self, rng: random.Random) -> None:
        self.rng_state = rng.getstate()

    def make_rng(self) -> random.Random:
        rng = random.Random(self.seed)
        if self.rng_state is not None:
            rng.setstate(self.rng_state)
        return rng

    def to_json(self) -> dict:
        return {
            "version": _VERSION,
            "ts": time.time(),
            "seed": self.seed,
            "next_case": self.next_case,
            "round": self.round,
            "rng_state": (
                None
                if self.rng_state is None
                else rng_state_to_json(self.rng_state)
            ),
            "corpus": self.corpus.state(),
            "seen_bugs": sorted(self.seen_bugs),
            "stats": self.stats,
        }

    @classmethod
    def from_json(cls, data: dict) -> CampaignState:
        if data.get("version") != _VERSION:
            raise ValueError(
                f"unsupported checkpoint version {data.get('version')!r}"
            )
        state = cls(seed=data["seed"])
        state.next_case = data["next_case"]
        state.round = data["round"]
        if data["rng_state"] is not None:
            state.rng_state = rng_state_from_json(data["rng_state"])
        state.corpus = Corpus.from_state(data["corpus"])
        state.seen_bugs = set(data["seen_bugs"])
        state.stats.update(data["stats"])
        return state


def save_checkpoint(path: str, state: CampaignState) -> None:
    """Atomically persist ``state`` to ``path``."""
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(state.to_json(), fh, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def load_checkpoint(path: str) -> CampaignState:
    with open(path, encoding="utf-8") as fh:
        return CampaignState.from_json(json.load(fh))
