"""One campaign case: the picklable unit of work a pool worker runs.

A :class:`CaseTask` carries everything a worker needs (SQL text, oracle
names, dataset-evolution knobs); a :class:`CaseResult` carries back
counters plus at most one :class:`CaseBug` — the structural fingerprint
and fully-serialized minimized repro of the first oracle veto.  Both
directions are plain data so they cross the process boundary cheaply
and deterministically.

Fault injection (test-only) mirrors :mod:`repro.testing.faults` but is
keyed by *case index* so the driver's recovery paths are exercisable on
demand::

    XDATA_CAMPAIGN_FAULTS="3:crash,7:hang:30"
    XDATA_CAMPAIGN_FAULT_DIR=/tmp/markers   # optional: fire once

``crash`` hard-kills the worker (``os._exit``); ``hang`` sleeps for
``arg`` seconds (default 3600 — effectively forever next to any case
deadline).  With a marker directory set, each fault fires only on the
first attempt of its case (an ``O_EXCL`` marker file claims it), so the
requeued attempt succeeds and tests can assert full recovery.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field

from repro.backends import (
    BackendDisagreement,
    EngineBackend,
    SqliteBackend,
)
from repro.core.generator import XDataGenerator
from repro.datasets.university import university_schema
from repro.engine.database import Database
from repro.engine.plan import plan_fingerprint
from repro.errors import XDataError
from repro.mutation.space import enumerate_mutants

from repro.campaign.bugs import bug_fingerprint
from repro.campaign.oracles import OracleContext, build_oracles

__all__ = [
    "CaseBug",
    "CaseResult",
    "CaseTask",
    "FAULTS_ENV",
    "FAULT_DIR_ENV",
    "run_case",
]

FAULTS_ENV = "XDATA_CAMPAIGN_FAULTS"
FAULT_DIR_ENV = "XDATA_CAMPAIGN_FAULT_DIR"


@dataclass(frozen=True)
class CaseTask:
    """Worker input for one case.  Everything is picklable and small."""

    index: int
    sql: str
    oracles: tuple[str, ...]
    #: Forwarded to the SQLite reference (odd cases force the rewrites,
    #: mirroring the conformance corpus convention).
    force_join_rewrites: bool = False
    #: Dataset evolution: fraction of rows to drop from a copy of each
    #: generated dataset (0 disables the extra variants).
    dataset_drop: float = 0.0
    #: Seed for the worker-local RNG driving dataset evolution.
    drop_seed: int = 0


@dataclass
class OracleRun:
    """Per-oracle counters for one case (mirrors ``OracleOutcome``)."""

    oracle: str
    executions: int = 0
    checks: int = 0
    skipped: str | None = None


@dataclass
class CaseBug:
    """A serialized oracle veto: fingerprint plus minimized repro."""

    fingerprint: str
    oracle: str
    context: str
    sql: str
    #: table -> rows of the minimized repro dataset.
    minimized_dataset: dict
    #: label -> {"columns": [...], "rows": [...]} of the disagreeing bags.
    results: dict


@dataclass
class CaseResult:
    """Worker output for one case."""

    index: int
    sql: str
    executions: int = 0
    checks: int = 0
    skipped: str | None = None
    oracle_runs: list[OracleRun] = field(default_factory=list)
    bug: CaseBug | None = None
    elapsed: float = 0.0


def _maybe_fault(index: int) -> None:
    raw = os.environ.get(FAULTS_ENV, "")
    if not raw:
        return
    for entry in raw.split(","):
        parts = entry.strip().split(":")
        if len(parts) < 2 or int(parts[0]) != index:
            continue
        kind = parts[1]
        marker_dir = os.environ.get(FAULT_DIR_ENV)
        if marker_dir:
            marker = os.path.join(marker_dir, f"case{index}.{kind}")
            try:
                fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.close(fd)
            except FileExistsError:
                continue  # already fired once; let the retry succeed
        if kind == "crash":
            os._exit(3)
        if kind == "hang":
            time.sleep(float(parts[2]) if len(parts) > 2 else 3600.0)


def serialize_database(db: Database) -> dict:
    """Database -> ``{table: [row, ...]}`` (only nonempty tables)."""
    return {
        name: [list(row) for row in db.relation(name).rows]
        for name in db.table_names
        if len(db.relation(name))
    }


def _serialize_results(results: dict) -> dict:
    return {
        label: {
            "columns": list(relation.columns),
            "rows": [list(row) for row in relation.rows],
        }
        for label, relation in results.items()
    }


def _evolved_datasets(
    databases: list[Database], drop: float, seed: int
) -> list[Database]:
    """Row-drop variants: corpus evolution on the *data* axis.

    The generator's datasets are minimal by construction; dropping rows
    probes the boundary where a dataset stops distinguishing plans —
    precisely where incomplete-result bugs (lost dangling tuples, bad
    NULL padding) hide.  A drop that breaks referential integrity is
    discarded (validated per candidate): the backends enforce the
    schema's FKs on load, and an invalid instance tests nothing.
    """
    rng = random.Random(seed)
    variants: list[Database] = []
    for db in databases:
        if db.total_rows() < 2:
            continue
        clone = db.copy()
        dropped = False
        for name in clone.table_names:
            relation = clone.relation(name)
            if len(relation.rows) > 1 and rng.random() < drop:
                candidate = clone.copy()
                rows = candidate.relation(name).rows
                del rows[rng.randrange(len(rows))]
                try:
                    candidate.validate()
                except XDataError:
                    continue  # the dropped row had dependents; keep it
                clone = candidate
                dropped = True
        if dropped:
            variants.append(clone)
    return variants


def run_case(task: CaseTask) -> CaseResult:
    """Generate datasets for ``task.sql`` and run every oracle.

    Never raises for *case-level* problems (generation skips, oracle
    vetoes — both are data in the result); only infrastructure faults
    (injected crash/hang, pickling bugs) escape.
    """
    started = time.monotonic()
    _maybe_fault(task.index)
    result = CaseResult(task.index, task.sql)
    schema = university_schema()
    try:
        suite = XDataGenerator(schema).generate(task.sql)
        space = enumerate_mutants(suite.analyzed, include_full_outer=True)
    except XDataError as exc:
        result.skipped = f"{type(exc).__name__}: {exc}"
        result.elapsed = time.monotonic() - started
        return result
    databases = list(suite.databases)
    if task.dataset_drop > 0:
        databases.extend(
            _evolved_datasets(databases, task.dataset_drop, task.drop_seed)
        )
    primary = EngineBackend()
    reference = (
        SqliteBackend(force_join_rewrites=task.force_join_rewrites)
        if "cross-check" in task.oracles
        else None
    )
    ctx = OracleContext(
        space=space,
        databases=databases,
        primary=primary,
        reference=reference,
        label=f"case {task.index}",
    )
    for oracle in build_oracles(task.oracles):
        try:
            outcome = oracle.check(ctx)
        except XDataError as exc:
            if not isinstance(exc, BackendDisagreement):
                # A pipeline-level refusal (capability gap, integrity
                # guard) is a case skip, not a finding and *not* an
                # infrastructure failure worth a worker strike.
                result.skipped = f"{type(exc).__name__}: {exc}"
                break
            minimized = oracle.minimize(exc, ctx)
            # Fingerprint over the *minimized* repro: original result
            # bags vary with whichever dataset happened to trip the
            # oracle, the minimized dataset converges across
            # rediscoveries of the same underlying bug.
            fingerprint = bug_fingerprint(
                exc.oracle,
                plan_fingerprint(exc.plan) if exc.plan is not None else "",
                serialize_database(minimized),
            )
            result.bug = CaseBug(
                fingerprint=fingerprint,
                oracle=exc.oracle,
                context=exc.context,
                sql=task.sql,
                minimized_dataset=serialize_database(minimized),
                results=_serialize_results(exc.results),
            )
            break
        result.executions += outcome.executions
        result.checks += outcome.checks
        result.oracle_runs.append(
            OracleRun(
                outcome.oracle,
                outcome.executions,
                outcome.checks,
                outcome.skipped,
            )
        )
    result.elapsed = time.monotonic() - started
    return result
