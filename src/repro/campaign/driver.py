"""The campaign driver: crash-safe round-based differential fuzzing.

The driver turns the one-shot conformance harness into a long-running
campaign (DESIGN.md §5i).  Work is organised into *rounds*:

1. **Draw** — from the checkpointed RNG, pick parents from the corpus,
   evolve children (:func:`repro.mutation.evolve.evolve_query`), admit
   novel children, and materialise one :class:`CaseTask` per case.
   Every draw is a deterministic function of the checkpoint, so a
   replayed round re-creates the identical task list.
2. **Execute** — fan the tasks over a :class:`SupervisedPool` with
   backpressure (inflight ≤ workers, pending ≤ round size — the queue
   can never outgrow memory).  A hang watchdog kills the pool when the
   oldest inflight case exceeds its deadline; worker crashes surface as
   broken futures.  Either way every inflight task takes a *strike*
   and is requeued (crashes cannot be attributed to a single inflight
   case); tasks striking out are recorded as infrastructure skips so
   one poisonous query cannot wedge the campaign.
3. **Apply** — results are folded into campaign state in case-index
   order (never completion order), so counters, bug dedup, and corpus
   accounting are identical no matter how the pool interleaved.
4. **Checkpoint** — bug reports are flushed and the full state written
   via atomic rename.  SIGKILL at any instant loses at most the round
   in flight; ``resume=True`` replays it bit-identically.

SIGINT/SIGTERM request a *graceful drain*: the current round finishes,
a final checkpoint lands, and the journal records a clean
``campaign_end`` with ``ok=False`` (interrupted, resumable).
"""

from __future__ import annotations

import json
import os
import random
import signal
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, wait
from dataclasses import dataclass, field

from repro.campaign.bugs import BugRecord, BugTracker
from repro.campaign.case import CaseResult, CaseTask, run_case
from repro.campaign.checkpoint import (
    CampaignState,
    load_checkpoint,
    save_checkpoint,
)
from repro.campaign.oracles import ORACLES
from repro.core.parallel import SupervisedPool
from repro.datasets.university import university_schema
from repro.mutation.evolve import evolve_query
from repro.obs import JournalWriter, Metrics
from repro.testing.conformance import sample_conformance_query

__all__ = ["CampaignConfig", "CampaignDriver", "CHECKPOINT", "BUGS", "JOURNAL"]

CHECKPOINT = "checkpoint.json"
BUGS = "bugs.jsonl"
JOURNAL = "journal.jsonl"
REPORT = "report.json"


@dataclass
class CampaignConfig:
    """Knobs for one campaign run (all deterministic given ``seed``)."""

    dir: str
    seed: int = 0
    #: Total case budget; the campaign stops when ``next_case`` hits it.
    cases: int = 64
    #: Cases drawn/executed/checkpointed per round.  Also the
    #: backpressure bound on the pending queue.
    round_size: int = 8
    workers: int = 2
    #: Hang watchdog: seconds an inflight case may run before the pool
    #: is killed and all inflight cases are struck and requeued.
    case_deadline: float = 120.0
    #: Strikes before a task is recorded as an infrastructure skip.
    max_strikes: int = 2
    oracles: tuple[str, ...] = tuple(ORACLES)
    #: Founding population size (seed queries from the conformance
    #: grammar).
    seed_corpus: int = 8
    corpus_max: int = 256
    #: Probability that a drawn case evolves its parent (vs re-testing
    #: the parent unchanged against fresh oracle schedules).
    evolve_probability: float = 0.75
    #: Probability a case adds row-dropped dataset variants.
    dataset_drop_probability: float = 0.5
    #: Row-drop rate within an evolved dataset variant.
    dataset_drop: float = 0.35

    def path(self, name: str) -> str:
        return os.path.join(self.dir, name)


@dataclass
class _RoundOutcome:
    results: list[CaseResult] = field(default_factory=list)
    requeued: int = 0
    struck_out: int = 0


class CampaignDriver:
    """Runs (or resumes) one campaign in ``config.dir``."""

    def __init__(self, config: CampaignConfig, resume: bool = False):
        self.config = config
        self.resume = resume
        self.metrics = Metrics()
        self._stop_requested = False
        self._schema = university_schema()

    # -- state ----------------------------------------------------------

    def _fresh_state(self) -> CampaignState:
        state = CampaignState(seed=self.config.seed)
        state.corpus.max_size = self.config.corpus_max
        rng = random.Random(self.config.seed)
        attempts = 0
        while (
            len(state.corpus) < self.config.seed_corpus
            and attempts < self.config.seed_corpus * 10
        ):
            sql = sample_conformance_query(rng, self._schema)
            state.corpus.admit(sql, origin=len(state.corpus), generation=0)
            attempts += 1
        state.capture_rng(rng)
        return state

    def _load_state(self) -> tuple[CampaignState, BugTracker, bool]:
        checkpoint_path = self.config.path(CHECKPOINT)
        if self.resume and os.path.exists(checkpoint_path):
            state = load_checkpoint(checkpoint_path)
            if state.seed != self.config.seed:
                raise ValueError(
                    f"checkpoint seed {state.seed} does not match "
                    f"--seed {self.config.seed}; refusing to mix streams"
                )
            tracker = BugTracker.load(self.config.path(BUGS))
            return state, tracker, True
        state = self._fresh_state()
        tracker = BugTracker(path=self.config.path(BUGS))
        return state, tracker, False

    # -- drawing --------------------------------------------------------

    def _draw_round(
        self, state: CampaignState, rng: random.Random
    ) -> list[CaseTask]:
        """Materialise this round's tasks (pure function of state+rng)."""
        remaining = self.config.cases - state.next_case
        count = max(0, min(self.config.round_size, remaining))
        tasks: list[CaseTask] = []
        for offset in range(count):
            index = state.next_case + offset
            parent = state.corpus.pick_parent(rng)
            parent.trials += 1
            sql = parent.sql
            if rng.random() < self.config.evolve_probability:
                evolved = evolve_query(rng, parent.sql)
                if evolved is not None:
                    sql, _applied = evolved
                    if state.corpus.admit(
                        sql, parent.origin, parent.generation + 1
                    ):
                        state.stats["admitted"] += 1
            drop = (
                self.config.dataset_drop
                if rng.random() < self.config.dataset_drop_probability
                else 0.0
            )
            tasks.append(
                CaseTask(
                    index=index,
                    sql=sql,
                    oracles=self.config.oracles,
                    force_join_rewrites=bool(index % 2),
                    dataset_drop=drop,
                    drop_seed=rng.randrange(2**31),
                )
            )
        return tasks

    # -- execution ------------------------------------------------------

    def _strike(
        self,
        task: CaseTask,
        strikes: dict[int, int],
        pending: deque,
        outcome: _RoundOutcome,
        results: dict[int, CaseResult],
        reason: str,
    ) -> None:
        strikes[task.index] += 1
        if strikes[task.index] > self.config.max_strikes:
            results[task.index] = CaseResult(
                task.index, task.sql,
                skipped=f"infrastructure: {reason} "
                f"(struck out after {strikes[task.index]} attempts)",
            )
            outcome.struck_out += 1
        else:
            pending.append(task)
            outcome.requeued += 1
        self.metrics.inc("xdata_campaign_requeues_total")

    def _run_round(
        self, pool: SupervisedPool, tasks: list[CaseTask]
    ) -> _RoundOutcome:
        """Execute one round with crash recovery and the hang watchdog."""
        outcome = _RoundOutcome()
        pending: deque[CaseTask] = deque(tasks)
        strikes = {task.index: 0 for task in tasks}
        results: dict[int, CaseResult] = {}
        inflight: dict[object, tuple[CaseTask, float]] = {}
        while pending or inflight:
            # Backpressure: never more futures than workers; pending is
            # bounded by round_size + requeues ≤ 2 × round_size.
            while pending and len(inflight) < pool.workers:
                task = pending.popleft()
                inflight[pool.submit(run_case, task)] = (
                    task, time.monotonic(),
                )
            done, _ = wait(
                list(inflight), timeout=0.05, return_when=FIRST_COMPLETED
            )
            crashed = False
            for future in done:
                task, _started = inflight.pop(future)
                try:
                    results[task.index] = future.result()
                except Exception:
                    # A worker died (BrokenProcessPool / lost result).
                    # The whole pool is poisoned; strike every inflight
                    # task — the crash cannot be attributed to one.
                    crashed = True
                    self._strike(
                        task, strikes, pending, outcome, results,
                        "worker crash",
                    )
            now = time.monotonic()
            hung = inflight and any(
                now - started > self.config.case_deadline
                for _, started in inflight.values()
            )
            if crashed or hung:
                victims = [task for task, _ in inflight.values()]
                inflight.clear()
                pool.kill()
                reason = "worker crash" if crashed else "case deadline"
                if hung:
                    self.metrics.inc("xdata_campaign_watchdog_kills_total")
                for task in victims:
                    self._strike(
                        task, strikes, pending, outcome, results, reason
                    )
        outcome.results = [results[task.index] for task in tasks]
        return outcome

    # -- applying -------------------------------------------------------

    def _apply_results(
        self,
        state: CampaignState,
        tracker: BugTracker,
        journal: JournalWriter,
        outcome: _RoundOutcome,
    ) -> int:
        """Fold results into state in case-index order; returns new bugs."""
        new_bugs = 0
        for result in sorted(outcome.results, key=lambda r: r.index):
            state.stats["cases"] += 1
            state.stats["executions"] += result.executions
            state.stats["checks"] += result.checks
            if result.skipped is not None:
                state.stats["skipped"] += 1
            self.metrics.inc("xdata_campaign_cases_total")
            self.metrics.inc(
                "xdata_campaign_executions_total", result.executions
            )
            self.metrics.observe("xdata_campaign_case_seconds", result.elapsed)
            bug = result.bug
            if bug is None:
                continue
            if bug.fingerprint in state.seen_bugs:
                state.stats["rediscoveries"] += 1
                existing = tracker.bugs.get(bug.fingerprint)
                if existing is not None:
                    existing.hits += 1
                continue
            state.seen_bugs.add(bug.fingerprint)
            state.stats["bugs"] += 1
            new_bugs += 1
            tracker.record(
                BugRecord(
                    fingerprint=bug.fingerprint,
                    oracle=bug.oracle,
                    context=bug.context,
                    sql=bug.sql,
                    seed_case=result.index,
                    minimized_dataset=bug.minimized_dataset,
                    results=bug.results,
                )
            )
            journal.campaign_bug(
                fingerprint=bug.fingerprint,
                oracle=bug.oracle,
                context=bug.context,
                sql=bug.sql,
            )
            self.metrics.inc("xdata_campaign_bugs_total")
        state.stats["requeued"] += outcome.requeued
        return new_bugs

    # -- lifecycle ------------------------------------------------------

    def _request_stop(self, signum, frame) -> None:
        self._stop_requested = True

    def run(self) -> dict:
        """Run until the case budget is spent, a signal drains us, or
        ``stop_after_rounds`` (tests) is reached.  Returns the report."""
        os.makedirs(self.config.dir, exist_ok=True)
        state, tracker, resumed = self._load_state()
        journal = JournalWriter(self.config.path(JOURNAL))
        started = time.monotonic()
        previous_handlers = {}
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                previous_handlers[signum] = signal.signal(
                    signum, self._request_stop
                )
            except ValueError:  # non-main thread (tests): skip handlers
                previous_handlers.pop(signum, None)
        journal.campaign_start(
            seed=state.seed,
            cases=self.config.cases,
            resumed=resumed,
            next_case=state.next_case,
        )
        interrupted = False
        try:
            with SupervisedPool(self.config.workers) as pool:
                while state.next_case < self.config.cases:
                    if self._stop_requested:
                        interrupted = True
                        break
                    rng = state.make_rng()
                    tasks = self._draw_round(state, rng)
                    state.capture_rng(rng)
                    outcome = self._run_round(pool, tasks)
                    new_bugs = self._apply_results(
                        state, tracker, journal, outcome
                    )
                    state.next_case += len(tasks)
                    state.round += 1
                    journal.campaign_round(
                        round=state.round,
                        cases=len(tasks),
                        bugs=new_bugs,
                        executions=sum(
                            r.executions for r in outcome.results
                        ),
                        requeued=outcome.requeued,
                    )
                    # Flush bugs BEFORE the checkpoint: a crash between
                    # the two re-runs the round and re-flushes the same
                    # deduped store — duplicates remain impossible.
                    tracker.flush()
                    save_checkpoint(self.config.path(CHECKPOINT), state)
                    journal.campaign_checkpoint(
                        round=state.round, next_case=state.next_case
                    )
        finally:
            for signum, handler in previous_handlers.items():
                signal.signal(signum, handler)
        elapsed = time.monotonic() - started
        completed = state.next_case >= self.config.cases
        journal.campaign_end(
            cases=state.stats["cases"],
            bugs=len(tracker),
            ok=completed and not interrupted,
        )
        journal.close()
        self.metrics.gauge("xdata_campaign_corpus_size", len(state.corpus))
        report = {
            "seed": state.seed,
            "completed": completed,
            "interrupted": interrupted,
            "resumed": resumed,
            "rounds": state.round,
            "next_case": state.next_case,
            "corpus_size": len(state.corpus),
            "bugs": len(tracker),
            "stats": state.stats,
            "elapsed_s": round(elapsed, 3),
            "cases_per_s": round(state.stats["cases"] / elapsed, 3)
            if elapsed > 0
            else None,
            "metrics": self.metrics.snapshot(),
        }
        with open(self.config.path(REPORT), "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return report
