"""``xdata campaign`` / ``python -m repro.campaign`` — run a campaign.

A thin argparse layer over :class:`repro.campaign.driver.CampaignDriver`;
all campaign behaviour lives in the driver so tests drive it directly.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.campaign.driver import CampaignConfig, CampaignDriver
from repro.campaign.oracles import ORACLES


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="xdata campaign",
        description=(
            "Run a crash-safe differential fuzzing campaign over the "
            "mutant-killing pipeline."
        ),
    )
    parser.add_argument(
        "--dir",
        required=True,
        help="campaign directory (checkpoint, bugs.jsonl, journal, report)",
    )
    parser.add_argument("--seed", type=int, default=0, help="campaign seed")
    parser.add_argument(
        "--cases", type=int, default=64, help="total case budget"
    )
    parser.add_argument(
        "--round-size", type=int, default=8,
        help="cases per round (checkpoint granularity)",
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="worker processes"
    )
    parser.add_argument(
        "--case-deadline", type=float, default=120.0,
        help="seconds before the hang watchdog kills an inflight case",
    )
    parser.add_argument(
        "--oracles",
        default=",".join(ORACLES),
        help=f"comma-separated oracle names (default: all of {', '.join(ORACLES)})",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="continue from the directory's checkpoint (exact replay)",
    )
    parser.add_argument(
        "--json", action="store_true", help="print the report as JSON"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    config = CampaignConfig(
        dir=args.dir,
        seed=args.seed,
        cases=args.cases,
        round_size=args.round_size,
        workers=args.workers,
        case_deadline=args.case_deadline,
        oracles=tuple(
            name.strip() for name in args.oracles.split(",") if name.strip()
        ),
    )
    report = CampaignDriver(config, resume=args.resume).run()
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        status = (
            "interrupted (resumable)"
            if report["interrupted"]
            else ("complete" if report["completed"] else "stopped")
        )
        rate = report["cases_per_s"]
        print(
            f"campaign {status}: {report['stats']['cases']} cases in "
            f"{report['rounds']} rounds, {report['bugs']} unique bugs, "
            f"corpus {report['corpus_size']}"
            + (f", {rate} cases/s" if rate is not None else "")
        )
    # An interrupted campaign exits 0: the drain was clean and the
    # checkpoint is good — that is the success path for SIGTERM.
    return 0


if __name__ == "__main__":
    sys.exit(main())
