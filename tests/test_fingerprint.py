"""Canonical content-addressing (``repro.service.fingerprint``).

Two obligations, mirror images of each other:

* **collision**: every spelling of one request — identifier case,
  whitespace, alias names, literal formatting — must land on one
  fingerprint, or the service cache misses the grading workload's
  near-duplicate bursts;
* **separation**: requests the generator could answer differently must
  never share a fingerprint, or the cache would serve wrong bytes.  The
  seeded-corpus test sweeps the conformance grammar to check this at
  scale.
"""

from __future__ import annotations

import random

import pytest

from repro.core.generator import GenConfig
from repro.datasets.university import university_schema
from repro.service.fingerprint import (
    canonical_config,
    canonical_query,
    canonical_schema,
    fingerprint,
    fingerprint_parts,
)
from repro.solver.search import SearchConfig
from repro.testing.conformance import sample_conformance_query

DDL = """
CREATE TABLE dept (id INT PRIMARY KEY, name VARCHAR);
CREATE TABLE emp (
    id INT PRIMARY KEY,
    dept_id INT REFERENCES dept(id),
    salary INT
);
"""

BASE = "SELECT e.salary FROM emp e, dept d WHERE e.dept_id = d.id AND e.salary > 10"


class TestQueryCollisions:
    """Spellings that must canonicalize identically."""

    @pytest.mark.parametrize(
        "variant",
        [
            # whitespace and newlines
            "SELECT  e.salary  FROM emp e , dept d\n"
            "WHERE e.dept_id = d.id AND e.salary > 10",
            # keyword and identifier case
            "select E.Salary from EMP e, DEPT d "
            "where e.DEPT_ID = d.ID and e.salary > 10",
            # alias renaming (x/y instead of e/d)
            "SELECT x.salary FROM emp x, dept y "
            "WHERE x.dept_id = y.id AND x.salary > 10",
            # explicit AS keyword
            "SELECT e.salary FROM emp AS e, dept AS d "
            "WHERE e.dept_id = d.id AND e.salary > 10",
        ],
    )
    def test_equivalent_spelling_collides(self, variant):
        assert canonical_query(variant) == canonical_query(BASE)
        assert fingerprint(DDL, variant) == fingerprint(DDL, BASE)

    def test_literal_formatting_collides(self):
        a = "SELECT e.salary FROM emp e WHERE e.salary > 1.5"
        b = "SELECT e.salary FROM emp e WHERE e.salary > 1.50"
        assert canonical_query(a) == canonical_query(b)

    def test_not_equal_spellings_collide(self):
        a = "SELECT e.salary FROM emp e WHERE e.salary <> 10"
        b = "SELECT e.salary FROM emp e WHERE e.salary != 10"
        assert canonical_query(a) == canonical_query(b)

    def test_no_alias_vs_alias_collides(self):
        # An unaliased table is its own binding; renaming is positional
        # either way.
        a = "SELECT emp.salary FROM emp WHERE emp.salary > 10"
        b = "SELECT z.salary FROM emp z WHERE z.salary > 10"
        assert canonical_query(a) == canonical_query(b)

    def test_subquery_alias_renaming_collides(self):
        a = ("SELECT e.id FROM emp e WHERE EXISTS "
             "(SELECT d.id FROM dept d WHERE d.id = e.dept_id)")
        b = ("SELECT a.id FROM emp a WHERE EXISTS "
             "(SELECT b.id FROM dept b WHERE b.id = a.dept_id)")
        assert canonical_query(a) == canonical_query(b)

    def test_join_spelling_with_aliases_collides(self):
        a = ("SELECT e.salary FROM emp e JOIN dept d ON e.dept_id = d.id")
        b = ("SELECT p.salary FROM emp p join dept q on p.dept_id = q.id")
        assert canonical_query(a) == canonical_query(b)


class TestQuerySeparation:
    """Differences that must change the fingerprint."""

    def test_different_constant_separates(self):
        other = BASE.replace("> 10", "> 11")
        assert fingerprint(DDL, other) != fingerprint(DDL, BASE)

    def test_different_column_separates(self):
        other = BASE.replace("e.salary FROM", "e.id FROM")
        assert fingerprint(DDL, other) != fingerprint(DDL, BASE)

    def test_select_alias_is_significant(self):
        # Output column names are part of the result shape.
        a = "SELECT e.salary AS pay FROM emp e"
        b = "SELECT e.salary FROM emp e"
        assert canonical_query(a) != canonical_query(b)

    def test_select_alias_case_is_not_significant(self):
        a = "SELECT e.salary AS PAY FROM emp e"
        b = "SELECT e.salary AS pay FROM emp e"
        assert canonical_query(a) == canonical_query(b)

    def test_conjunct_order_is_significant(self):
        # Same SQL semantics, but spec derivation order differs — and
        # the cache contract is byte-identity of generated suites.
        a = "SELECT e.id FROM emp e WHERE e.salary > 10 AND e.dept_id = 1"
        b = "SELECT e.id FROM emp e WHERE e.dept_id = 1 AND e.salary > 10"
        assert canonical_query(a) != canonical_query(b)

    def test_distinct_is_significant(self):
        a = "SELECT DISTINCT e.salary FROM emp e"
        b = "SELECT e.salary FROM emp e"
        assert canonical_query(a) != canonical_query(b)

    def test_seeded_corpus_never_collides(self):
        """Distinct canonical queries ⇒ distinct fingerprints, at scale."""
        schema = university_schema()
        schema_canon = canonical_schema(schema)
        config_canon = canonical_config(None)
        rng = random.Random(20260808)
        by_fingerprint: dict[str, str] = {}
        for _ in range(300):
            sql = sample_conformance_query(rng, schema)
            canon = canonical_query(sql)
            digest = fingerprint_parts(schema_canon, canon, config_canon)
            previous = by_fingerprint.setdefault(digest, canon)
            assert previous == canon, (
                f"fingerprint collision between {previous!r} and {canon!r}"
            )

    def test_canonicalization_is_idempotent(self):
        schema = university_schema()
        rng = random.Random(7)
        for _ in range(50):
            canon = canonical_query(sample_conformance_query(rng, schema))
            assert canonical_query(canon) == canon


class TestSchemaAndConfig:
    def test_schema_content_separates(self):
        other = DDL.replace("salary INT", "salary NUMERIC")
        assert fingerprint(other, BASE) != fingerprint(DDL, BASE)

    def test_column_domain_separates(self):
        # Value domains steer the solver's string choices, hence the
        # generated bytes; schemas differing only in domains must not
        # share a fingerprint.
        from repro.schema.catalog import Column, Schema, Table
        from repro.schema.types import SqlType

        def build(domain):
            return Schema([
                Table(
                    "r",
                    [Column("name", SqlType.VARCHAR, domain=domain)],
                    primary_key=("name",),
                )
            ])

        sql = "SELECT r.name FROM r"
        assert fingerprint(build(("a", "b")), sql) != fingerprint(
            build(()), sql
        )

    def test_schema_text_formatting_collides(self):
        reformatted = DDL.replace("\n", " ").replace("  ", " ")
        assert canonical_schema(reformatted) == canonical_schema(DDL)

    def test_none_config_equals_default_config(self):
        assert fingerprint(DDL, BASE, None) == fingerprint(DDL, BASE, GenConfig())

    def test_observability_and_workers_do_not_separate(self):
        noisy = GenConfig(
            trace=True, metrics=True, workers=8, journal_path="/tmp/x.jsonl"
        )
        assert fingerprint(DDL, BASE, noisy) == fingerprint(DDL, BASE)

    @pytest.mark.parametrize(
        "config",
        [
            GenConfig(unfold=False),
            GenConfig(include_aggregates=False),
            GenConfig(retries=3),
            GenConfig(solver=SearchConfig(node_limit=10)),
            GenConfig(spec_deadline_s=1.0),
        ],
    )
    def test_result_affecting_knobs_separate(self, config):
        assert fingerprint(DDL, BASE, config) != fingerprint(DDL, BASE)

    def test_parsed_and_text_inputs_agree(self):
        from repro.schema.ddl import parse_ddl
        from repro.sql.parser import parse_query

        assert fingerprint(parse_ddl(DDL), parse_query(BASE)) == fingerprint(
            DDL, BASE
        )
