"""Observability tests: spans, metrics, journal — including under faults.

The §5e contract: with tracing on, every derived spec produces exactly
one ``solve`` span whose status names its fate (``completed``,
``skipped:<reason>``, ``killed-by-deadline``); metrics totals reconcile
with :class:`SuiteHealth`; the JSON-lines journal validates and accounts
for every spec even when solves are fault-injected or the run aborts;
and with everything off, the pipeline records nothing at all.
"""

from __future__ import annotations

import json

import pytest

from repro.core.generator import GenConfig, XDataGenerator
from repro.core.parallel import shutdown_pool
from repro.errors import GenerationError
from repro.obs import (
    JournalError,
    JournalWriter,
    Metrics,
    Tracer,
    render_text,
    validate_journal,
)
from repro.obs.trace import NULL_TRACER, walk_spans
from repro.schema.catalog import Column, Schema, Table
from repro.schema.types import SqlType
from repro.testing import faults
from repro.testing.report import format_trace

#: Same fixture query as test_fault_tolerance: exactly four specs, all
#: SAT, so spec indices 0..3 are valid fault targets.
SQL = "SELECT v FROM t WHERE v > 5"
SPEC_COUNT = 4


def _schema():
    return Schema(
        [
            Table(
                "t",
                [Column("id", SqlType.INT), Column("v", SqlType.INT)],
                primary_key=("id",),
            )
        ]
    )


def _generate(tmp_path=None, **config_kwargs):
    if tmp_path is not None:
        config_kwargs["journal_path"] = str(tmp_path / "journal.jsonl")
    config = GenConfig(**config_kwargs)
    return XDataGenerator(_schema(), config).generate(SQL), config


def _solve_spans(trace):
    return [r for r, _ in walk_spans(trace) if r["name"] == "solve"]


@pytest.fixture(scope="module", autouse=True)
def _stop_pool_afterwards():
    yield
    shutdown_pool()


@pytest.fixture(autouse=True)
def _isolated_faults(monkeypatch):
    monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
    monkeypatch.delenv(faults.LOG_ENV, raising=False)
    faults.reset()
    yield
    faults.reset()


class TestTracer:
    def test_nesting_and_status(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner", k=1) as inner:
                inner["status"] = "done"
            outer["attrs"]["n"] = 2
        (root,) = tracer.roots
        assert root["name"] == "outer" and root["attrs"]["n"] == 2
        (child,) = root["children"]
        assert child["status"] == "done" and child["attrs"]["k"] == 1
        assert child["elapsed_s"] <= root["elapsed_s"]

    def test_exception_marks_span(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        assert tracer.roots[0]["status"] == "error:ValueError"

    def test_sink_sees_children_before_parents(self):
        order = []
        tracer = Tracer(sink=lambda record, path: order.append(path))
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert order == ["a/b", "a"]

    def test_null_tracer_records_nothing(self):
        with NULL_TRACER.span("x") as rec:
            rec["status"] = "ignored"
            rec["attrs"]["k"] = 1
        assert NULL_TRACER.roots == []
        NULL_TRACER.add_record({"name": "x"})
        assert NULL_TRACER.roots == []


class TestSuiteTrace:
    def test_disabled_records_nothing(self):
        suite, _ = _generate()
        assert suite.trace is None and suite.metrics is None

    def test_trace_covers_the_pipeline(self):
        suite, _ = _generate(trace=True)
        (root,) = suite.trace
        names = [child["name"] for child in root["children"]]
        assert names[:3] == ["parse", "analyze", "derive_specs"]
        assert names[-1] == "assemble"
        solves = _solve_spans(suite.trace)
        assert len(solves) == SPEC_COUNT
        assert all(s["status"] == "completed" for s in solves)
        assert sorted(s["attrs"]["spec"] for s in solves) == list(
            range(SPEC_COUNT)
        )
        # Each successful solve carries its attempt child spans.
        for solve in solves:
            assert solve["children"][0]["name"] == "attempt"
            assert solve["children"][-1]["status"] == "sat"
        assert "generate [ok]" in format_trace(suite.trace)

    def test_parallel_run_ships_worker_spans(self):
        shutdown_pool()
        suite, _ = _generate(trace=True, workers=4)
        solves = _solve_spans(suite.trace)
        assert len(solves) == SPEC_COUNT
        for solve in solves:
            assert solve["status"] == "completed"
            assert any(c["name"] == "attempt" for c in solve["children"])
        shutdown_pool()

    def test_budget_skip_is_a_span_status(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "1:limit")
        suite, _ = _generate(trace=True, retries=1)
        statuses = sorted(s["status"] for s in _solve_spans(suite.trace))
        assert statuses == ["completed"] * (SPEC_COUNT - 1) + ["skipped:budget"]

    def test_suite_deadline_kills_unstarted_specs(self):
        suite, _ = _generate(trace=True, suite_deadline_s=0.0)
        statuses = [s["status"] for s in _solve_spans(suite.trace)]
        assert statuses.count("killed-by-deadline") == SPEC_COUNT
        assert len(suite.datasets) == 0


class TestMetricsReconciliation:
    def _counters(self, suite):
        return suite.metrics["counters"]

    def test_clean_run(self):
        suite, _ = _generate(metrics=True)
        counters = self._counters(suite)
        assert counters["xdata_specs_total"] == SPEC_COUNT
        assert counters["xdata_specs_completed_total"] == suite.health.completed
        assert counters.get("xdata_specs_skipped_budget_total", 0) == 0
        hist = suite.metrics["histograms"]["xdata_solve_latency_seconds"]
        assert hist["count"] == SPEC_COUNT

    def test_faulted_run_reconciles_with_health(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "1:limit,2:error")
        suite, _ = _generate(metrics=True, retries=1)
        counters = self._counters(suite)
        health = suite.health
        assert counters["xdata_specs_completed_total"] == health.completed == 2
        assert (
            counters["xdata_specs_skipped_budget_total"]
            == health.skipped_budget
            == 1
        )
        assert counters["xdata_specs_errored_total"] == health.errored == 1
        assert counters["xdata_specs_total"] == SPEC_COUNT
        assert "xdata_specs_errored_total 1" in render_text(suite.metrics)

    def test_skeleton_counters_reconcile_with_health(self):
        from repro.core.generator import clear_process_stores

        clear_process_stores()
        suite, _ = _generate(metrics=True)
        counters = self._counters(suite)
        stats = suite.health.skeleton_cache
        lookups = stats["hits"] + stats["misses"]
        assert lookups == SPEC_COUNT
        assert stats["misses"] >= 1  # cold store: first shape compiles
        for key in ("hits", "misses", "rewrite_hits", "rewrite_misses"):
            assert (
                counters.get(f"xdata_skeleton_cache_{key}_total", 0)
                == stats[key]
            )
        # Stage attribution: skeleton compilation is preprocessing, not
        # build time, and only miss solves pay it.
        misses = [
            d for d in suite.datasets
            if d.stats and d.stats.skeleton == "miss"
        ]
        hits = [
            d for d in suite.datasets
            if d.stats and d.stats.skeleton == "hit"
        ]
        assert len(misses) == stats["misses"]
        assert len(hits) == stats["hits"]
        for dataset in misses:
            assert dataset.stats.preprocess_time > 0.0
        for dataset in suite.datasets:
            assert dataset.stats.build_time >= 0.0

    def test_delta_off_run_reports_no_skeleton_traffic(self):
        suite, _ = _generate(metrics=True, delta_solve=False)
        assert suite.health.skeleton_cache == {}
        counters = self._counters(suite)
        assert "xdata_skeleton_cache_hits_total" not in counters

    def test_registry_and_renderers(self):
        metrics = Metrics()
        metrics.inc("c")
        metrics.inc("c", 2)
        metrics.gauge("g", 7)
        metrics.observe("h", 0.003)
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["c"] == 3
        assert snapshot["gauges"]["g"] == 7
        assert snapshot["histograms"]["h"]["count"] == 1
        text = render_text(snapshot)
        assert "c 3" in text and 'h_bucket{le="0.005"} 1' in text
        assert json.loads(
            __import__("repro.obs.metrics", fromlist=["render_json"])
            .render_json(snapshot)
        )


class TestJournal:
    def test_clean_run_journal_validates(self, tmp_path):
        suite, config = _generate(tmp_path)
        events = validate_journal(config.journal_path)
        kinds = [event["event"] for event in events]
        assert kinds[0] == "run_start" and kinds[-1] == "run_end"
        solves = [
            e for e in events if e["event"] == "span" and e["name"] == "solve"
        ]
        assert len(solves) == SPEC_COUNT
        end = events[-1]
        assert end["ok"] is True
        assert end["health"]["completed"] == SPEC_COUNT

    def test_faulted_run_accounts_for_every_spec(self, tmp_path, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "1:limit,2:error")
        suite, config = _generate(tmp_path, retries=1)
        events = validate_journal(config.journal_path)
        statuses = sorted(
            e["status"]
            for e in events
            if e["event"] == "span" and e["name"] == "solve"
        )
        assert statuses == [
            "completed",
            "completed",
            "skipped:budget",
            "skipped:error:RuntimeError",
        ]
        assert events[-1]["event"] == "run_end" and events[-1]["ok"] is False

    def test_fail_fast_abort_still_journals_the_fatal_spec(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(faults.FAULTS_ENV, "1:limit")
        with pytest.raises(GenerationError):
            _generate(tmp_path, retries=1, fail_fast=True)
        path = str(tmp_path / "journal.jsonl")
        events = validate_journal(path)
        assert events[-1]["event"] == "run_abort"
        solve_statuses = [
            e["status"]
            for e in events
            if e["event"] == "span" and e["name"] == "solve"
        ]
        # The spec that tripped the budget is in the journal even though
        # the run aborted right after it.
        assert "skipped:budget" in solve_statuses

    def test_parallel_run_journals_in_the_parent(self, tmp_path):
        shutdown_pool()
        suite, config = _generate(tmp_path, workers=4)
        events = validate_journal(config.journal_path)
        solves = [
            e for e in events if e["event"] == "span" and e["name"] == "solve"
        ]
        assert len(solves) == SPEC_COUNT
        assert all(e["status"] == "completed" for e in solves)
        shutdown_pool()

    def test_worker_crash_still_accounts_for_every_spec(
        self, tmp_path, monkeypatch
    ):
        # A crashed pool worker breaks the batch; the parent resumes the
        # unfinished specs sequentially, where the crash fault degrades
        # to a RuntimeError → error skip.  (On CPU-capped machines the
        # pool falls back in-process and the crash degrades the same
        # way, just without pool involvement.)  Either way the journal
        # must close one solve span per derived spec.
        shutdown_pool()
        monkeypatch.setenv(faults.FAULTS_ENV, "2:crash")
        suite, config = _generate(tmp_path, workers=4)
        shutdown_pool()
        events = validate_journal(config.journal_path)
        statuses = sorted(
            e["status"]
            for e in events
            if e["event"] == "span" and e["name"] == "solve"
        )
        assert len(statuses) == SPEC_COUNT
        assert statuses.count("completed") == SPEC_COUNT - 1
        assert statuses[-1].startswith("skipped:error")

    def test_validator_rejects_torn_writes(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        writer = JournalWriter(str(path))
        writer.run_start(SQL)
        writer.close()
        with pytest.raises(JournalError, match="open run"):
            validate_journal(str(path))
        assert validate_journal(str(path), require_complete=False)

    def test_validator_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "span"}\n')
        with pytest.raises(JournalError):
            validate_journal(str(path))

    def test_journal_cli(self, tmp_path, capsys):
        from repro.obs import journal as journal_mod

        _, config = _generate(tmp_path)
        assert journal_mod.main([config.journal_path]) == 0
        out = capsys.readouterr().out
        assert "valid journal" in out and "completed=4" in out
        assert journal_mod.main([str(tmp_path / "missing.jsonl")]) == 1
