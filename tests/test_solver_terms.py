"""Linear terms, atoms, and formula structure."""

import pytest

from repro.solver import builders as b
from repro.solver.terms import (
    Atom,
    Linear,
    Quantified,
    VarInfo,
    formula_variables,
)


class TestLinear:
    def test_of_var_and_const(self):
        assert Linear.of_var("x").coeffs == (("x", 1),)
        assert Linear.of_const(5).const == 5

    def test_addition_merges_coefficients(self):
        lin = Linear.of_var("x") + Linear.of_var("x")
        assert lin.coeffs == (("x", 2),)

    def test_subtraction_cancels(self):
        lin = Linear.of_var("x") - Linear.of_var("x")
        assert lin.coeffs == ()
        assert lin.const == 0

    def test_scale(self):
        lin = (Linear.of_var("x") + Linear.of_const(3)).scale(2)
        assert lin.coeffs == (("x", 2),)
        assert lin.const == 6

    def test_scale_by_zero(self):
        assert Linear.of_var("x").scale(0) == Linear.of_const(0)

    def test_coeffs_sorted_for_structural_equality(self):
        l1 = Linear.of_var("a") + Linear.of_var("b")
        l2 = Linear.of_var("b") + Linear.of_var("a")
        assert l1 == l2

    def test_evaluate_full(self):
        lin = Linear.of_var("x") - Linear.of_var("y") + Linear.of_const(1)
        assert lin.evaluate({"x": 5, "y": 2}) == 4

    def test_evaluate_partial_is_none(self):
        assert Linear.of_var("x").evaluate({}) is None


class TestAtom:
    def test_invalid_op_rejected(self):
        with pytest.raises(ValueError):
            Atom(">", Linear.of_var("x"))

    def test_negation_involution(self):
        for op in ("=", "<>", "<", "<="):
            atom = Atom(op, Linear.of_var("x") + Linear.of_const(-3))
            assert atom.negate().negate().evaluate({"x": 3}) == atom.evaluate(
                {"x": 3}
            )

    @pytest.mark.parametrize("x,expected", [(2, False), (3, True), (4, True)])
    def test_negate_lt_is_ge(self, x, expected):
        # x < 3  negated is x >= 3
        atom = b.lt(b.var("x"), b.const(3)).negate()
        assert atom.evaluate({"x": x}) is expected

    def test_evaluate_partial_is_none(self):
        assert b.eq(b.var("x"), b.var("y")).evaluate({"x": 1}) is None


class TestBuilders:
    def test_compare_dispatch(self):
        assert b.compare(">", b.var("x"), b.const(3)).evaluate({"x": 4}) is True
        assert b.compare(">=", b.var("x"), b.const(3)).evaluate({"x": 3}) is True
        assert b.compare("<=", b.var("x"), b.const(3)).evaluate({"x": 4}) is False

    def test_conj_simplifies_constants(self):
        from repro.solver.terms import FALSE, TRUE

        assert b.conj([]) is TRUE
        assert b.conj([TRUE, TRUE]) is TRUE
        assert b.conj([TRUE, FALSE]) is FALSE

    def test_conj_flattens(self):
        inner = b.conj([b.eq(b.var("x"), b.const(1)), b.eq(b.var("y"), b.const(2))])
        outer = b.conj([inner, b.eq(b.var("z"), b.const(3))])
        assert len(outer.parts) == 3

    def test_disj_simplifies(self):
        from repro.solver.terms import FALSE, TRUE

        assert b.disj([]) is FALSE
        assert b.disj([FALSE, TRUE]) is TRUE

    def test_single_element_unwrapped(self):
        atom = b.eq(b.var("x"), b.const(1))
        assert b.conj([atom]) is atom
        assert b.disj([atom]) is atom

    def test_neg_pushed_into_atom(self):
        negated = b.neg(b.eq(b.var("x"), b.const(1)))
        assert isinstance(negated, Atom)
        assert negated.op == "<>"

    def test_not_exists_builds_forall_of_negations(self):
        formula = b.not_exists(
            [b.eq(b.var("x"), b.const(1)), b.eq(b.var("y"), b.const(1))]
        )
        assert isinstance(formula, Quantified)
        assert formula.kind == "forall"
        assert all(inst.op == "<>" for inst in formula.instances)

    def test_empty_quantifiers(self):
        from repro.solver.terms import FALSE, TRUE

        assert b.forall([]) is TRUE
        assert b.exists([]) is FALSE
        assert b.not_exists([]) is TRUE

    def test_implies(self):
        formula = b.implies(
            b.eq(b.var("x"), b.const(1)), b.eq(b.var("y"), b.const(2))
        )
        from repro.solver.search import eval_formula

        assert eval_formula(formula, {"x": 0, "y": 0}) is True
        assert eval_formula(formula, {"x": 1, "y": 2}) is True
        assert eval_formula(formula, {"x": 1, "y": 0}) is False


class TestVarInfo:
    def test_string_var_requires_pool(self):
        with pytest.raises(ValueError):
            VarInfo("x", "str")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            VarInfo("x", "float")


def test_formula_variables_collects_through_quantifiers():
    formula = b.forall(
        [b.eq(b.var("a"), b.var("b")), b.disj([b.ne(b.var("c"), b.const(1))])]
    )
    assert formula_variables(formula) == {"a", "b", "c"}
