"""Mutation-space tests: join-type, comparison, aggregate mutants."""

import pytest

from repro.core.analyze import analyze_query
from repro.engine.executor import execute_plan
from repro.engine.plan import compile_query
from repro.mutation import enumerate_mutants
from repro.mutation.jointype import (
    join_mutants,
    plan_canonical,
)
from repro.sql.parser import parse_query
from repro.testing.killcheck import result_signature


def analyze(sql, schema):
    return analyze_query(parse_query(sql), schema)


TWO = "SELECT * FROM instructor i, teaches t WHERE i.id = t.id"
CHAIN3 = (
    "SELECT * FROM instructor i, teaches t, course c "
    "WHERE i.id = t.id AND t.course_id = c.course_id"
)


class TestJoinMutants:
    def test_two_relations_two_mutants(self, uni_schema_nofk):
        mutants = join_mutants(analyze(TWO, uni_schema_nofk))
        assert len(mutants) == 2  # LEFT and RIGHT (full excluded by default)

    def test_full_outer_included_on_request(self, uni_schema_nofk):
        mutants = join_mutants(analyze(TWO, uni_schema_nofk), include_full=True)
        assert len(mutants) == 3

    def test_chain3_mutant_count(self, uni_schema_nofk):
        """2 shapes x 2 nodes x 2 outer kinds, deduplicated."""
        mutants = join_mutants(analyze(CHAIN3, uni_schema_nofk))
        assert len(mutants) == 8

    def test_mirror_mutants_deduplicated(self, uni_schema_nofk):
        """A LEFT join and the mirrored RIGHT join are one mutant."""
        mutants = join_mutants(analyze(TWO, uni_schema_nofk))
        canonicals = {m.canonical for m in mutants}
        assert len(canonicals) == len(mutants)
        # Both surviving canonicals are LEFT joins after normalisation.
        assert all(" L " in c for c in canonicals)

    def test_reordered_tree_mutants_present(self, uni_schema_nofk):
        """Fig. 2(d): the intended query joining A with C directly."""
        sql = (
            "SELECT * FROM teaches t, course c, prereq p "
            "WHERE t.course_id = c.course_id AND c.course_id = p.course_id"
        )
        mutants = join_mutants(analyze(sql, uni_schema_nofk))
        assert any(
            "(p L t)" in m.canonical or "(t L p)" in m.canonical
            for m in mutants
        )

    def test_single_relation_no_join_mutants(self, uni_schema_nofk):
        assert join_mutants(analyze("SELECT * FROM course", uni_schema_nofk)) == []

    def test_mutant_plans_execute(self, uni_db):
        aq = analyze(CHAIN3, uni_db.schema)
        for mutant in join_mutants(aq):
            execute_plan(mutant.plan, uni_db)  # no exception

    def test_outer_query_mutates_written_tree_only(self, uni_schema_nofk):
        sql = (
            "SELECT i.id, t.id FROM instructor i "
            "LEFT OUTER JOIN teaches t ON i.id = t.id"
        )
        aq = analyze(sql, uni_schema_nofk)
        mutants = join_mutants(aq)
        # LEFT -> INNER, LEFT -> RIGHT (mirrored), deduplicated.
        assert 1 <= len(mutants) <= 3
        descriptions = {m.description for m in mutants}
        assert any("JOIN" in d for d in descriptions)

    def test_inner_mutant_of_outer_join_differs(self, uni_db):
        sql = (
            "SELECT i.id, t.id FROM instructor i "
            "LEFT OUTER JOIN teaches t ON i.id = t.id"
        )
        aq = analyze(sql, uni_db.schema)
        original = result_signature(
            execute_plan(compile_query(aq.query), uni_db)
        )
        inner_mutant = next(
            m for m in join_mutants(aq) if "-> JOIN" in m.description
        )
        mutated = result_signature(execute_plan(inner_mutant.plan, uni_db))
        assert mutated != original  # sample db has non-teaching instructors


class TestCanonical:
    def test_inner_children_sorted(self, uni_schema_nofk):
        aq = analyze(TWO, uni_schema_nofk)
        from repro.core.joinorders import enumerate_shapes, shape_to_plan

        shape = enumerate_shapes(aq)[0]
        assert plan_canonical(shape_to_plan(aq, shape)) == "(i J t)"

    def test_right_normalised_to_left(self, uni_schema_nofk):
        from repro.core.joinorders import enumerate_shapes, shape_nodes, shape_to_plan
        from repro.sql.ast import JoinKind

        aq = analyze(TWO, uni_schema_nofk)
        shape = enumerate_shapes(aq)[0]
        node = shape_nodes(shape)[0]
        right = shape_to_plan(aq, shape, kinds={node: JoinKind.RIGHT})
        canonical = plan_canonical(right)
        assert " L " in canonical


class TestComparisonMutants:
    def test_numeric_selection_five_mutants(self, uni_schema_nofk):
        space = enumerate_mutants(
            "SELECT * FROM instructor i WHERE i.salary > 100",
            uni_schema_nofk,
            include_join=False,
        )
        assert len(space.by_kind("comparison")) == 5

    def test_string_selection_five_mutants(self, uni_schema_nofk):
        """Strings carry the full operator space (ordered interning)."""
        space = enumerate_mutants(
            "SELECT * FROM instructor i WHERE i.dept_name = 'CS'",
            uni_schema_nofk,
            include_join=False,
        )
        assert len(space.by_kind("comparison")) == 5

    def test_join_conjuncts_not_mutated(self, uni_schema_nofk):
        space = enumerate_mutants(TWO, uni_schema_nofk, include_join=False)
        assert space.by_kind("comparison") == []

    def test_mutants_execute_differently_when_expected(self, uni_db):
        space = enumerate_mutants(
            "SELECT i.id FROM instructor i WHERE i.salary > 70000",
            uni_db.schema,
            include_join=False,
        )
        original = result_signature(
            execute_plan(compile_query(space.analyzed.query), uni_db)
        )
        ge_mutant = next(
            m for m in space.mutants if "'i.salary >= 70000'" in m.description
        )
        # salary 70000 is not in the sample db, so >= agrees with > there;
        # the mutant still runs fine.
        execute_plan(ge_mutant.plan, uni_db)


class TestAggregateMutants:
    def test_numeric_aggregate_seven_mutants(self, uni_schema_nofk):
        space = enumerate_mutants(
            "SELECT SUM(i.salary) FROM instructor i",
            uni_schema_nofk,
        )
        assert len(space.by_kind("aggregate")) == 7

    def test_string_aggregate_three_mutants(self, uni_schema_nofk):
        space = enumerate_mutants(
            "SELECT MIN(i.name) FROM instructor i",
            uni_schema_nofk,
        )
        assert len(space.by_kind("aggregate")) == 3

    def test_count_star_not_mutated(self, uni_schema_nofk):
        space = enumerate_mutants(
            "SELECT COUNT(*) FROM instructor", uni_schema_nofk
        )
        assert space.by_kind("aggregate") == []

    def test_distinct_variant_is_a_mutant(self, uni_schema_nofk):
        space = enumerate_mutants(
            "SELECT SUM(i.salary) FROM instructor i", uni_schema_nofk
        )
        descriptions = {m.description for m in space.by_kind("aggregate")}
        assert "SUM(i.salary) -> SUM(DISTINCT i.salary)" in descriptions


class TestSpace:
    def test_combined_space(self, uni_schema_nofk):
        sql = (
            "SELECT i.dept_name, SUM(i.salary) "
            "FROM instructor i, teaches t "
            "WHERE i.id = t.id AND i.salary > 100 "
            "GROUP BY i.dept_name"
        )
        space = enumerate_mutants(sql, uni_schema_nofk)
        assert space.by_kind("join")
        assert space.by_kind("comparison")
        assert space.by_kind("aggregate")
        assert len(space) == sum(
            len(space.by_kind(k)) for k in ("join", "comparison", "aggregate")
        )

    def test_schema_required_for_sql_input(self):
        with pytest.raises(ValueError):
            enumerate_mutants("SELECT * FROM t")
