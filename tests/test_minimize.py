"""Suite minimization (greedy set cover over the kill matrix)."""

import pytest

from repro.core import XDataGenerator
from repro.datasets import schema_with_fks
from repro.mutation import enumerate_mutants
from repro.testing import evaluate_suite, minimize_suite

CHAIN3 = (
    "SELECT * FROM instructor i, teaches t, course c "
    "WHERE i.id = t.id AND t.course_id = c.course_id"
)


@pytest.fixture
def suite_and_space():
    schema = schema_with_fks([])
    suite = XDataGenerator(schema).generate(CHAIN3)
    space = enumerate_mutants(suite.analyzed)
    return suite, space


def test_minimized_suite_preserves_kill_count(suite_and_space):
    suite, space = suite_and_space
    full = evaluate_suite(space, suite.databases)
    result = minimize_suite(suite, space)
    minimized = evaluate_suite(space, [d.db for d in result.kept])
    assert minimized.killed == full.killed


def test_minimization_never_grows(suite_and_space):
    suite, space = suite_and_space
    result = minimize_suite(suite, space)
    assert result.kept_count <= len(suite.datasets)


def test_original_dataset_kept_by_default(suite_and_space):
    suite, space = suite_and_space
    result = minimize_suite(suite, space)
    assert any(d.group == "original" for d in result.kept)


def test_original_can_be_dropped_when_requested(suite_and_space):
    suite, space = suite_and_space
    result = minimize_suite(suite, space, keep_original=False)
    # The original dataset kills nothing on this query; without the
    # keep_original guarantee it is pruned.
    assert not any(d.group == "original" for d in result.kept)


def test_dropped_have_reasons(suite_and_space):
    suite, space = suite_and_space
    result = minimize_suite(suite, space, keep_original=False)
    for dataset, reason in result.dropped:
        assert reason


def test_duplicate_datasets_pruned():
    """Two symmetric nullification datasets may have identical kill sets;
    minimization keeps only one of each redundant pair."""
    schema = schema_with_fks([])
    sql = "SELECT * FROM instructor i, teaches t WHERE i.id = t.id"
    suite = XDataGenerator(schema).generate(sql)
    space = enumerate_mutants(suite.analyzed)
    result = minimize_suite(suite, space, keep_original=False)
    full = evaluate_suite(space, suite.databases)
    minimized = evaluate_suite(space, [d.db for d in result.kept])
    assert minimized.killed == full.killed
    assert result.kept_count <= suite.non_original_count()
