"""Randomized cross-backend conformance corpus (DESIGN.md §5f).

The CI corpus runs 200 fixed seeds — each one generates a query from the
mutation grammar, runs the normal data-generation pipeline, and
cross-checks the original plan plus every mutant on both backends over
every generated dataset.  A 2000-seed sweep (plus the bundled sample
database as an extra instance) rides behind ``-m slow``.
"""

from __future__ import annotations

import random

import pytest

from repro.backends import BackendDisagreement, CrossChecker, EngineBackend
from repro.datasets.university import UNIVERSITY_QUERIES
from repro.engine.plan import compile_query
from repro.sql.parser import parse_query
from repro.testing import (
    run_conformance_case,
    run_conformance_corpus,
    sample_conformance_query,
)
from repro.testing.conformance import minimize_disagreement

CI_SEEDS = range(200)


def test_sampler_is_deterministic(uni_schema):
    first = [sample_conformance_query(random.Random(s), uni_schema)
             for s in range(50)]
    second = [sample_conformance_query(random.Random(s), uni_schema)
              for s in range(50)]
    assert first == second


def test_sampler_covers_the_mutation_grammar(uni_schema):
    corpus = [sample_conformance_query(random.Random(s), uni_schema)
              for s in range(300)]
    text = "\n".join(corpus)
    for construct in (
        "LEFT OUTER JOIN", "RIGHT OUTER JOIN", "FULL OUTER JOIN",
        "NATURAL", "GROUP BY", "HAVING", "IS NULL", "IS NOT NULL",
    ):
        assert construct in text, f"sampler never produced {construct}"
    for op in ("=", "<", ">", "<=", ">=", "<>"):
        assert any(f" {op} " in sql for sql in corpus)
    assert all(parse_query(sql) for sql in corpus)


def test_conformance_ci_corpus_has_no_disagreements():
    report = run_conformance_corpus(CI_SEEDS)
    assert len(report.cases) == 200
    # The pipeline legitimately skips a few sampled queries (documented
    # restrictions: NULL tests on outer joins or reused columns), but
    # the corpus must stay overwhelmingly checked to mean anything.
    assert report.checked >= 150
    assert report.executions > 1000
    assert "0 disagreements" in report.summary()


def test_conformance_case_records_are_reproducible():
    first = run_conformance_case(4)
    second = run_conformance_case(4)
    assert first == second
    assert first.checked
    assert first.mutants > 0 and first.datasets > 0
    assert first.executions == first.datasets * (first.mutants + 1)


def test_conformance_skips_are_reported_not_raised():
    # Seed 82 samples `d.budget IS NOT NULL AND d.budget <= ...`, which
    # the generator rejects (NULL test on a column reused in another
    # predicate) — the case must record the reason, not propagate.
    case = run_conformance_case(82)
    assert not case.checked
    assert "UnsupportedSqlError" in case.skipped


class _LyingBackend(EngineBackend):
    """Engine backend that drops one row from every non-empty result."""

    def execute(self, handle, plan):
        relation = super().execute(handle, plan)
        from repro.engine.relation import Relation

        return Relation(list(relation.columns), list(relation.rows[1:]))


def test_disagreement_carries_minimized_repro(uni_db):
    plan = compile_query(parse_query(UNIVERSITY_QUERIES["Q1"]["sql"]))
    primary, reference = EngineBackend(), _LyingBackend()
    with CrossChecker(primary, reference) as checker:
        with pytest.raises(BackendDisagreement) as excinfo:
            checker.signature(plan, uni_db, "Q1")
    exc = excinfo.value
    exc.minimized = minimize_disagreement(exc, primary, reference)
    # The backends disagree whenever Q1 returns at least one row, so the
    # minimized dataset is the smallest valid instance with one join
    # result — far below the full sample database.
    assert exc.minimized is not None
    original_rows = sum(
        len(uni_db.relation(t).rows) for t in uni_db.table_names
    )
    minimized_rows = sum(
        len(exc.minimized.relation(t).rows)
        for t in exc.minimized.table_names
    )
    assert minimized_rows < original_rows
    assert len(exc.minimized.relation("teaches").rows) == 1
    exc.minimized.validate()
    assert "minimized dataset" in exc.detail()


@pytest.mark.slow
def test_conformance_sweep_2000_seeds():
    report = run_conformance_corpus(range(2000), include_sample_db=True)
    assert report.checked >= 1500
    assert "0 disagreements" in report.summary()
