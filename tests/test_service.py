"""The service layer: suite cache, job queue, HTTP front end.

The load-bearing property throughout is the cache contract: a
fingerprint hit returns bytes identical to the cold solve, and the
lifecycle/metrics bookkeeping around it stays consistent (hits + misses
== executed jobs, journal validates, counters reconcile).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

import repro
from repro.obs.journal import validate_journal
from repro.service import JobQueue, JobRequest, JobState, Service, SuiteCache
from repro.service.cache import canonical_bytes
from repro.service.jobs import request_key

DDL = """
CREATE TABLE dept (id INT PRIMARY KEY, name VARCHAR);
CREATE TABLE emp (
    id INT PRIMARY KEY,
    dept_id INT REFERENCES dept(id),
    salary INT
);
"""

SQL = "SELECT e.salary FROM emp e, dept d WHERE e.dept_id = d.id AND e.salary > 10"
#: The same request in a different spelling (case/spacing/aliases).
SQL_RESPELLED = (
    "select X.SALARY from EMP x , DEPT y\nwhere x.dept_id = y.id and x.salary > 10"
)
SQL_OTHER = "SELECT e.id FROM emp e WHERE e.salary > 99"


# ---------------------------------------------------------------------------
# SuiteCache
# ---------------------------------------------------------------------------


class TestSuiteCache:
    def test_roundtrip_and_stats(self):
        cache = SuiteCache()
        assert cache.get("k") is None
        cache.put("k", b"payload")
        assert cache.get("k") == b"payload"
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_lru_eviction_over_byte_budget(self):
        cache = SuiteCache(max_bytes=100)
        cache.put("a", b"x" * 40)
        cache.put("b", b"y" * 40)
        cache.get("a")  # refresh a: b becomes LRU
        cache.put("c", b"z" * 40)
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.stats.evictions == 1

    def test_oversized_entry_is_still_admitted(self):
        cache = SuiteCache(max_bytes=10)
        cache.put("big", b"x" * 50)
        assert cache.get("big") == b"x" * 50

    def test_replacing_a_key_updates_the_byte_total(self):
        cache = SuiteCache(max_bytes=1000)
        cache.put("k", b"x" * 100)
        cache.put("k", b"y" * 10)
        assert cache.total_bytes == 10
        assert len(cache) == 1

    def test_persistence_roundtrip(self, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        first = SuiteCache(path=path)
        first.put("k1", b'{"a":1}')
        first.put("k2", b'{"b":2}')
        reloaded = SuiteCache(path=path)
        assert reloaded.get("k1") == b'{"a":1}'
        assert reloaded.get("k2") == b'{"b":2}'

    def test_persistence_last_write_wins(self, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        first = SuiteCache(path=path)
        first.put("k", b"old")
        first.put("k", b"new")
        assert SuiteCache(path=path).get("k") == b"new"

    def test_torn_trailing_line_is_ignored(self, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        cache = SuiteCache(path=path)
        cache.put("k", b"v")
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"key": "half')  # crash mid-append
        assert SuiteCache(path=path).get("k") == b"v"

    def test_compact_rewrites_to_live_entries(self, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        cache = SuiteCache(path=path)
        for _ in range(5):
            cache.put("k", b"v")
        cache.compact()
        with open(path, encoding="utf-8") as fh:
            assert len(fh.readlines()) == 1
        assert SuiteCache(path=path).get("k") == b"v"

    def test_canonical_bytes_is_order_insensitive(self):
        assert canonical_bytes({"b": 1, "a": 2}) == canonical_bytes(
            {"a": 2, "b": 1}
        )


# ---------------------------------------------------------------------------
# JobQueue
# ---------------------------------------------------------------------------


def sync_queue(**kwargs) -> JobQueue:
    """A queue in deterministic inline-execution mode."""
    return JobQueue(workers=0, **kwargs)


class TestJobQueueLifecycle:
    def test_duplicate_submissions_hit_the_cache_byte_identically(self):
        queue = sync_queue()
        cold = queue.submit(JobRequest(DDL, SQL))
        warm = queue.submit(JobRequest(DDL, SQL_RESPELLED))
        assert cold.state is JobState.DONE and warm.state is JobState.DONE
        assert not cold.cached and warm.cached
        assert cold.fingerprint == warm.fingerprint
        assert cold.result == warm.result
        assert queue.cache.stats.hits == 1
        assert queue.cache.stats.misses == 1
        queue.close()

    def test_generate_and_evaluate_modes_cache_separately(self):
        queue = sync_queue()
        generated = queue.submit(JobRequest(DDL, SQL, mode="generate"))
        evaluated = queue.submit(JobRequest(DDL, SQL, mode="evaluate"))
        assert not evaluated.cached
        assert b'"kill"' in evaluated.result
        assert b'"kill"' not in generated.result
        payload = json.loads(evaluated.result)
        assert payload["kill"]["killed"] <= payload["kill"]["total"]
        queue.close()

    def test_payload_is_canonical_and_complete(self):
        queue = sync_queue()
        job = queue.submit(JobRequest(DDL, SQL))
        payload = json.loads(job.result)
        assert payload["canonical_sql"] == job.canonical_sql
        assert payload["health"]["completed"] == len(payload["datasets"])
        first = payload["datasets"][0]
        assert set(first["tables"]) == {"dept", "emp"}
        assert "INSERT INTO" in first["insert_sql"]
        # Canonical bytes: serializing the parsed payload reproduces
        # the stored bytes exactly.
        assert canonical_bytes(payload) == job.result
        queue.close()

    def test_cancellation_of_pending_job(self):
        # No workers consume the queue, so the job stays PENDING.
        queue = JobQueue(workers=0)
        queue._threads = [object()]  # force enqueue instead of inline run
        job = queue.submit(JobRequest(DDL, SQL))
        assert job.state is JobState.PENDING
        assert queue.cancel(job.id)
        assert job.state is JobState.CANCELLED
        assert not queue.cancel(job.id), "double-cancel must report False"
        queue._threads = []
        queue.close()

    def test_cancel_unknown_or_finished_job_returns_false(self):
        queue = sync_queue()
        job = queue.submit(JobRequest(DDL, SQL))
        assert not queue.cancel(job.id)  # already DONE
        assert not queue.cancel("job-does-not-exist")
        queue.close()

    def test_deadline_expired_while_queued_fails_without_solving(self):
        queue = JobQueue(workers=0)
        queue._threads = [object()]  # park the job in PENDING
        job = queue.submit(JobRequest(DDL, SQL, deadline_s=0.01))
        queue._threads = []
        time.sleep(0.03)
        queue._execute(job)
        assert job.state is JobState.FAILED
        assert "expired" in job.error
        assert queue.cache.stats.misses == 0, "deadline kill must not solve"
        queue.close()

    def test_deadline_limited_complete_solve_is_cached(self):
        queue = sync_queue()
        generous = queue.submit(JobRequest(DDL, SQL, deadline_s=300.0))
        assert generous.state is JobState.DONE, generous.error
        follow_up = queue.submit(JobRequest(DDL, SQL))
        assert follow_up.cached
        assert follow_up.result == generous.result
        queue.close()

    def test_invalid_sql_fails_the_job_not_the_queue(self):
        queue = sync_queue()
        # Parse errors surface at submit (fingerprinting parses); the
        # queue must reject the request without dying.
        with pytest.raises(Exception):
            queue.submit(JobRequest(DDL, "SELECT FROM WHERE"))
        ok = queue.submit(JobRequest(DDL, SQL))
        assert ok.state is JobState.DONE
        queue.close()

    def test_unknown_mode_is_rejected_at_request_construction(self):
        with pytest.raises(ValueError, match="unknown job mode"):
            JobRequest(DDL, SQL, mode="explain")

    def test_metrics_counters_reconcile(self):
        queue = sync_queue()
        queue.submit(JobRequest(DDL, SQL))
        queue.submit(JobRequest(DDL, SQL_RESPELLED))
        queue.submit(JobRequest(DDL, SQL_OTHER))
        snapshot = queue.snapshot()
        counters = snapshot["counters"]
        assert counters["xdata_service_jobs_submitted_total"] == 3
        assert counters["xdata_service_jobs_done_total"] == 3
        assert counters["xdata_service_cache_hits_total"] == 1
        assert counters["xdata_service_cache_misses_total"] == 2
        assert counters["xdata_service_cache_hits_total"] == queue.cache.stats.hits
        assert (
            counters["xdata_service_cache_misses_total"]
            == queue.cache.stats.misses
        )
        queue.close()

    def test_threaded_workers_drain_a_duplicated_batch(self):
        queue = JobQueue(workers=3)
        try:
            jobs = [
                queue.submit(JobRequest(DDL, sql))
                for sql in [SQL, SQL_RESPELLED, SQL, SQL_OTHER, SQL_RESPELLED]
            ]
            queue.drain(timeout=120.0)
            assert all(job.state is JobState.DONE for job in jobs)
            results = {job.fingerprint: job.result for job in jobs}
            for job in jobs:
                assert job.result == results[job.fingerprint]
            stats = queue.cache.stats
            assert stats.misses == 2, "single-flight: one solve per fingerprint"
            assert stats.hits == 3
        finally:
            queue.close()

    def test_request_key_separates_modes_and_options(self):
        fp = "f" * 8
        keys = {
            request_key(fp, "generate", None),
            request_key(fp, "evaluate", None),
            request_key(
                fp, "evaluate", repro.EvalOptions(include_full_outer=True)
            ),
        }
        assert len(keys) == 3
        assert request_key(fp, "evaluate", None) == request_key(
            fp, "evaluate", repro.EvalOptions()
        )


class TestJobQueueJournal:
    def test_journal_validates_and_audits_every_job(self, tmp_path):
        path = str(tmp_path / "audit.jsonl")
        queue = sync_queue(journal_path=path)
        queue.submit(JobRequest(DDL, SQL))
        queue.submit(JobRequest(DDL, SQL_RESPELLED))
        queue.close()
        events = validate_journal(path)
        starts = [e for e in events if e["event"] == "run_start"]
        ends = [e for e in events if e["event"] == "run_end"]
        assert len(starts) == 2 and len(ends) == 2
        # Both runs record the same canonical SQL.
        assert len({e["sql"] for e in starts}) == 1
        # The cold solve replays its spans; the cache hit has none.
        assert {e["health"].get("cache") for e in ends} == {"miss", "hit"}
        spans = [e for e in events if e["event"] == "span"]
        assert spans, "the cold solve must journal its span tree"

    def test_failed_job_journals_run_abort(self, tmp_path):
        path = str(tmp_path / "audit.jsonl")
        queue = JobQueue(workers=0, journal_path=path)
        queue._threads = [object()]
        job = queue.submit(JobRequest(DDL, SQL, deadline_s=0.001))
        queue._threads = []
        time.sleep(0.01)
        queue._execute(job)
        queue.close()
        events = validate_journal(path)
        assert events[-1]["event"] == "run_abort"
        assert "expired" in events[-1]["error"]


# ---------------------------------------------------------------------------
# HTTP service
# ---------------------------------------------------------------------------


@pytest.fixture()
def service():
    with Service(port=0, workers=2) as svc:
        yield svc


def _post_job(svc, body: dict) -> dict:
    request = urllib.request.Request(
        svc.url + "/v1/jobs",
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        assert response.status == 202
        return json.loads(response.read())


def _wait_done(svc, job_id: str, timeout: float = 120.0) -> dict:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        with urllib.request.urlopen(f"{svc.url}/v1/jobs/{job_id}") as response:
            status = json.loads(response.read())
        if status["state"] in ("done", "failed", "cancelled"):
            return status
        time.sleep(0.02)
    raise TimeoutError(job_id)


class TestHttpService:
    def test_healthz(self, service):
        with urllib.request.urlopen(service.url + "/healthz") as response:
            assert json.loads(response.read()) == {"status": "ok"}

    def test_submit_poll_result_roundtrip(self, service):
        submitted = _post_job(service, {"schema": DDL, "query": SQL})
        status = _wait_done(service, submitted["id"])
        assert status["state"] == "done", status
        assert status["fingerprint"] == submitted["fingerprint"]
        with urllib.request.urlopen(
            f"{service.url}/v1/jobs/{submitted['id']}/result"
        ) as response:
            assert response.headers["X-Xdata-Cache"] == "miss"
            payload = json.loads(response.read())
        assert payload["canonical_sql"] == status["canonical_sql"]

    def test_duplicate_submission_serves_identical_bytes_from_cache(
        self, service
    ):
        first = _post_job(service, {"schema": DDL, "query": SQL})
        _wait_done(service, first["id"])
        second = _post_job(service, {"schema": DDL, "query": SQL_RESPELLED})
        assert second["fingerprint"] == first["fingerprint"]
        status = _wait_done(service, second["id"])
        assert status["cached"] is True
        bodies = []
        for job in (first, second):
            with urllib.request.urlopen(
                f"{service.url}/v1/jobs/{job['id']}/result"
            ) as response:
                bodies.append(response.read())
        assert bodies[0] == bodies[1]

    def test_result_before_done_is_409_and_unknown_is_404(self, service):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(service.url + "/v1/jobs/job-999/result")
        assert excinfo.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(service.url + "/v1/jobs/job-999")
        assert excinfo.value.code == 404

    def test_bad_submission_is_400(self, service):
        request = urllib.request.Request(
            service.url + "/v1/jobs",
            data=json.dumps({"query": SQL}).encode(),  # schema missing
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400

    def test_metrics_exposition_reconciles_with_cache(self, service):
        first = _post_job(service, {"schema": DDL, "query": SQL})
        _wait_done(service, first["id"])
        second = _post_job(service, {"schema": DDL, "query": SQL_RESPELLED})
        _wait_done(service, second["id"])
        with urllib.request.urlopen(service.url + "/metrics") as response:
            text = response.read().decode()
        assert "xdata_service_cache_hits_total 1" in text
        assert "xdata_service_cache_misses_total 1" in text
        assert "xdata_service_jobs_done_total 2" in text
        assert "xdata_service_queue_depth" in text

    def test_evaluate_mode_over_http(self, service):
        submitted = _post_job(
            service, {"schema": DDL, "query": SQL, "mode": "evaluate"}
        )
        _wait_done(service, submitted["id"])
        with urllib.request.urlopen(
            f"{service.url}/v1/jobs/{submitted['id']}/result"
        ) as response:
            payload = json.loads(response.read())
        assert payload["kill"]["total"] > 0

    def test_delete_cancels_only_pending_jobs(self, service):
        submitted = _post_job(service, {"schema": DDL, "query": SQL})
        _wait_done(service, submitted["id"])
        request = urllib.request.Request(
            f"{service.url}/v1/jobs/{submitted['id']}", method="DELETE"
        )
        with urllib.request.urlopen(request) as response:
            body = json.loads(response.read())
        assert body["cancelled"] is False  # already finished
