"""Bundled university schema and sample data."""

import pytest

from repro.datasets import (
    FK_EDGES,
    UNIVERSITY_QUERIES,
    schema_with_fks,
    university_queries,
    university_sample_database,
    university_schema,
)
from repro.sql.parser import parse_query
from repro.core.analyze import analyze_query
from repro.engine.executor import execute_query


def test_schema_builds_and_validates():
    schema = university_schema()
    assert "instructor" in schema.table_names
    declared = {
        (fk.table, fk.columns[0], fk.ref_table, fk.ref_columns[0])
        for fk in schema.foreign_keys()
    }
    # Every experiment edge is declared (prereq's FKs exist beyond them).
    assert set(FK_EDGES.values()) <= declared


def test_sample_database_is_legal():
    university_sample_database().validate()


def test_fk_edges_all_resolve():
    schema = schema_with_fks(list(FK_EDGES))
    declared = {
        (fk.table, fk.columns[0], fk.ref_table, fk.ref_columns[0])
        for fk in schema.foreign_keys()
    }
    assert declared == set(FK_EDGES.values())


def test_schema_with_fks_subset():
    schema = schema_with_fks(["teaches.id"])
    fks = schema.foreign_keys()
    assert len(fks) == 1
    assert fks[0].table == "teaches"


def test_every_benchmark_query_parses_and_analyzes():
    schema = university_schema()
    for name, info in UNIVERSITY_QUERIES.items():
        aq = analyze_query(parse_query(info["sql"]), schema)
        assert set(occ.table for occ in aq.occurrences.values()) == set(
            info["relations"]
        ), name


def test_benchmark_queries_run_on_sample_data():
    db = university_sample_database()
    for name, info in UNIVERSITY_QUERIES.items():
        execute_query(parse_query(info["sql"]), db)  # no exception


def test_join_counts_match_metadata():
    schema = university_schema()
    for name, info in UNIVERSITY_QUERIES.items():
        aq = analyze_query(parse_query(info["sql"]), schema)
        conjunct_count = sum(len(ec) - 1 for ec in aq.eq_classes) + len(
            aq.other_joins
        )
        assert conjunct_count == info["joins"], name


def test_university_queries_returns_copy():
    first = university_queries()
    first["Q1"]["sql"] = "tampered"
    assert UNIVERSITY_QUERIES["Q1"]["sql"] != "tampered"


def test_fk_rows_are_valid_edge_names():
    for info in UNIVERSITY_QUERIES.values():
        for fks in info["fk_rows"]:
            for name in fks:
                assert name in FK_EDGES
