"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.datasets import (
    schema_with_fks,
    university_sample_database,
    university_schema,
)
from repro.engine.database import Database
from repro.schema.catalog import Column, ForeignKey, Schema, Table
from repro.schema.types import SqlType


@pytest.fixture
def uni_schema():
    """The full university schema (all foreign keys)."""
    return university_schema()


@pytest.fixture
def uni_schema_nofk():
    """The university schema with every foreign key stripped."""
    return schema_with_fks([])


@pytest.fixture
def uni_db(uni_schema):
    """The bundled sample database."""
    return university_sample_database(uni_schema)


@pytest.fixture(scope="session")
def table12_jobs():
    """The full Table I/II workload as (schema, sql) jobs (see
    tests/workload.py).  Session-scoped: schemas are immutable and the
    job list is rebuilt nowhere else."""
    from tests.workload import table12_jobs as build

    jobs, _schema_count = build()
    return jobs


@pytest.fixture
def tiny_schema():
    """Two tables, one FK: r(a PK, b) and s(a PK, r_a -> r.a)."""
    return Schema(
        [
            Table(
                "r",
                [Column("a", SqlType.INT), Column("b", SqlType.INT)],
                primary_key=("a",),
            ),
            Table(
                "s",
                [Column("a", SqlType.INT), Column("r_a", SqlType.INT)],
                primary_key=("a",),
                foreign_keys=[ForeignKey("s", ("r_a",), "r", ("a",))],
            ),
        ]
    )


@pytest.fixture
def tiny_db(tiny_schema):
    db = Database(tiny_schema)
    db.insert_rows("r", [(1, 10), (2, 20), (3, 30)])
    db.insert_rows("s", [(7, 1), (8, 1), (9, 3)])
    db.validate()
    return db


def make_schema(*tables: Table) -> Schema:
    return Schema(list(tables))
