"""DDL parser tests."""

import pytest

from repro.errors import ParseError, SchemaError
from repro.schema.ddl import parse_ddl
from repro.schema.types import SqlType


def test_single_table():
    schema = parse_ddl("CREATE TABLE t (a INT, b VARCHAR(10))")
    t = schema.table("t")
    assert t.column_names == ["a", "b"]
    assert t.column("a").sqltype is SqlType.INT
    assert t.column("b").sqltype is SqlType.VARCHAR


def test_inline_primary_key():
    schema = parse_ddl("CREATE TABLE t (a INT PRIMARY KEY, b INT)")
    assert schema.table("t").primary_key == ("a",)
    assert not schema.table("t").column("a").nullable


def test_table_level_primary_key():
    schema = parse_ddl("CREATE TABLE t (a INT, b INT, PRIMARY KEY (a, b))")
    assert schema.table("t").primary_key == ("a", "b")


def test_not_null():
    schema = parse_ddl("CREATE TABLE t (a INT NOT NULL, b INT)")
    assert not schema.table("t").column("a").nullable
    assert schema.table("t").column("b").nullable


def test_inline_references():
    schema = parse_ddl(
        "CREATE TABLE r (a INT PRIMARY KEY);"
        "CREATE TABLE s (a INT REFERENCES r(a))"
    )
    fks = schema.table("s").foreign_keys
    assert len(fks) == 1
    assert fks[0].ref_table == "r"


def test_inline_references_defaults_to_same_column():
    schema = parse_ddl(
        "CREATE TABLE r (a INT PRIMARY KEY);"
        "CREATE TABLE s (a INT REFERENCES r)"
    )
    assert schema.table("s").foreign_keys[0].ref_columns == ("a",)


def test_table_level_foreign_key():
    schema = parse_ddl(
        "CREATE TABLE r (x INT, y INT, PRIMARY KEY (x, y));"
        "CREATE TABLE s (p INT, q INT, "
        "FOREIGN KEY (p, q) REFERENCES r (x, y))"
    )
    fk = schema.table("s").foreign_keys[0]
    assert fk.columns == ("p", "q")
    assert fk.ref_columns == ("x", "y")


def test_multiple_statements_with_semicolons():
    schema = parse_ddl(
        "CREATE TABLE a (x INT); CREATE TABLE b (y INT); CREATE TABLE c (z INT);"
    )
    assert sorted(schema.table_names) == ["a", "b", "c"]


def test_numeric_precision_accepted():
    schema = parse_ddl("CREATE TABLE t (a NUMERIC(8, 2), b CHAR(1), c DECIMAL(3))")
    assert schema.table("t").column("a").sqltype is SqlType.NUMERIC


@pytest.mark.parametrize(
    "name,expected",
    [
        ("INTEGER", SqlType.INT), ("TEXT", SqlType.VARCHAR),
        ("REAL", SqlType.FLOAT), ("DATE", SqlType.DATE),
    ],
)
def test_type_aliases(name, expected):
    schema = parse_ddl(f"CREATE TABLE t (a {name})")
    assert schema.table("t").column("a").sqltype is expected


def test_keyword_as_column_name():
    # "year" is a lexer keyword but a legal column name.
    schema = parse_ddl("CREATE TABLE t (year INT, date INT)")
    assert schema.table("t").column_names == ["year", "date"]


def test_duplicate_pk_rejected():
    with pytest.raises(SchemaError):
        parse_ddl("CREATE TABLE t (a INT PRIMARY KEY, b INT PRIMARY KEY)")


def test_missing_type_rejected():
    with pytest.raises(ParseError):
        parse_ddl("CREATE TABLE t (a, b INT)")


def test_unbalanced_parens_rejected():
    with pytest.raises(ParseError):
        parse_ddl("CREATE TABLE t (a INT")


def test_fk_validation_happens():
    with pytest.raises(SchemaError):
        parse_ddl("CREATE TABLE s (a INT REFERENCES nowhere(a))")


def test_university_like_ddl_end_to_end():
    schema = parse_ddl(
        """
        CREATE TABLE department (
            dept_name VARCHAR(20) PRIMARY KEY,
            budget    NUMERIC(12,2)
        );
        CREATE TABLE instructor (
            id        INT PRIMARY KEY,
            name      VARCHAR(20) NOT NULL,
            dept_name VARCHAR(20) REFERENCES department(dept_name),
            salary    NUMERIC(8,2)
        );
        """
    )
    assert schema.referencing("department", "dept_name") == {
        ("instructor", "dept_name")
    }
