"""Printer tests, including parse -> print -> parse round-trips."""

import pytest

from repro.sql.parser import parse_query
from repro.sql.printer import to_sql

ROUND_TRIP_QUERIES = [
    "SELECT * FROM t",
    "SELECT a, b FROM t",
    "SELECT t.a AS x FROM t",
    "SELECT DISTINCT a FROM t",
    "SELECT * FROM instructor i, teaches t WHERE i.id = t.id",
    "SELECT * FROM a JOIN b ON a.x = b.x",
    "SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.x",
    "SELECT * FROM a RIGHT OUTER JOIN b ON a.x = b.x",
    "SELECT * FROM a FULL OUTER JOIN b ON a.x = b.x",
    "SELECT * FROM a CROSS JOIN b",
    "SELECT * FROM a NATURAL JOIN b",
    "SELECT * FROM a NATURAL FULL OUTER JOIN b",
    "SELECT * FROM a JOIN b ON a.x = b.x AND a.y = b.y",
    "SELECT * FROM t WHERE a = 5 AND b <> 'CS'",
    "SELECT * FROM t, s WHERE t.a = s.b + 10",
    "SELECT a, COUNT(b) FROM t GROUP BY a",
    "SELECT SUM(DISTINCT a) FROM t",
    "SELECT COUNT(*) FROM t",
    "SELECT a, AVG(b), MIN(c) FROM t GROUP BY a",
    "SELECT * FROM a JOIN (b JOIN c ON b.y = c.y) ON a.x = b.y",
]


@pytest.mark.parametrize("sql", ROUND_TRIP_QUERIES)
def test_round_trip_is_fixpoint(sql):
    """parse(print(parse(s))) == parse(s), and printing is stable."""
    first = parse_query(sql)
    printed = to_sql(first)
    second = parse_query(printed)
    assert first == second
    assert to_sql(second) == printed


def test_string_literal_escaping():
    q = parse_query("SELECT * FROM t WHERE a = 'O''Brien'")
    printed = to_sql(q)
    assert "O''Brien" in printed
    assert parse_query(printed) == q


def test_negative_literal_round_trips():
    q = parse_query("SELECT * FROM t WHERE a = -5")
    assert parse_query(to_sql(q)) == q


def test_arithmetic_parenthesised():
    q = parse_query("SELECT * FROM t WHERE a = (b + c) * 2")
    # Printing parenthesises every binary op, preserving structure.
    assert parse_query(to_sql(q)) == q


def test_aliases_preserved():
    q = parse_query("SELECT i.name AS who FROM instructor i")
    printed = to_sql(q)
    assert "AS who" in printed
    assert "instructor i" in printed
