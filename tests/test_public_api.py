"""Surface lock for the public API (DESIGN.md §5e).

``repro`` and ``repro.api`` are the documented entry points; these tests
pin their exact export lists so a refactor cannot silently add, drop or
rename a public name.  They also pin the deprecation contract: the old
config keyword spellings (``SearchConfig(deadline_s=...)``,
``GenConfig(pool_timeout_s=...)``) keep working but warn, and the
``Budgets`` overlay is the one blessed way to set every deadline at
once.
"""

from __future__ import annotations

import dataclasses
import pickle
import warnings

import pytest

import repro
from repro import api
from repro.core.generator import Budgets, GenConfig
from repro.solver.search import SearchConfig

EXPECTED_ALL = sorted(
    [
        # facade
        "api",
        "generate",
        "generate_workload",
        "evaluate",
        "fingerprint",
        "Run",
        "Evaluation",
        "EvalOptions",
        "Session",
        "Budgets",
        "SuiteHealth",
        # pipeline building blocks
        "XDataGenerator",
        "GenConfig",
        "TestSuite",
        "GeneratedDataset",
        "AnalyzedQuery",
        "analyze_query",
        "parse_query",
        "to_sql",
        "parse_ddl",
        "Schema",
        "Table",
        "Column",
        "ForeignKey",
        "SqlType",
        "Database",
        "execute_query",
        "execute_plan",
        "enumerate_mutants",
        "MutationSpace",
        "Mutant",
        "evaluate_suite",
        "classify_survivors",
        "random_database",
        "format_kill_report",
        "format_suite",
        "format_trace",
        "ShortPaperGenerator",
        "XDataError",
        "minimize_suite",
        "check_assumptions",
        "decorrelate",
        "to_insert_script",
        "to_csv_map",
        "from_csv_map",
        "__version__",
    ]
)

DDL = "CREATE TABLE t (id INT PRIMARY KEY, v INT);"
SQL = "SELECT v FROM t WHERE v > 5"


class TestSurfaceLock:
    def test_repro_all_is_exact(self):
        assert sorted(repro.__all__) == EXPECTED_ALL

    def test_repro_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_api_all_is_exact(self):
        assert sorted(api.__all__) == sorted(
            [
                "Run",
                "Evaluation",
                "EvalOptions",
                "Session",
                "generate",
                "generate_workload",
                "evaluate",
                "fingerprint",
                "GenConfig",
                "SearchConfig",
                "Budgets",
            ]
        )

    def test_facade_names_are_the_api_objects(self):
        assert repro.generate is api.generate
        assert repro.evaluate is api.evaluate
        assert repro.generate_workload is api.generate_workload
        assert repro.Run is api.Run
        assert repro.Session is api.Session
        assert repro.EvalOptions is api.EvalOptions
        assert repro.fingerprint is api.fingerprint


class TestFacade:
    def test_generate_accepts_ddl_text(self):
        run = repro.generate(DDL, SQL)
        assert run.ok
        assert len(run.datasets) == 4
        assert run.datasets is run.suite.datasets
        assert run.trace is None and run.metrics is None

    def test_generate_accepts_parsed_schema(self):
        schema = repro.parse_ddl(DDL)
        run = repro.generate(schema, SQL)
        assert run.health.completed == 4

    def test_run_exposes_observability(self):
        run = repro.generate(
            DDL, SQL, config=GenConfig(trace=True, metrics=True)
        )
        assert run.trace and run.trace[0]["name"] == "generate"
        assert "generate [ok]" in run.trace_text()
        assert run.metrics["counters"]["xdata_specs_completed_total"] == 4
        assert "xdata_specs_completed_total 4" in run.metrics_text()
        assert "health: completed=4" in run.summary()

    def test_evaluate_scores_the_suite(self):
        scored = repro.evaluate(DDL, SQL)
        assert scored.total == len(scored.space.mutants) > 0
        assert scored.killed == scored.total
        assert scored.survivors == []
        assert scored.run.ok

    def test_generate_workload_accepts_ddl_text(self):
        workload = repro.generate_workload(DDL, {"q": SQL})
        assert len(workload.entries) == 1
        assert not workload.entries[0].failed
        assert workload.datasets


class TestDeprecatedAliases:
    def test_search_config_deadline_kwarg_warns_and_applies(self):
        with pytest.warns(DeprecationWarning, match="solve_deadline_s"):
            config = SearchConfig(deadline_s=1.5)
        assert config.solve_deadline_s == 1.5

    def test_search_config_deadline_read_warns(self):
        config = SearchConfig(solve_deadline_s=2.0)
        with pytest.warns(DeprecationWarning, match="solve_deadline_s"):
            assert config.deadline_s == 2.0

    def test_gen_config_pool_timeout_kwarg_warns_and_applies(self):
        with pytest.warns(DeprecationWarning, match="pool_deadline_s"):
            config = GenConfig(pool_timeout_s=30.0)
        assert config.pool_deadline_s == 30.0

    def test_gen_config_pool_timeout_read_warns(self):
        config = GenConfig(pool_deadline_s=45.0)
        with pytest.warns(DeprecationWarning, match="pool_deadline_s"):
            assert config.pool_timeout_s == 45.0

    def test_new_spellings_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            SearchConfig(solve_deadline_s=1.0)
            GenConfig(pool_deadline_s=10.0)

    def test_replace_new_value_wins_over_alias_roundtrip(self):
        # replace() reads the alias property and re-passes the old
        # value; it must not clobber the new-name value in `changes`.
        with pytest.warns(DeprecationWarning):
            base = SearchConfig(deadline_s=1.5)
            clone = dataclasses.replace(base, solve_deadline_s=3.0)
        assert clone.solve_deadline_s == 3.0
        with pytest.warns(DeprecationWarning):
            gen_base = GenConfig(pool_timeout_s=30.0)
            gen_clone = dataclasses.replace(gen_base, pool_deadline_s=60.0)
        assert gen_clone.pool_deadline_s == 60.0

    def test_configs_survive_replace_and_pickle(self):
        config = GenConfig(pool_deadline_s=9.0, spec_deadline_s=3.0)
        clone = dataclasses.replace(config, retries=2)
        assert clone.pool_deadline_s == 9.0 and clone.retries == 2
        assert pickle.loads(pickle.dumps(clone)).pool_deadline_s == 9.0
        search = SearchConfig(solve_deadline_s=4.0)
        assert dataclasses.replace(search).solve_deadline_s == 4.0
        assert pickle.loads(pickle.dumps(search)).solve_deadline_s == 4.0


class TestEvalOptions:
    """The EvalOptions bundle and the legacy-keyword deprecation shim."""

    def test_evaluate_accepts_options_without_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            scored = repro.evaluate(
                DDL, SQL, options=repro.EvalOptions(include_full_outer=True)
            )
        assert scored.total > 0

    @pytest.mark.parametrize(
        "keyword, value",
        [
            ("include_full_outer", True),
            ("backend", "sqlite"),
            ("cross_check", True),
            ("kill_config", None),
        ],
    )
    def test_legacy_keywords_warn_and_apply(self, keyword, value):
        with pytest.warns(DeprecationWarning, match="EvalOptions"):
            scored = repro.evaluate(DDL, SQL, **{keyword: value})
        assert scored.killed == scored.total

    def test_legacy_keyword_result_matches_options_result(self):
        with pytest.warns(DeprecationWarning):
            legacy = repro.evaluate(DDL, SQL, include_full_outer=True)
        modern = repro.evaluate(
            DDL, SQL, options=repro.EvalOptions(include_full_outer=True)
        )
        assert legacy.total == modern.total
        assert legacy.killed == modern.killed

    def test_mixing_options_and_legacy_is_an_error(self):
        with pytest.raises(TypeError, match="not both"):
            repro.evaluate(
                DDL, SQL, options=repro.EvalOptions(), cross_check=True
            )

    def test_unknown_keyword_is_an_error(self):
        with pytest.raises(TypeError, match="unexpected keyword"):
            repro.evaluate(DDL, SQL, not_a_switch=1)

    def test_options_are_frozen_and_hashable(self):
        options = repro.EvalOptions(cross_check=True)
        with pytest.raises(dataclasses.FrozenInstanceError):
            options.cross_check = False
        assert hash(options) == hash(repro.EvalOptions(cross_check=True))


class TestSession:
    def test_session_memoizes_equivalent_spellings(self):
        with repro.Session(DDL) as session:
            first = session.generate(SQL)
            again = session.generate("select  V from T where v>5")
            assert first is again
            assert session.cached_runs == 1

    def test_session_distinguishes_different_queries(self):
        with repro.Session(DDL) as session:
            session.generate(SQL)
            session.generate("SELECT v FROM t WHERE v > 6")
            assert session.cached_runs == 2

    def test_session_evaluate_memoizes_and_scores(self):
        session = repro.Session(DDL)
        scored = session.evaluate(SQL)
        assert scored.killed == scored.total > 0
        assert session.evaluate("SELECT v FROM t WHERE v > 5") is scored
        per_call = session.evaluate(
            SQL, options=repro.EvalOptions(include_full_outer=True)
        )
        assert per_call is not scored

    def test_session_fingerprint_matches_module_fingerprint(self):
        session = repro.Session(DDL)
        assert session.fingerprint(SQL) == repro.fingerprint(DDL, SQL)

    def test_close_clears_the_memo(self):
        session = repro.Session(DDL)
        session.generate(SQL)
        session.close()
        assert session.cached_runs == 0


class TestFingerprint:
    def test_equivalent_spellings_collide(self):
        assert repro.fingerprint(DDL, SQL) == repro.fingerprint(
            DDL, "select  v from T\nwhere V > 5"
        )

    def test_different_semantics_do_not_collide(self):
        assert repro.fingerprint(DDL, SQL) != repro.fingerprint(
            DDL, "SELECT v FROM t WHERE v > 6"
        )

    def test_config_affects_fingerprint_but_observability_does_not(self):
        base = repro.fingerprint(DDL, SQL)
        assert base == repro.fingerprint(
            DDL, SQL, GenConfig(trace=True, metrics=True, workers=4)
        )
        assert base != repro.fingerprint(DDL, SQL, GenConfig(unfold=False))


class TestBudgets:
    def test_overlay_applies_every_deadline(self):
        budgets = Budgets(
            solve_deadline_s=1.0,
            spec_deadline_s=2.0,
            suite_deadline_s=3.0,
            pool_deadline_s=4.0,
        )
        config = GenConfig(budgets=budgets)
        assert config.solver.solve_deadline_s == 1.0
        assert config.spec_deadline_s == 2.0
        assert config.suite_deadline_s == 3.0
        assert config.pool_deadline_s == 4.0

    def test_partial_overlay_keeps_other_fields(self):
        config = GenConfig(spec_deadline_s=7.0, budgets=Budgets(pool_deadline_s=5.0))
        assert config.spec_deadline_s == 7.0
        assert config.pool_deadline_s == 5.0

    def test_replace_is_idempotent(self):
        config = GenConfig(budgets=Budgets(spec_deadline_s=2.0))
        clone = dataclasses.replace(config, retries=3)
        assert clone.spec_deadline_s == 2.0
