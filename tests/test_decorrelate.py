"""Subquery decorrelation (Section V-H) tests."""

import pytest

from repro.core import XDataGenerator, analyze_query
from repro.core.decorrelate import decorrelate
from repro.datasets import schema_with_fks, university_sample_database
from repro.engine.executor import execute_query
from repro.errors import UnsupportedSqlError
from repro.mutation import enumerate_mutants
from repro.sql.ast import Exists, InSubquery
from repro.sql.parser import parse_query
from repro.sql.printer import to_sql
from repro.testing import classify_survivors, evaluate_suite
from repro.testing.killcheck import result_signature

IN_QUERY = (
    "SELECT i.name FROM instructor i "
    "WHERE i.id IN (SELECT t.id FROM teaches t WHERE t.course_id = 101)"
)
EXISTS_QUERY = (
    "SELECT s.name FROM student s "
    "WHERE EXISTS (SELECT * FROM advisor a WHERE a.s_id = s.id)"
)


class TestParsing:
    def test_in_subquery_parses(self):
        query = parse_query(IN_QUERY)
        assert query.has_subquery_predicates
        assert isinstance(query.where[0], InSubquery)

    def test_exists_parses(self):
        query = parse_query(EXISTS_QUERY)
        assert isinstance(query.where[0], Exists)

    def test_in_value_list_still_rejected(self):
        with pytest.raises(UnsupportedSqlError):
            parse_query("SELECT * FROM t WHERE a IN (1, 2, 3)")

    def test_printer_renders_subqueries(self):
        text = to_sql(parse_query(IN_QUERY))
        assert "IN (SELECT" in text

    def test_analyze_requires_decorrelation(self, uni_schema_nofk):
        with pytest.raises(UnsupportedSqlError):
            analyze_query(parse_query(IN_QUERY), uni_schema_nofk)


class TestRewrite:
    def test_in_becomes_join(self, uni_schema_nofk):
        query = decorrelate(parse_query(IN_QUERY), uni_schema_nofk)
        assert not query.has_subquery_predicates
        assert len(query.from_items) == 2
        rendered = to_sql(query)
        assert "teaches" in rendered
        assert "i.id = t.id" in rendered or "t.id" in rendered

    def test_exists_becomes_join(self, uni_schema_nofk):
        query = decorrelate(parse_query(EXISTS_QUERY), uni_schema_nofk)
        assert not query.has_subquery_predicates
        assert len(query.from_items) == 2

    def test_no_subqueries_is_identity(self, uni_schema_nofk):
        query = parse_query("SELECT * FROM instructor i WHERE i.salary > 1")
        assert decorrelate(query, uni_schema_nofk) is query

    def test_alias_collision_gets_fresh_binding(self, uni_schema_nofk):
        sql = (
            "SELECT t.id FROM teaches t WHERE t.id IN "
            "(SELECT t.id FROM instructor t WHERE t.salary > 0)"
        )
        query = decorrelate(parse_query(sql), uni_schema_nofk)
        bindings = [ref.binding for ref in query.from_items]
        assert len(set(bindings)) == 2

    def test_semantics_preserved_on_sample_data(self, uni_schema_nofk):
        db = university_sample_database(uni_schema_nofk)
        rewritten = decorrelate(parse_query(IN_QUERY), uni_schema_nofk)
        result = execute_query(rewritten, db)
        # Instructors teaching course 101 in the sample data: Srinivasan.
        assert ("Srinivasan",) in result.rows
        assert len(result) == 1

    def test_exists_semantics_on_sample_data(self, uni_schema_nofk):
        db = university_sample_database(uni_schema_nofk)
        rewritten = decorrelate(parse_query(EXISTS_QUERY), uni_schema_nofk)
        result = execute_query(rewritten, db)
        advised = {row[0] for row in result.rows}
        assert advised == {"Zhang", "Shankar", "Sanchez", "Levy"}


class TestMultiplicityGuard:
    def test_non_key_match_rejected(self, uni_schema_nofk):
        """teaches.id is not a key of teaches: an instructor teaching two
        courses would be duplicated by the join; refuse."""
        sql = (
            "SELECT i.name FROM instructor i "
            "WHERE i.id IN (SELECT t.id FROM teaches t)"
        )
        with pytest.raises(UnsupportedSqlError):
            decorrelate(parse_query(sql), uni_schema_nofk)

    def test_distinct_outer_allows_non_key_match(self, uni_schema_nofk):
        sql = (
            "SELECT DISTINCT i.name FROM instructor i "
            "WHERE i.id IN (SELECT t.id FROM teaches t)"
        )
        query = decorrelate(parse_query(sql), uni_schema_nofk)
        db = university_sample_database(uni_schema_nofk)
        result = execute_query(query, db)
        assert sorted(r[0] for r in result.rows) == sorted(
            {"Srinivasan", "Katz", "Crick", "Wu"}
        )

    def test_key_coverage_via_extra_equalities(self, uni_schema_nofk):
        """Pinning the remaining key column restores safety."""
        sql = (
            "SELECT i.name FROM instructor i "
            "WHERE i.id IN (SELECT t.id FROM teaches t "
            "WHERE t.course_id = 101)"
        )
        decorrelate(parse_query(sql), uni_schema_nofk)  # no raise

    def test_multi_table_subquery_rejected(self, uni_schema_nofk):
        sql = (
            "SELECT i.name FROM instructor i WHERE EXISTS "
            "(SELECT * FROM teaches t, course c "
            "WHERE t.id = i.id AND t.course_id = c.course_id)"
        )
        with pytest.raises(UnsupportedSqlError):
            decorrelate(parse_query(sql), uni_schema_nofk)

    def test_aggregating_subquery_rejected(self, uni_schema_nofk):
        sql = (
            "SELECT i.name FROM instructor i WHERE i.salary IN "
            "(SELECT MAX(t.year) FROM teaches t)"
        )
        with pytest.raises(UnsupportedSqlError):
            decorrelate(parse_query(sql), uni_schema_nofk)


class TestEndToEnd:
    def test_generator_decorrelates_automatically(self):
        schema = schema_with_fks(["advisor.s_id"])
        suite = XDataGenerator(schema).generate(EXISTS_QUERY)
        assert suite.datasets
        assert not suite.analyzed.query.has_subquery_predicates

    def test_suite_kills_mutants_of_decorrelated_query(self):
        schema = schema_with_fks([])
        suite = XDataGenerator(schema).generate(EXISTS_QUERY)
        space = enumerate_mutants(suite.analyzed)
        report = evaluate_suite(space, suite.databases)
        classification = classify_survivors(space, report.survivors)
        assert report.killed >= 1
        assert classification.missed == []
