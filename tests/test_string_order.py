"""Rank-preserving string interning and string order comparisons."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import XDataGenerator
from repro.datasets import schema_with_fks
from repro.mutation import enumerate_mutants
from repro.solver.model import SymbolTable
from repro.testing import classify_survivors, evaluate_suite


class TestSymbolTableOrdering:
    def test_codes_follow_lexicographic_order(self):
        table = SymbolTable()
        values = ["M", "Apple", "zebra", "CS", "Biology", "apple"]
        codes = {v: table.intern("p", v) for v in values}
        ordered = sorted(values)
        ordered_codes = [codes[v] for v in ordered]
        assert ordered_codes == sorted(ordered_codes)

    def test_insertion_between_existing(self):
        table = SymbolTable()
        a = table.intern("p", "a")
        c = table.intern("p", "c")
        b = table.intern("p", "b")
        assert a < b < c

    def test_fresh_values_keep_order(self):
        table = SymbolTable()
        m = table.intern("p", "M")
        fresh = table.fresh("p")
        assert (table.decode(fresh) < "M") == (fresh < m)

    @settings(max_examples=80, deadline=None)
    @given(
        st.lists(
            st.text(
                alphabet=st.characters(min_codepoint=48, max_codepoint=122),
                min_size=1,
                max_size=8,
            ),
            min_size=2,
            max_size=20,
            unique=True,
        )
    )
    def test_order_isomorphism_property(self, values):
        """For any interning order, code order == string order."""
        table = SymbolTable()
        shuffled = list(values)
        random.Random(0).shuffle(shuffled)
        codes = {v: table.intern("p", v) for v in shuffled}
        for first in values:
            for second in values:
                assert (first < second) == (codes[first] < codes[second])

    def test_pools_stay_disjoint(self):
        table = SymbolTable()
        a = table.intern("p1", "same")
        b = table.intern("p2", "same")
        assert a != b
        assert table.decode(a) == table.decode(b) == "same"


class TestStringOrderQueries:
    @pytest.mark.parametrize(
        "op", ["<", ">", "<=", ">=", "=", "<>"]
    )
    def test_all_operator_mutants_killed(self, op, uni_schema_nofk):
        sql = f"SELECT i.name FROM instructor i WHERE i.name {op} 'M'"
        suite = XDataGenerator(uni_schema_nofk).generate(sql)
        space = enumerate_mutants(suite.analyzed)
        report = evaluate_suite(space, suite.databases)
        classification = classify_survivors(space, report.survivors, trials=10)
        assert classification.missed == []
        assert report.killed == report.total == 5

    def test_forced_values_respect_lexicographic_order(self, uni_schema_nofk):
        sql = "SELECT i.name FROM instructor i WHERE i.name > 'M'"
        suite = XDataGenerator(uni_schema_nofk).generate(sql)
        for dataset in suite.datasets:
            if dataset.group != "comparison":
                continue
            name = dataset.db.relation("instructor").rows[0][1]
            if "force =" in dataset.target:
                assert name == "M"
            elif "force <" in dataset.target:
                assert name < "M"
            else:
                assert name > "M"

    def test_string_order_join_condition(self, uni_schema_nofk):
        """Non-equi join on strings: s.name < i.name."""
        sql = (
            "SELECT s.name, i.name FROM student s, instructor i "
            "WHERE s.name < i.name"
        )
        suite = XDataGenerator(uni_schema_nofk).generate(sql)
        space = enumerate_mutants(suite.analyzed)
        report = evaluate_suite(space, suite.databases)
        classification = classify_survivors(space, report.survivors, trials=10)
        assert classification.missed == []

    def test_grade_threshold_scenario(self, uni_schema_nofk):
        """The practical case: filtering by letter grade."""
        sql = "SELECT k.id FROM takes k WHERE k.grade <= 'B'"
        suite = XDataGenerator(uni_schema_nofk).generate(sql)
        space = enumerate_mutants(suite.analyzed)
        report = evaluate_suite(space, suite.databases)
        assert report.killed == report.total == 5
