"""Catalog tests: tables, keys, FK closure, derived schemas."""

import pytest

from repro.errors import CatalogError, SchemaError
from repro.schema.catalog import Column, ForeignKey, Schema, Table
from repro.schema.types import SqlType


def table(name, cols, pk=(), fks=()):
    return Table(
        name,
        [Column(c, SqlType.INT) for c in cols],
        primary_key=pk,
        foreign_keys=list(fks),
    )


class TestTable:
    def test_column_lookup_case_insensitive(self):
        t = table("T", ["A", "B"])
        assert t.name == "t"
        assert t.has_column("a")
        assert t.has_column("A")
        assert t.column_index("B") == 1

    def test_missing_column_raises(self):
        t = table("t", ["a"])
        with pytest.raises(CatalogError):
            t.column("zz")

    def test_duplicate_column_rejected(self):
        with pytest.raises(SchemaError):
            table("t", ["a", "a"])

    def test_pk_column_must_exist(self):
        with pytest.raises(SchemaError):
            table("t", ["a"], pk=("b",))


class TestForeignKey:
    def test_arity_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            ForeignKey("s", ("a", "b"), "r", ("a",))

    def test_names_lowered(self):
        fk = ForeignKey("S", ("X",), "R", ("Y",))
        assert fk.table == "s"
        assert fk.column_pairs() == [("x", "y")]


class TestSchemaValidation:
    def test_unknown_ref_table_rejected(self):
        bad = table("s", ["a"], fks=[ForeignKey("s", ("a",), "nope", ("a",))])
        with pytest.raises(SchemaError):
            Schema([bad])

    def test_unknown_ref_column_rejected(self):
        r = table("r", ["a"])
        s = table("s", ["a"], fks=[ForeignKey("s", ("a",), "r", ("zz",))])
        with pytest.raises(SchemaError):
            Schema([r, s])

    def test_unknown_fk_column_rejected(self):
        r = table("r", ["a"])
        s = table("s", ["a"], fks=[ForeignKey("s", ("zz",), "r", ("a",))])
        with pytest.raises(SchemaError):
            Schema([r, s])

    def test_duplicate_table_rejected(self):
        with pytest.raises(SchemaError):
            Schema([table("t", ["a"]), table("t", ["b"])])

    def test_fk_columns_forced_not_nullable(self):
        """Assumption A2: FK columns become NOT NULL."""
        r = table("r", ["a"], pk=("a",))
        s = table("s", ["a"], fks=[ForeignKey("s", ("a",), "r", ("a",))])
        schema = Schema([r, s])
        assert not schema.table("s").column("a").nullable

    def test_nullable_fks_allowed_when_opted_in(self):
        """Section V-H relaxation."""
        r = table("r", ["a"], pk=("a",))
        s = table("s", ["a"], fks=[ForeignKey("s", ("a",), "r", ("a",))])
        schema = Schema([r, s], allow_nullable_fks=True)
        assert schema.table("s").column("a").nullable


class TestFkClosure:
    def make_chain(self):
        """a.x -> b.x -> c.x"""
        c = table("c", ["x"], pk=("x",))
        b = table("b", ["x"], pk=("x",), fks=[ForeignKey("b", ("x",), "c", ("x",))])
        a = table("a", ["x"], fks=[ForeignKey("a", ("x",), "b", ("x",))])
        return Schema([a, b, c])

    def test_direct_edges_present(self):
        closure = self.make_chain().fk_closure()
        assert ("a", "x", "b", "x") in closure
        assert ("b", "x", "c", "x") in closure

    def test_transitive_edge_added(self):
        """Algorithm 1 preprocessing step 3."""
        closure = self.make_chain().fk_closure()
        assert ("a", "x", "c", "x") in closure

    def test_referencing_is_transitive(self):
        schema = self.make_chain()
        assert schema.referencing("c", "x") == {("a", "x"), ("b", "x")}
        assert schema.referencing("b", "x") == {("a", "x")}
        assert schema.referencing("a", "x") == set()

    def test_references_is_transitive(self):
        schema = self.make_chain()
        assert schema.references("a", "x") == {("b", "x"), ("c", "x")}

    def test_self_referencing_cycle_terminates(self):
        emp = Table(
            "emp",
            [Column("id", SqlType.INT), Column("mgr", SqlType.INT)],
            primary_key=("id",),
            foreign_keys=[ForeignKey("emp", ("mgr",), "emp", ("id",))],
        )
        schema = Schema([emp])
        assert ("emp", "mgr", "emp", "id") in schema.fk_closure()


class TestDerivedSchemas:
    def test_without_foreign_keys_strips_all(self, uni_schema):
        stripped = uni_schema.without_foreign_keys(0)
        assert stripped.foreign_keys() == []

    def test_without_foreign_keys_keeps_prefix(self, uni_schema):
        kept = uni_schema.without_foreign_keys(2)
        assert len(kept.foreign_keys()) == 2

    def test_original_schema_unchanged(self, uni_schema):
        count = len(uni_schema.foreign_keys())
        uni_schema.without_foreign_keys(0)
        assert len(uni_schema.foreign_keys()) == count

    def test_table_lookup_case_insensitive(self, uni_schema):
        assert uni_schema.table("INSTRUCTOR").name == "instructor"
        with pytest.raises(CatalogError):
            uni_schema.table("nope")
