"""Query analysis: occurrences, qualification, classification, eq classes."""

import pytest

from repro.core.analyze import analyze_query
from repro.core.attrs import Attr
from repro.errors import CatalogError, UnsupportedSqlError
from repro.sql.parser import parse_query


def analyze(sql, schema):
    return analyze_query(parse_query(sql), schema)


class TestOccurrences:
    def test_bindings_in_from_order(self, uni_schema):
        aq = analyze("SELECT * FROM instructor i, teaches t", uni_schema)
        assert aq.bindings == ["i", "t"]
        assert aq.table_of("i") == "instructor"

    def test_unaliased_table_binds_by_name(self, uni_schema):
        aq = analyze("SELECT * FROM instructor", uni_schema)
        assert aq.bindings == ["instructor"]

    def test_unknown_table_rejected(self, uni_schema):
        with pytest.raises(CatalogError):
            analyze("SELECT * FROM nonexistent", uni_schema)

    def test_repeated_unaliased_occurrence_rejected(self, uni_schema):
        with pytest.raises(CatalogError):
            analyze("SELECT * FROM course, course", uni_schema)

    def test_self_join_with_aliases(self, uni_schema):
        aq = analyze(
            "SELECT * FROM course c1, course c2 WHERE c1.course_id = c2.course_id",
            uni_schema,
        )
        assert aq.bindings == ["c1", "c2"]
        assert aq.table_of("c1") == aq.table_of("c2") == "course"


class TestQualification:
    def test_unqualified_column_resolved(self, uni_schema):
        aq = analyze(
            "SELECT name FROM instructor i, teaches t WHERE i.id = t.id",
            uni_schema,
        )
        item = aq.query.select_items[0].expr
        assert item.table == "i"

    def test_ambiguous_column_rejected(self, uni_schema):
        with pytest.raises(CatalogError):
            analyze("SELECT id FROM instructor i, teaches t", uni_schema)

    def test_unknown_column_rejected(self, uni_schema):
        with pytest.raises(CatalogError):
            analyze("SELECT qqq FROM instructor", uni_schema)

    def test_wrong_qualifier_rejected(self, uni_schema):
        with pytest.raises(CatalogError):
            analyze("SELECT t.salary FROM instructor i, teaches t", uni_schema)


class TestClassification:
    def test_equijoin_becomes_equivalence_class(self, uni_schema):
        aq = analyze(
            "SELECT * FROM instructor i, teaches t WHERE i.id = t.id",
            uni_schema,
        )
        assert aq.eq_classes == [(Attr("i", "id"), Attr("t", "id"))]
        assert aq.selections == []
        assert aq.other_joins == []

    def test_transitive_classes_merged(self, uni_schema):
        """Fig. 2: A.x = B.x AND B.x = C.x gives one 3-member class."""
        aq = analyze(
            "SELECT * FROM teaches t, course c, prereq p "
            "WHERE t.course_id = c.course_id AND c.course_id = p.course_id",
            uni_schema,
        )
        assert len(aq.eq_classes) == 1
        assert len(aq.eq_classes[0]) == 3

    def test_alternative_spelling_gives_same_class(self, uni_schema):
        """Fig. 2's point: both spellings produce the same classes."""
        first = analyze(
            "SELECT * FROM teaches t, course c, prereq p "
            "WHERE t.course_id = c.course_id AND c.course_id = p.course_id",
            uni_schema,
        )
        second = analyze(
            "SELECT * FROM teaches t, course c, prereq p "
            "WHERE t.course_id = c.course_id AND t.course_id = p.course_id",
            uni_schema,
        )
        assert first.eq_classes == second.eq_classes

    def test_selection_classified(self, uni_schema):
        aq = analyze(
            "SELECT * FROM instructor i WHERE i.salary > 1000", uni_schema
        )
        assert len(aq.selections) == 1
        assert aq.eq_classes == []

    def test_single_relation_equality_is_selection(self, uni_schema):
        aq = analyze(
            "SELECT * FROM instructor i WHERE i.id = i.salary", uni_schema
        )
        assert len(aq.selections) == 1
        assert aq.eq_classes == []

    def test_non_equi_join_classified_as_other(self, uni_schema):
        aq = analyze(
            "SELECT * FROM instructor i, teaches t WHERE i.id < t.id",
            uni_schema,
        )
        assert len(aq.other_joins) == 1
        assert aq.eq_classes == []

    def test_expression_join_classified_as_other(self, uni_schema):
        aq = analyze(
            "SELECT * FROM instructor i, teaches t WHERE i.id = t.id + 10",
            uni_schema,
        )
        assert len(aq.other_joins) == 1

    def test_on_clause_conditions_collected(self, uni_schema):
        aq = analyze(
            "SELECT * FROM instructor i JOIN teaches t ON i.id = t.id",
            uni_schema,
        )
        assert len(aq.eq_classes) == 1

    def test_outer_join_flag(self, uni_schema):
        inner = analyze(
            "SELECT * FROM instructor i JOIN teaches t ON i.id = t.id",
            uni_schema,
        )
        outer = analyze(
            "SELECT * FROM instructor i LEFT OUTER JOIN teaches t ON i.id = t.id",
            uni_schema,
        )
        assert not inner.has_outer_joins
        assert outer.has_outer_joins


class TestNatural:
    def test_natural_join_conditions_derived(self, uni_schema):
        aq = analyze(
            "SELECT t.course_id FROM teaches t NATURAL JOIN prereq p",
            uni_schema,
        )
        # Common column: course_id.
        assert len(aq.natural_conditions) == 1
        assert len(aq.eq_classes) == 1

    def test_natural_join_without_common_columns_rejected(self, uni_schema):
        with pytest.raises(UnsupportedSqlError):
            analyze(
                "SELECT * FROM department d NATURAL JOIN prereq p", uni_schema
            )


class TestAggregates:
    def test_aggregate_collected_with_attr(self, uni_schema):
        aq = analyze(
            "SELECT i.dept_name, SUM(i.salary) FROM instructor i "
            "GROUP BY i.dept_name",
            uni_schema,
        )
        assert len(aq.aggregates) == 1
        assert aq.aggregates[0].attr == Attr("i", "salary")
        assert aq.group_by == [Attr("i", "dept_name")]

    def test_count_star_has_no_attr(self, uni_schema):
        aq = analyze("SELECT COUNT(*) FROM instructor", uni_schema)
        assert aq.aggregates[0].attr is None

    def test_aggregate_over_expression_rejected(self, uni_schema):
        with pytest.raises(UnsupportedSqlError):
            analyze("SELECT SUM(i.salary + 1) FROM instructor i", uni_schema)


class TestTypeChecking:
    def test_string_vs_number_rejected(self, uni_schema):
        with pytest.raises(UnsupportedSqlError):
            analyze(
                "SELECT * FROM instructor i WHERE i.name = 5", uni_schema
            )

    def test_order_comparison_on_strings_accepted(self, uni_schema):
        """Rank-preserving interning makes string order comparable."""
        aq = analyze(
            "SELECT * FROM instructor i WHERE i.name > 'M'", uni_schema
        )
        assert len(aq.selections) == 1

    def test_arithmetic_on_strings_rejected(self, uni_schema):
        with pytest.raises(UnsupportedSqlError):
            analyze(
                "SELECT * FROM instructor i WHERE i.name + 1 = 2", uni_schema
            )

    def test_string_equality_allowed(self, uni_schema):
        aq = analyze(
            "SELECT * FROM instructor i WHERE i.dept_name = 'CS'", uni_schema
        )
        assert len(aq.selections) == 1


class TestPools:
    def test_fk_linked_columns_share_pool(self, uni_schema):
        pools = analyze("SELECT * FROM instructor", uni_schema).pools
        assert pools.pool_of("instructor", "dept_name") == pools.pool_of(
            "department", "dept_name"
        )

    def test_query_comparison_links_pools(self, uni_schema_nofk):
        aq = analyze(
            "SELECT * FROM instructor i, student s "
            "WHERE i.dept_name = s.dept_name",
            uni_schema_nofk,
        )
        assert aq.pools.pool_of("instructor", "dept_name") == aq.pools.pool_of(
            "student", "dept_name"
        )

    def test_unlinked_columns_have_own_pools(self, uni_schema_nofk):
        aq = analyze("SELECT * FROM instructor", uni_schema_nofk)
        assert aq.pools.pool_of("instructor", "name") != aq.pools.pool_of(
            "instructor", "dept_name"
        )

    def test_preferred_values_from_domain(self, uni_schema):
        aq = analyze("SELECT * FROM instructor", uni_schema)
        values = aq.pools.preferred_values("instructor", "dept_name")
        assert "CS" in values
