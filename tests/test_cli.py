"""CLI tests (driven in-process via main())."""

import pytest

from repro.cli import main


def test_generate_university(capsys):
    code = main(
        [
            "generate",
            "--university",
            "--fk", "teaches.id",
            "SELECT * FROM instructor i, teaches t WHERE i.id = t.id",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "datasets:" in out
    assert "instructor" in out


def test_mutants_listing(capsys):
    code = main(
        [
            "mutants",
            "--university",
            "SELECT * FROM instructor i, teaches t WHERE i.id = t.id",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "total: 2 mutants" in out


def test_mutants_full_outer(capsys):
    code = main(
        [
            "mutants",
            "--university",
            "--full-outer",
            "SELECT * FROM instructor i, teaches t WHERE i.id = t.id",
        ]
    )
    assert code == 0
    assert "total: 3 mutants" in capsys.readouterr().out


def test_evaluate_reports_kills(capsys):
    code = main(
        [
            "evaluate",
            "--university",
            "--fk", "teaches.id",
            "--trials", "5",
            "SELECT * FROM instructor i, teaches t WHERE i.id = t.id",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "killed: 1" in out
    assert "missed (non-equivalent!): 0" in out


def test_schema_file(tmp_path, capsys):
    ddl = tmp_path / "schema.sql"
    ddl.write_text(
        "CREATE TABLE r (a INT PRIMARY KEY);"
        "CREATE TABLE s (a INT REFERENCES r(a), b INT);"
    )
    code = main(
        [
            "generate",
            "--schema", str(ddl),
            "SELECT * FROM r, s WHERE r.a = s.a",
        ]
    )
    assert code == 0
    assert "r(a)" in capsys.readouterr().out


def test_parse_error_is_reported(capsys):
    code = main(["generate", "--university", "SELECT FROM WHERE"])
    assert code == 1
    assert "error:" in capsys.readouterr().err


def test_unknown_table_is_reported(capsys):
    code = main(["generate", "--university", "SELECT * FROM nope"])
    assert code == 1
    assert "error:" in capsys.readouterr().err


def test_export_writes_sql_files(tmp_path, capsys):
    out_dir = tmp_path / "fixtures"
    code = main(
        [
            "export",
            "--university",
            "--fk", "teaches.id",
            "--out", str(out_dir),
            "SELECT * FROM instructor i, teaches t WHERE i.id = t.id",
        ]
    )
    assert code == 0
    files = sorted(p.name for p in out_dir.iterdir())
    assert files == ["dataset_00_original.sql", "dataset_01_eqclass.sql"]
    text = (out_dir / "dataset_01_eqclass.sql").read_text()
    assert text.startswith("--")
    assert "INSERT INTO instructor" in text
    # FK-safe order: instructor rows precede teaches rows.
    assert text.index("INSERT INTO instructor") < text.index(
        "INSERT INTO teaches"
    )


def test_workload_command(tmp_path, capsys):
    source = tmp_path / "queries.sql"
    source.write_text(
        "-- name: teaching\n"
        "SELECT i.name FROM instructor i, teaches t WHERE i.id = t.id;\n"
        "-- name: credits\n"
        "SELECT c.title FROM course c WHERE c.credits > 3;\n"
    )
    out_dir = tmp_path / "fixtures"
    code = main(
        [
            "workload",
            "--university",
            "--fk", "teaches.id",
            "--out", str(out_dir),
            str(source),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "workload: 2 queries" in out
    assert list(out_dir.iterdir())


def test_workload_file_parser():
    from repro.cli import parse_workload_file

    queries = parse_workload_file(
        "-- name: a\nSELECT 1 FROM t;\n\n-- NAME: b\nSELECT 2\nFROM s;\n"
    )
    assert queries == {"a": "SELECT 1 FROM t", "b": "SELECT 2\nFROM s"}


def test_workload_without_sections_errors(tmp_path, capsys):
    source = tmp_path / "queries.sql"
    source.write_text("SELECT * FROM t;")
    code = main(["workload", "--university", str(source)])
    assert code == 1


def test_no_unfold_flag(capsys):
    code = main(
        [
            "generate",
            "--university",
            "--no-unfold",
            "SELECT * FROM instructor i, teaches t WHERE i.id = t.id",
        ]
    )
    assert code == 0


def test_input_db_flag(capsys):
    code = main(
        [
            "generate",
            "--university",
            "--input-db",
            "SELECT * FROM instructor i WHERE i.salary > 70000",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    # Values come from the bundled sample database (real names, not
    # synthesised symbols like name~1), though columns mix across rows
    # (domain mode does not force whole tuples — Section VI-A).
    assert "name~" not in out
    assert "Srinivasan" in out or "Crick" in out or "Katz" in out
