"""Stress and robustness tests: larger queries, wide predicates.

These guard against search-space regressions (the CBJ/backjumping and
suggestion machinery must keep generation fast as queries grow).
"""

import time

import pytest

from repro.core import XDataGenerator
from repro.datasets import schema_with_fks
from repro.engine.integrity import find_violations
from repro.mutation import enumerate_mutants
from repro.schema.catalog import Column, ForeignKey, Schema, Table
from repro.schema.types import SqlType
from repro.testing import evaluate_suite


def chain_schema(length: int, with_fks: bool) -> Schema:
    """r0 <- r1 <- ... <- r{n-1}: each r{i+1}.prev references r{i}.id."""
    tables = []
    for i in range(length):
        fks = []
        if with_fks and i > 0:
            fks.append(ForeignKey(f"r{i}", ("prev",), f"r{i-1}", ("id",)))
        tables.append(
            Table(
                f"r{i}",
                [
                    Column("id", SqlType.INT),
                    Column("prev", SqlType.INT),
                    Column("payload", SqlType.INT),
                ],
                primary_key=("id",),
                foreign_keys=fks,
            )
        )
    return Schema(tables)


def chain_query(length: int) -> str:
    froms = ", ".join(f"r{i}" for i in range(length))
    conds = " AND ".join(
        f"r{i + 1}.prev = r{i}.id" for i in range(length - 1)
    )
    return f"SELECT * FROM {froms} WHERE {conds}"


@pytest.mark.parametrize("length", [6, 8])
@pytest.mark.parametrize("with_fks", [False, True])
def test_long_chain_generation_fast_and_legal(length, with_fks):
    schema = chain_schema(length, with_fks)
    start = time.perf_counter()
    suite = XDataGenerator(schema).generate(chain_query(length))
    elapsed = time.perf_counter() - start
    assert elapsed < 5.0, f"generation took {elapsed:.1f}s"
    for dataset in suite.datasets:
        assert find_violations(dataset.db) == []


def test_star_join_generation():
    """A fact table referencing five dimensions."""
    dims = [
        Table(
            f"d{i}",
            [Column("id", SqlType.INT), Column("x", SqlType.INT)],
            primary_key=("id",),
        )
        for i in range(5)
    ]
    fact = Table(
        "fact",
        [Column(f"k{i}", SqlType.INT) for i in range(5)]
        + [Column("measure", SqlType.INT)],
        foreign_keys=[
            ForeignKey("fact", (f"k{i}",), f"d{i}", ("id",)) for i in range(5)
        ],
    )
    schema = Schema(dims + [fact])
    conds = " AND ".join(f"fact.k{i} = d{i}.id" for i in range(5))
    froms = "fact, " + ", ".join(f"d{i}" for i in range(5))
    suite = XDataGenerator(schema).generate(f"SELECT * FROM {froms} WHERE {conds}")
    # Every dimension nullification is blocked by the FK; each fact-side
    # nullification survives.
    assert suite.non_original_count() == 5
    assert len(suite.skipped) == 5
    for dataset in suite.datasets:
        assert find_violations(dataset.db) == []


def test_many_selections():
    schema = chain_schema(1, False)
    conds = " AND ".join(f"r0.payload <> {i}" for i in range(10))
    sql = f"SELECT * FROM r0 WHERE r0.id > 0 AND {conds}"
    suite = XDataGenerator(schema).generate(sql)
    # 3 comparison datasets for id>0, one per <> conjunct pair (2 each).
    assert suite.non_original_count() >= 20
    for dataset in suite.datasets:
        assert find_violations(dataset.db) == []


def test_wide_mutant_space_evaluation():
    """Kill-checking a thousand-mutant space stays tractable."""
    schema = chain_schema(7, False)
    suite = XDataGenerator(schema).generate(chain_query(7))
    space = enumerate_mutants(suite.analyzed)
    assert len(space) > 500
    start = time.perf_counter()
    report = evaluate_suite(space, suite.databases, stop_at_first_kill=True)
    elapsed = time.perf_counter() - start
    assert elapsed < 30.0
    assert report.killed > 0
